"""Process-parallel parameter sweeps over scenario specs.

The ROADMAP's scaling step: parameter studies across seeds, policies,
and capacity are embarrassingly parallel, and a
:class:`SweepRunner` fans a spec grid across process workers.
Determinism is preserved end to end:

- every grid point is an explicit :class:`ScenarioSpec` derived from
  the base spec via :meth:`~repro.scenario.spec.ScenarioSpec.override`;
- workers receive the spec *as JSON* and return the result *as JSON*
  (each parallel run therefore also exercises the rehydration
  contract);
- the merge sorts by grid index, so worker completion order never
  shows through;
- the :class:`SweepReport` serializes via the deterministic JSON
  encoder, carries no wall-clock data, and digests identically whether
  the sweep ran serially or on any number of workers.

Worker failures are part of the contract, not an abort: a point whose
run raises (or whose worker process dies) is retried deterministically
on a fresh worker, and a point that still fails is surfaced in
:attr:`SweepReport.failed` with explicit gap accounting instead of
blowing up the merge.  Because a spec run is a pure function of its
JSON form, a retried point produces the byte-identical result a clean
run would have — so retries never perturb the report digest.

``tests/scenario`` pins serial-vs-parallel digest equality, a golden
sweep digest, and crash-retry digest identity; CI re-checks a 2x2
grid on 2 workers.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import (
    BrokenProcessPool,
    ProcessPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..observability.export import dumps_deterministic
from ..observability.federation import TelemetryMerge
from .result import ScenarioResult
from .spec import ScenarioSpec

__all__ = ["SweepPoint", "SweepReport", "SweepRunner", "WorkerCrash",
           "run_spec_observed", "sweep"]


class WorkerCrash(RuntimeError):
    """An injected (or real) worker-tier failure for one sweep point.

    Raised by the fault-injection hook to emulate a worker that died
    mid-point; the runner treats it exactly like any other per-point
    exception: deterministic retry, then gap accounting.
    """


def _run_spec_payload(payload: tuple[int, str]) -> tuple[int, str]:
    """Worker entry point: rehydrate a spec from JSON, run, emit JSON.

    Module-level so it pickles under every multiprocessing start
    method.  Passing JSON both ways makes the parallel path exercise
    the same serialization contract the round-trip tests pin.
    """
    index, spec_json = payload
    result = ScenarioSpec.from_json(spec_json).run()
    return index, result.to_json()


def run_spec_observed(spec_json: str, run_id: str) -> tuple[str, str]:
    """Run a spec with a worker-armed Observer; ship telemetry beside it.

    Returns ``(result JSON, telemetry JSON)`` where the telemetry is
    the run's deterministic
    :class:`~repro.observability.federation.TelemetrySnapshot` under
    the causal ``run_id``.  The capture is **invisible in the result**:
    unless the spec itself declared ``observer``/``slos`` (in which
    case the result carries its profile exactly as a plain
    ``spec.run()`` would), the observer is dropped before the result
    is compiled, so the result bytes are identical to an unobserved
    run — observation federates telemetry, it never perturbs digests.

    A sharded spec runs through
    :func:`~repro.sim.sharding.run_sharded` with per-shard capture; the
    shard fleet's merged metrics/profile/census are re-wrapped as this
    point's single snapshot, so a sweep over sharded scenarios
    federates exactly like any other sweep.
    """
    from ..observability.federation import TelemetrySnapshot
    from ..observability.observer import Observer

    spec = ScenarioSpec.from_json(spec_json)
    if spec.shards is not None:
        from ..sim.sharding import run_sharded
        outcome = run_sharded(spec, observe=True)
        fleet = outcome.telemetry
        snapshot = TelemetrySnapshot(
            run_id=run_id, fingerprint=spec.fingerprint(), seed=spec.seed,
            metrics=fleet["metrics"], profile=fleet["profile"] or None,
            spans={"total": fleet["spans"]["total"],
                   "census": fleet["spans"]["census"]})
        return outcome.result.to_json(), snapshot.to_json()
    declared = spec.observer or spec.slos is not None
    observer = Observer()
    runtime = spec.build(observer=observer)
    runtime.drive()
    runtime.finalize()
    if not declared:
        runtime.observer = None
    result = runtime.result()
    observer.detach()
    snapshot = TelemetrySnapshot.capture(observer, run_id=run_id,
                                         fingerprint=spec.fingerprint(),
                                         seed=spec.seed)
    return result.to_json(), snapshot.to_json()


def _run_spec_guarded(
        payload: tuple[int, str, int, dict[int, int] | None, str | None],
        ) -> tuple[int, bool, str, str | None]:
    """Fault-tolerant worker entry point: never raises for a bad spec run.

    Returns ``(index, ok, result-or-error, telemetry-or-None)``.  The
    optional crash plan (``{index: failures_remaining}``)
    deterministically fails the first ``n`` attempts of a point — the
    chaos hook the injected-crash determinism tests and the service
    drill both use.  A plan entry of ``-1`` hard-exits the process (a
    *real* worker crash, exercising the broken-pool recovery path).
    The final payload element is the causal run id when the point runs
    under federated observation (``None`` runs unobserved).
    """
    index, spec_json, attempt, crash_plan, run_id = payload
    try:
        if crash_plan is not None:
            budget = crash_plan.get(index, 0)
            if budget == -1 and attempt == 0:
                import os
                os._exit(17)  # simulate a segfaulting worker
            if attempt < budget:
                raise WorkerCrash(
                    f"injected worker crash (point {index}, "
                    f"attempt {attempt})")
        if run_id is not None:
            result_json, telemetry_json = run_spec_observed(spec_json,
                                                            run_id)
            return index, True, result_json, telemetry_json
        _, result_json = _run_spec_payload((index, spec_json))
        return index, True, result_json, None
    except SystemExit:  # pragma: no cover - re-raise hard exits
        raise
    except BaseException as exc:  # noqa: BLE001 - the gap record needs it
        return index, False, f"{type(exc).__name__}: {exc}", None


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the derived spec and the overrides that made it."""

    index: int
    spec: ScenarioSpec
    overrides: dict[str, Any]

    def label(self) -> str:
        """Human-readable axis summary (``seed=3 queue=sjf``)."""
        if not self.overrides:
            return "base"
        return " ".join(f"{key.split('.')[-1]}={value}"
                        for key, value in sorted(self.overrides.items()))


@dataclass
class SweepReport:
    """The merged, order-independent outcome of one sweep.

    ``runs`` is sorted by grid index; :meth:`to_json` and
    :meth:`digest` contain no execution details (worker count, wall
    time), so a serial run and any parallel run of the same grid
    produce the byte-identical report.  ``failed`` carries the gap
    accounting for points that failed even after retry — it is only
    serialized when non-empty, so a clean sweep's bytes (and goldens)
    are untouched by its existence.
    """

    base_fingerprint: str
    points: list[dict[str, Any]]
    runs: list[ScenarioResult]
    failed: list[dict[str, Any]] = field(default_factory=list)
    telemetry: dict[str, Any] | None = None
    workers: int = 1  # execution detail; excluded from the serialized form
    elapsed_s: float = 0.0  # wall time; excluded from the serialized form

    @property
    def complete(self) -> bool:
        """Whether every grid point produced a result."""
        return not self.failed

    def failed_indexes(self) -> set[int]:
        """Grid indexes of points that failed after exhausting retries."""
        return {entry["index"] for entry in self.failed}

    def to_dict(self) -> dict:
        """JSON-ready plain data (deterministic content only).

        ``failed`` appears only when the sweep has gaps, so a clean
        report keeps the exact bytes (and digests) it had before gap
        accounting existed.
        """
        data = {
            "schema": "sweep-report/v1",
            "base_fingerprint": self.base_fingerprint,
            "points": self.points,
            "runs": [run.to_dict() for run in self.runs],
        }
        if self.failed:
            data["failed"] = self.failed
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepReport":
        """Rehydrate a report from :meth:`to_dict` output."""
        if data.get("schema") != "sweep-report/v1":
            raise ValueError(f"unsupported sweep schema "
                             f"{data.get('schema')!r}")
        return cls(base_fingerprint=data["base_fingerprint"],
                   points=list(data["points"]),
                   runs=[ScenarioResult.from_dict(r)
                         for r in data["runs"]],
                   failed=list(data.get("failed", ())),
                   telemetry=data.get("telemetry"))

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace)."""
        return dumps_deterministic(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Rehydrate a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def rows(self) -> list[tuple[str, dict[str, float]]]:
        """(label, flat summary) per completed run, for tabulation.

        Failed points are excluded here; their gap records live in
        :attr:`failed`.
        """
        gaps = self.failed_indexes()
        completed = [point for point in self.points
                     if point["index"] not in gaps]
        return [(point["label"], run.summary())
                for point, run in zip(completed, self.runs)]

    @classmethod
    def assemble(cls, base: ScenarioSpec, points: Sequence[SweepPoint],
                 outcomes: Sequence[tuple[int, str]],
                 workers: int = 1,
                 failures: Sequence[Mapping[str, Any]] = ()) -> "SweepReport":
        """Merge worker outcomes into the deterministic report.

        ``outcomes`` is ``(grid index, result JSON)`` pairs in *any*
        order — the merge sorts by grid index, which is what makes the
        report independent of worker scheduling.  ``failures`` carries
        gap records (``index`` / ``label`` / ``fingerprint`` /
        ``error`` / ``attempts``) for points with no outcome.  Exposed
        so every execution strategy (the in-process serial path, the
        worker pool, a benchmark's cold-process loop) shares one merge.
        """
        by_index = {index: result_json for index, result_json in outcomes}
        failed = sorted((dict(entry) for entry in failures),
                        key=lambda entry: entry["index"])
        missing = [point.index for point in points
                   if point.index not in by_index
                   and point.index not in {f["index"] for f in failed}]
        if missing:
            raise ValueError(
                f"points {missing} have neither an outcome nor a gap "
                f"record; the merge would silently drop them")
        runs = [ScenarioResult.from_json(by_index[point.index])
                for point in points if point.index in by_index]
        point_rows = [{"index": point.index,
                       "fingerprint": point.spec.fingerprint(),
                       "label": point.label(),
                       "overrides": _jsonable_overrides(point.overrides)}
                      for point in points]
        return cls(base_fingerprint=base.fingerprint(),
                   points=point_rows, runs=runs, failed=failed,
                   workers=workers)


class SweepRunner:
    """Fan a grid of scenario specs across processes; merge determinate.

    Args:
        base: The spec every grid point derives from.
        workers: Process count; ``1`` runs serially in-process (but
            still through the JSON rehydration path, so serial and
            parallel results are comparable byte for byte).
        retries: Deterministic re-runs granted to a failed point
            before it becomes a gap record (default 1 — the "retry
            once on a fresh worker" contract).
        point_timeout: Optional wall-clock seconds to wait for one
            point before declaring its worker hung.  A timed-out point
            is retried like a crashed one.  ``None`` (the default)
            waits indefinitely; timeouts are an execution detail and
            never enter the report bytes.
        crash_plan: Optional fault-injection plan
            (``{point index: n}``): the first ``n`` attempts of that
            point raise :class:`WorkerCrash`; ``-1`` hard-kills the
            worker process on the first attempt.  For chaos drills and
            determinism tests — retried points digest identically to a
            clean run because spec runs are pure functions of their
            JSON.
        observe: Federated observation: every worker arms an
            :class:`~repro.observability.observer.Observer` around its
            point, ships the deterministic telemetry snapshot back
            beside the result, and the runner folds all snapshots into
            one fleet view at :attr:`SweepReport.telemetry`.  Causal
            run ids are ``point-<index:05d>`` — lexicographic order is
            grid order — so the merged view is byte-identical for any
            worker count or completion order.  Result bytes stay
            identical to an unobserved sweep.
    """

    def __init__(self, base: ScenarioSpec, workers: int = 1,
                 retries: int = 1, point_timeout: float | None = None,
                 crash_plan: Mapping[int, int] | None = None,
                 observe: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive when given")
        self.base = base
        self.workers = workers
        self.retries = retries
        self.point_timeout = point_timeout
        self.crash_plan = dict(crash_plan) if crash_plan else None
        self.observe = observe

    # ------------------------------------------------------------------
    # Grid construction
    # ------------------------------------------------------------------
    def grid(self, seeds: Sequence[int] = (),
             policies: Sequence[str] = (),
             scale: Sequence[float] = (),
             overrides: Sequence[Mapping[str, Any]] = ()) -> \
            list[SweepPoint]:
        """The cartesian grid of sweep points, in deterministic order.

        Axes: ``seeds`` (root seed), ``policies`` (queue policy),
        ``scale`` (multiplies every cluster's machine count), and
        ``overrides`` (arbitrary dotted-path update mappings).  Empty
        axes contribute the base value.  Iteration order is seeds,
        then policies, then scale, then overrides — index 0 is the
        first combination.
        """
        seed_axis: Sequence[Any] = list(seeds) or [None]
        policy_axis: Sequence[Any] = list(policies) or [None]
        scale_axis: Sequence[Any] = list(scale) or [None]
        override_axis: Sequence[Any] = list(overrides) or [None]
        points = []
        index = 0
        for seed in seed_axis:
            for policy in policy_axis:
                for factor in scale_axis:
                    for extra in override_axis:
                        updates: dict[str, Any] = {}
                        if seed is not None:
                            updates["seed"] = seed
                        if policy is not None:
                            updates["scheduler.queue"] = policy
                        if factor is not None:
                            updates["scale"] = factor
                        if extra:
                            updates.update(extra)
                        spec = (self.base.override(updates) if updates
                                else self.base)
                        points.append(SweepPoint(index=index, spec=spec,
                                                 overrides=updates))
                        index += 1
        return points

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> SweepReport:
        """Execute every point; return the merged deterministic report.

        Per-point failures never abort the sweep: a point whose run
        raises — or whose worker process dies or hangs — is retried up
        to ``retries`` times on a fresh worker, and a point that still
        fails lands in :attr:`SweepReport.failed` with its error and
        attempt count.
        """
        if not points:
            raise ValueError("the sweep grid is empty")
        spec_json = {point.index: point.spec.to_json() for point in points}
        attempts = {point.index: 0 for point in points}
        errors: dict[int, str] = {}
        outcomes: list[tuple[int, str]] = []
        telemetry: dict[int, str] = {}
        pending = [point.index for point in points]
        while pending:
            wave = [(index, spec_json[index], attempts[index],
                     self.crash_plan,
                     f"point-{index:05d}" if self.observe else None)
                    for index in pending]
            for index in pending:
                attempts[index] += 1
            if self.workers == 1:
                settled = [_run_spec_guarded(payload) for payload in wave]
            else:
                settled = self._run_wave_parallel(wave)
            retry: list[int] = []
            for index, ok, payload, telemetry_json in settled:
                if ok:
                    outcomes.append((index, payload))
                    errors.pop(index, None)
                    if telemetry_json is not None:
                        telemetry[index] = telemetry_json
                else:
                    errors[index] = payload
                    if attempts[index] <= self.retries:
                        retry.append(index)
            retry.sort()
            pending = retry
        failures = [{"index": point.index,
                     "label": point.label(),
                     "fingerprint": point.spec.fingerprint(),
                     "error": errors[point.index],
                     "attempts": attempts[point.index]}
                    for point in points if point.index in errors]
        report = SweepReport.assemble(self.base, points, outcomes,
                                      workers=self.workers,
                                      failures=failures)
        if self.observe:
            merge = TelemetryMerge()
            for index in sorted(telemetry):
                merge.add_json(telemetry[index])
            report.telemetry = merge.fleet()
        return report

    def _run_wave_parallel(self, wave: list[tuple]) -> \
            list[tuple[int, bool, str, str | None]]:
        """One wave of points on a fresh process pool, crash-tolerant.

        A worker that raises returns its error through the guarded
        entry point; a worker that *dies* (hard exit, OOM kill) breaks
        the whole pool, so the wave's unfinished points are marked
        failed and the pool is rebuilt by the next wave.  A hung worker
        is detected by ``point_timeout`` and treated the same way.
        """
        settled: list[tuple[int, bool, str, str | None]] = []
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            futures = {pool.submit(_run_spec_guarded, payload): payload[0]
                       for payload in wave}
            remaining = set(futures)
            while remaining:
                done, _ = wait(remaining, timeout=self.point_timeout,
                               return_when=FIRST_COMPLETED)
                if not done:  # hung worker: give up on the wave
                    for future in remaining:
                        future.cancel()
                        settled.append((futures[future], False,
                                        "TimeoutError: worker hung past "
                                        "point_timeout", None))
                    for process in pool._processes.values():
                        process.terminate()
                    remaining = set()
                    break
                broken = False
                for future in done:
                    remaining.discard(future)
                    try:
                        settled.append(future.result())
                    except BrokenProcessPool:
                        settled.append((futures[future], False,
                                        "BrokenProcessPool: a worker "
                                        "process died mid-point", None))
                        broken = True
                    except Exception as exc:  # noqa: BLE001
                        settled.append((futures[future], False,
                                        f"{type(exc).__name__}: {exc}",
                                        None))
                if broken:
                    # The pool is unusable; fail the wave's leftovers so
                    # they retry on the next (fresh) pool.
                    for future in remaining:
                        settled.append((futures[future], False,
                                        "BrokenProcessPool: a worker "
                                        "process died mid-point", None))
                    remaining = set()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return settled

    def sweep(self, seeds: Sequence[int] = (),
              policies: Sequence[str] = (),
              scale: Sequence[float] = (),
              overrides: Sequence[Mapping[str, Any]] = ()) -> SweepReport:
        """Build the grid and run it in one call."""
        return self.run(self.grid(seeds=seeds, policies=policies,
                                  scale=scale, overrides=overrides))


def sweep(base: ScenarioSpec, seeds: Sequence[int] = (),
          policies: Sequence[str] = (), scale: Sequence[float] = (),
          workers: int = 1,
          overrides: Sequence[Mapping[str, Any]] = (),
          observe: bool = False) -> SweepReport:
    """Run a spec grid: ``sweep(spec, seeds=..., policies=..., scale=...)``.

    Convenience wrapper over :class:`SweepRunner`; see its docs for
    grid and determinism semantics.  ``observe=True`` turns on
    federated observation: every worker ships a telemetry snapshot and
    the report carries the merged fleet view.
    """
    return SweepRunner(base, workers=workers, observe=observe).sweep(
        seeds=seeds, policies=policies, scale=scale, overrides=overrides)


def _jsonable_overrides(updates: Mapping[str, Any]) -> dict[str, Any]:
    """Overrides as JSON-ready data (defensive copy, sorted by key)."""
    return {key: updates[key] for key in sorted(updates)}
