"""Declarative scenarios: one experiment = one JSON-serializable spec.

The paper's reproducibility pillars (C15 "reproducible
experimentation", P8 "reproducibility as an essential service") and
the OpenDC-style experimentation platform of §3.3 demand that an
experiment be a *declarative artifact*, not a hand-wired script.  This
package is that artifact and its engine:

- :class:`~repro.scenario.spec.ScenarioSpec` — a frozen,
  JSON-serializable description of one run (topology, workload,
  scheduler, autoscaler, failures, resilience, SLOs, seed, duration)
  with an :meth:`~repro.scenario.spec.ScenarioSpec.override` mechanism
  for deriving variants and a recipe-compatible
  :meth:`~repro.scenario.spec.ScenarioSpec.fingerprint`;
- :func:`~repro.scenario.runtime.compose` /
  :class:`~repro.scenario.runtime.ScenarioRuntime` — the single
  composition root every entry point (benchmarks, examples, chaos
  harness, CLI) assembles runs through;
- :class:`~repro.scenario.result.ScenarioResult` — the run's outcome
  as deterministic plain data with a canonical digest;
- :func:`~repro.scenario.sweep.sweep` /
  :class:`~repro.scenario.sweep.SweepRunner` — process-parallel
  parameter sweeps with an order-independent merge and a byte-stable
  report.

Determinism contract: a spec run in-process, in a worker pool, or
rehydrated from JSON produces the identical result digest.  See
``docs/SCENARIOS.md`` for the spec schema and sweep semantics.
"""

from .result import ScenarioResult, compile_result
from .runtime import ScenarioRuntime, build_runtime, compose
from .spec import (
    FAILURE_KINDS,
    OBJECTIVE_KINDS,
    WORKLOAD_KINDS,
    AutoscalerSpec,
    BurnRuleSpec,
    CheckpointSpec,
    ClusterSpec,
    FailureSpec,
    HedgeSpec,
    ObjectiveSpec,
    RetrySpec,
    ScenarioSpec,
    SchedulerSpec,
    ShardLinkSpec,
    ShardOffloadSpec,
    ShardPlanSpec,
    ShardSpec,
    SheddingSpec,
    SLOSpec,
    TopologySpec,
    WorkloadSpec,
    open_arrival_tasks,
    scenario_experiment,
)
from .sweep import SweepPoint, SweepReport, SweepRunner, sweep

__all__ = [
    "ScenarioSpec",
    "ClusterSpec",
    "TopologySpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "AutoscalerSpec",
    "FailureSpec",
    "RetrySpec",
    "CheckpointSpec",
    "HedgeSpec",
    "SheddingSpec",
    "ObjectiveSpec",
    "BurnRuleSpec",
    "SLOSpec",
    "ShardSpec",
    "ShardLinkSpec",
    "ShardOffloadSpec",
    "ShardPlanSpec",
    "WORKLOAD_KINDS",
    "FAILURE_KINDS",
    "OBJECTIVE_KINDS",
    "open_arrival_tasks",
    "scenario_experiment",
    "ScenarioRuntime",
    "compose",
    "build_runtime",
    "ScenarioResult",
    "compile_result",
    "SweepPoint",
    "SweepReport",
    "SweepRunner",
    "sweep",
]
