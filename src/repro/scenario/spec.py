"""The declarative scenario specification (C15, P8, §3.3).

A :class:`ScenarioSpec` is a *frozen, JSON-serializable artifact* that
pins everything one simulation run needs: topology, workload,
scheduling policy, autoscaling, failures, resilience mechanisms,
observability and SLO configuration, seed, and duration.  The paper's
reproducibility pillar (P8: "reproducibility as essential service")
demands exactly this — an experiment should be a declarative document,
not a hand-wired script — and the OpenDC-style platform of §3.3 shows
the payoff: one composition layer serving every concrete study.

Determinism contract: a spec run in-process, in a worker pool, or
rehydrated from its JSON form produces the identical
:class:`~repro.scenario.result.ScenarioResult` digest.  All randomness
derives from named :class:`~repro.sim.rng.RandomStreams` substreams of
the spec's single ``seed``.

Workload and failure *kinds* are resolved through small registries
(:data:`WORKLOAD_KINDS`, :data:`FAILURE_KINDS`), so a spec stays plain
data while the kernel owns the generators.  Programmatic escape
hatches (custom callables, custom autoscalers) are available through
:meth:`ScenarioSpec.build` overrides — those runs are no longer fully
serializable, and the spec API makes that boundary explicit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Mapping, Sequence

from ..autoscaling.autoscalers import AUTOSCALERS
from ..datacenter.cluster import Cluster, homogeneous_cluster
from ..datacenter.machine import MachineSpec
from ..failures.models import FailureEvent
from ..observability.slo import (
    AvailabilityObjective,
    BurnRateRule,
    GoodputObjective,
    LatencyObjective,
    QueueWaitObjective,
    ServiceObjective,
)
from ..datacenter.wide_area import WideAreaLink, min_lookahead
from ..resilience.checkpoint import CheckpointPolicy
from ..resilience.hedging import HedgePolicy
from ..resilience.policies import ExponentialBackoff
from ..resilience.shedding import LoadSheddingAdmission
from ..scheduling.policies import PLACEMENT_POLICIES, QUEUE_POLICIES
from ..sim.experiment import ExperimentRecipe
from ..sim.rng import RandomStreams, substream_seed
from ..sim.sharding import ShardConfigError
from ..workload.arrivals import MMPPArrivals, PoissonArrivals
from ..workload.generators import TaskProfile, VicissitudeMix, WorkloadGenerator
from ..workload.task import Task
from ..workload.trace import (
    downsample_records,
    read_gwf,
    records_to_jobs,
    rescale_records,
)
from ..workload.wfformat import wfformat_workflow

__all__ = [
    "ClusterSpec",
    "TopologySpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "AutoscalerSpec",
    "FailureSpec",
    "RetrySpec",
    "CheckpointSpec",
    "HedgeSpec",
    "SheddingSpec",
    "ObjectiveSpec",
    "BurnRuleSpec",
    "SLOSpec",
    "ShardLinkSpec",
    "ShardOffloadSpec",
    "ShardSpec",
    "ShardPlanSpec",
    "ScenarioSpec",
    "WORKLOAD_KINDS",
    "FAILURE_KINDS",
    "OBJECTIVE_KINDS",
    "open_arrival_tasks",
]


def _range(value: Any) -> tuple[float, float] | None:
    """Interpret ``value`` as a (lo, hi) pair, or None for a fixed scalar."""
    if isinstance(value, (list, tuple)):
        lo, hi = value
        return float(lo), float(hi)
    return None


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------
#: Default machine link bandwidth (bytes/second); mirrors
#: :class:`~repro.datacenter.machine.MachineSpec`.
_DEFAULT_LINK_BANDWIDTH = 1.25e9


@dataclass(frozen=True)
class ClusterSpec:
    """One homogeneous cluster: ``machines`` identical machines."""

    name: str
    machines: int
    cores: int = 8
    memory: float = 32.0
    machines_per_rack: int = 16
    speed: float = 1.0
    link_bandwidth: float = _DEFAULT_LINK_BANDWIDTH

    def build(self) -> Cluster:
        """Materialize the cluster."""
        return homogeneous_cluster(
            self.name, self.machines,
            MachineSpec(cores=self.cores, memory=self.memory,
                        speed=self.speed,
                        link_bandwidth=self.link_bandwidth),
            machines_per_rack=self.machines_per_rack)

    def to_dict(self) -> dict:
        """Plain-data form."""
        data = {"name": self.name, "machines": self.machines,
                "cores": self.cores, "memory": self.memory,
                "machines_per_rack": self.machines_per_rack,
                "speed": self.speed}
        # Omit-if-default keeps every pre-existing spec fingerprint
        # (a hash of this dict) byte-identical.
        if self.link_bandwidth != _DEFAULT_LINK_BANDWIDTH:
            data["link_bandwidth"] = self.link_bandwidth
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class TopologySpec:
    """The physical substrate: clusters under one datacenter."""

    clusters: tuple[ClusterSpec, ...]
    datacenter: str = "dc"
    operator: str = "operator"

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("a topology needs at least one cluster")
        object.__setattr__(self, "clusters", tuple(self.clusters))

    def build(self) -> list[Cluster]:
        """Materialize every cluster, in declaration order."""
        return [cluster.build() for cluster in self.clusters]

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"clusters": [c.to_dict() for c in self.clusters],
                "datacenter": self.datacenter, "operator": self.operator}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(clusters=tuple(ClusterSpec.from_dict(c)
                                  for c in data["clusters"]),
                   datacenter=data.get("datacenter", "dc"),
                   operator=data.get("operator", "operator"))


# ---------------------------------------------------------------------------
# Workload kinds
# ---------------------------------------------------------------------------
def open_arrival_tasks(rng: Any, n_tasks: int, total_cores: int, *,
                       load: float = 0.9,
                       cores: tuple[int, int] = (1, 8),
                       runtime: tuple[float, float] = (5.0, 195.0),
                       memory_per_core: float = 2.0,
                       prefix: str = "perf") -> list[Task]:
    """Seeded open-arrival tasks targeting a utilization ``load``.

    The shared datacenter-workload builder that used to live
    copy-pasted in the perf benchmarks and examples: Poisson arrivals
    at a rate chosen so the offered demand is ``load`` times the
    ``total_cores`` capacity, with uniform core and runtime draws.
    """
    cores_lo, cores_hi = cores
    runtime_lo, runtime_hi = runtime
    mean_demand = ((cores_lo + cores_hi) / 2.0
                   * (runtime_lo + runtime_hi) / 2.0)
    rate = load * total_cores / mean_demand
    now = 0.0
    tasks = []
    for i in range(n_tasks):
        now += rng.expovariate(rate)
        task_cores = rng.randint(cores_lo, cores_hi)
        tasks.append(Task(runtime=rng.uniform(runtime_lo, runtime_hi),
                          cores=task_cores,
                          memory=memory_per_core * task_cores,
                          submit_time=now, name=f"{prefix}-{i}"))
    return tasks


def _open_arrivals_workload(streams: RandomStreams, datacenter: Any,
                            params: Mapping[str, Any]) -> list[Task]:
    """Registry wrapper over :func:`open_arrival_tasks`."""
    return open_arrival_tasks(
        streams.stream(params.get("stream", "perf-workload")),
        int(params["n_tasks"]), datacenter.total_cores,
        load=float(params.get("load", 0.9)),
        cores=tuple(params.get("cores", (1, 8))),
        runtime=tuple(params.get("runtime", (5.0, 195.0))),
        memory_per_core=float(params.get("memory_per_core", 2.0)),
        prefix=params.get("prefix", "perf"))


def _uniform_tasks_workload(streams: RandomStreams, datacenter: Any,
                            params: Mapping[str, Any]) -> list[Task]:
    """Independent tasks with uniform runtime/cores/submit draws.

    Each of ``runtime``, ``cores``, and ``submit`` may be a fixed
    scalar (no random draw is consumed) or a ``[lo, hi]`` pair drawn
    uniformly — ``cores`` with ``randint``, the others with
    ``uniform``.  Priorities cycle ``i % priority_levels`` when
    ``priority_levels`` is positive.
    """
    n_tasks = int(params["n_tasks"])
    runtime = params.get("runtime", 60.0)
    cores = params.get("cores", 1)
    submit = params.get("submit", 0.0)
    levels = int(params.get("priority_levels", 0))
    prefix = params.get("prefix", "t")
    rng = streams.stream(params.get("stream", "workload"))
    runtime_range, cores_range, submit_range = (
        _range(runtime), _range(cores), _range(submit))
    tasks = []
    for i in range(n_tasks):
        task_runtime = (rng.uniform(*runtime_range) if runtime_range
                        else float(runtime))
        task_cores = (rng.randint(int(cores_range[0]), int(cores_range[1]))
                      if cores_range else int(cores))
        task_submit = (rng.uniform(*submit_range) if submit_range
                       else float(submit))
        tasks.append(Task(runtime=task_runtime, cores=task_cores,
                          submit_time=task_submit,
                          priority=i % levels if levels else 0,
                          name=f"{prefix}{i}"))
    return tasks


def _mmpp_jobs_workload(streams: RandomStreams, datacenter: Any,
                        params: Mapping[str, Any]) -> list:
    """Bursty bag-of-tasks jobs from an MMPP arrival process [113].

    Drives a :class:`~repro.workload.generators.WorkloadGenerator` with
    Markov-modulated Poisson arrivals and a (possibly degenerate)
    vicissitude mix over the declared task profiles.
    """
    profiles = tuple(
        TaskProfile(kind=p["kind"], runtime_mean=p["runtime_mean"],
                    runtime_sigma=p.get("runtime_sigma", 0.5),
                    cores_choices=tuple(p.get("cores_choices", (1,))),
                    memory_mean=p.get("memory_mean", 1.0))
        for p in params["profiles"])
    arrivals = MMPPArrivals(
        quiet_rate=params["quiet_rate"], burst_rate=params["burst_rate"],
        quiet_duration=params["quiet_duration"],
        burst_duration=params["burst_duration"],
        rng=streams.stream(params.get("arrival_stream", "arrivals")))
    generator = WorkloadGenerator(
        arrivals, mix=VicissitudeMix.steady(profiles),
        tasks_per_job=params.get("tasks_per_job", 5.0),
        fragmentation=params.get("fragmentation", 0.0),
        rng=streams.stream(params.get("stream", "workload")))
    return generator.generate(horizon=params["horizon"])


def _poisson_jobs_workload(streams: RandomStreams, datacenter: Any,
                           params: Mapping[str, Any]) -> list:
    """Bag-of-tasks jobs on plain Poisson arrivals."""
    profiles = tuple(
        TaskProfile(kind=p["kind"], runtime_mean=p["runtime_mean"],
                    runtime_sigma=p.get("runtime_sigma", 0.5),
                    cores_choices=tuple(p.get("cores_choices", (1,))),
                    memory_mean=p.get("memory_mean", 1.0))
        for p in params["profiles"])
    arrivals = PoissonArrivals(
        params["rate"],
        rng=streams.stream(params.get("arrival_stream", "arrivals")))
    generator = WorkloadGenerator(
        arrivals, mix=VicissitudeMix.steady(profiles),
        tasks_per_job=params.get("tasks_per_job", 5.0),
        fragmentation=params.get("fragmentation", 0.0),
        rng=streams.stream(params.get("stream", "workload")))
    return generator.generate(horizon=params["horizon"])


def _wfformat_workload(streams: RandomStreams, datacenter: Any,
                       params: Mapping[str, Any]) -> list:
    """A WfCommons WfFormat instance compiled into one workflow job.

    ``params.document`` embeds the WfFormat document inline (the
    self-contained, digest-pinnable form); ``params.path`` points at a
    JSON file instead.  ``runtime_scale`` and ``submit_time`` pass
    through to :func:`~repro.workload.wfformat.wfformat_workflow`.
    """
    document = params.get("document")
    if document is None:
        document = params["path"]
    return [wfformat_workflow(
        document,
        runtime_scale=float(params.get("runtime_scale", 1.0)),
        submit_time=float(params.get("submit_time", 0.0)))]


def _gwf_trace_workload(streams: RandomStreams, datacenter: Any,
                        params: Mapping[str, Any]) -> list:
    """Jobs replayed from a GWF trace file, with shaping controls.

    ``fraction`` seed-samples a subset of the records (via the
    ``stream`` substream, default ``"gwf-sample"``), ``time_scale`` /
    ``runtime_scale`` / ``align`` rescale the time axis, and ``limit``
    truncates to the first N records after shaping.
    """
    records = read_gwf(params["path"])
    fraction = params.get("fraction")
    if fraction is not None:
        records = downsample_records(
            records, float(fraction),
            streams.stream(params.get("stream", "gwf-sample")))
    records = rescale_records(
        records,
        time_scale=float(params.get("time_scale", 1.0)),
        runtime_scale=float(params.get("runtime_scale", 1.0)),
        align=bool(params.get("align", False)))
    limit = params.get("limit")
    if limit is not None:
        records = records[:int(limit)]
    return records_to_jobs(records)


def _composite_workload(streams: RandomStreams, datacenter: Any,
                        params: Mapping[str, Any]) -> list:
    """Several registered workloads concatenated into one item list.

    ``params.parts`` is a list of workload-spec dicts (``kind`` +
    ``params``), built in declaration order against the same streams
    and datacenter.  Give each part its own ``stream`` /
    ``arrival_stream`` name, otherwise the parts share (and therefore
    correlate) their random draws.  This is how a multi-service region
    — say gaming plus banking plus FaaS on shared infrastructure — is
    declared as one spec, and how the sharded planet-scale scenario is
    expressed as an equivalent single-loop monolith for benchmarking.
    """
    items: list = []
    for part in params["parts"]:
        sub = WorkloadSpec.from_dict(part)
        items.extend(sub.build(streams, datacenter))
    return items


#: Workload kind -> ``(streams, datacenter, params) -> items`` builder.
WORKLOAD_KINDS: dict[str, Callable] = {
    "open-arrivals": _open_arrivals_workload,
    "uniform-tasks": _uniform_tasks_workload,
    "mmpp-jobs": _mmpp_jobs_workload,
    "poisson-jobs": _poisson_jobs_workload,
    "wfformat": _wfformat_workload,
    "gwf-trace": _gwf_trace_workload,
    "composite": _composite_workload,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """One declared workload: a registered ``kind`` plus parameters."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; "
                f"registered: {sorted(WORKLOAD_KINDS)}")
        object.__setattr__(self, "params", dict(self.params))

    def build(self, streams: RandomStreams, datacenter: Any) -> list:
        """Generate the workload items (tasks or jobs)."""
        return list(WORKLOAD_KINDS[self.kind](streams, datacenter,
                                              self.params))

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(kind=data["kind"], params=data.get("params", {}))


# ---------------------------------------------------------------------------
# Scheduler / autoscaler
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SchedulerSpec:
    """Queue + placement policy selection for the cluster scheduler.

    ``portfolio`` names extra queue policies raced by a
    :class:`~repro.scheduling.portfolio.PortfolioScheduler` that
    periodically re-selects the live policy.
    """

    queue: str = "fcfs"
    placement: str = "first-fit"
    backfilling: bool = False
    strict_head: bool = False
    portfolio: tuple[str, ...] = ()
    portfolio_interval: float = 50.0

    def __post_init__(self) -> None:
        if self.queue not in QUEUE_POLICIES:
            raise ValueError(f"unknown queue policy {self.queue!r}; "
                             f"registered: {sorted(QUEUE_POLICIES)}")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown placement policy {self.placement!r}; "
                             f"registered: {sorted(PLACEMENT_POLICIES)}")
        for name in self.portfolio:
            if name not in QUEUE_POLICIES:
                raise ValueError(f"unknown portfolio policy {name!r}")
        object.__setattr__(self, "portfolio", tuple(self.portfolio))

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"queue": self.queue, "placement": self.placement,
                "backfilling": self.backfilling,
                "strict_head": self.strict_head,
                "portfolio": list(self.portfolio),
                "portfolio_interval": self.portfolio_interval}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(queue=data.get("queue", "fcfs"),
                   placement=data.get("placement", "first-fit"),
                   backfilling=data.get("backfilling", False),
                   strict_head=data.get("strict_head", False),
                   portfolio=tuple(data.get("portfolio", ())),
                   portfolio_interval=data.get("portfolio_interval", 50.0))


@dataclass(frozen=True)
class AutoscalerSpec:
    """An elastic-provisioning policy from the autoscaler registry."""

    policy: str = "react"
    interval: float = 10.0

    def __post_init__(self) -> None:
        if self.policy not in AUTOSCALERS:
            raise ValueError(f"unknown autoscaler {self.policy!r}; "
                             f"registered: {sorted(AUTOSCALERS)}")
        if self.interval <= 0:
            raise ValueError("autoscaler interval must be positive")

    def build(self) -> Any:
        """Instantiate the autoscaler policy object."""
        return AUTOSCALERS[self.policy]()

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"policy": self.policy, "interval": self.interval}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AutoscalerSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(policy=data.get("policy", "react"),
                   interval=data.get("interval", 10.0))


# ---------------------------------------------------------------------------
# Failures
# ---------------------------------------------------------------------------
def _sampled_bursts_failures(streams: RandomStreams, racks: list,
                             horizon: float,
                             params: Mapping[str, Any]) -> list[FailureEvent]:
    """Correlated bursts with seeded victim sampling.

    At each time in ``times``, ``victims`` machines (an absolute count,
    or a fraction of the fleet when < 1) are sampled without
    replacement and taken down for ``duration`` seconds.
    """
    rng = streams.stream(params.get("stream", "failures"))
    names = [name for rack in racks for name in rack]
    victims = params.get("victims", 1)
    k = (int(len(names) * victims) if isinstance(victims, float)
         and victims < 1.0 else int(victims))
    duration = float(params.get("duration", 30.0))
    events = []
    for when in params["times"]:
        chosen = tuple(sorted(rng.sample(names, k=k)))
        events.append(FailureEvent(time=float(when), machine_names=chosen,
                                   duration=duration))
    return events


def _explicit_failures(streams: RandomStreams, racks: list, horizon: float,
                       params: Mapping[str, Any]) -> list[FailureEvent]:
    """A literal failure schedule: every event spelled out."""
    return [FailureEvent(time=float(e["time"]),
                         machine_names=tuple(e["machines"]),
                         duration=float(e["duration"]))
            for e in params["events"]]


#: Failure kind -> ``(streams, racks, horizon, params) -> events``.
FAILURE_KINDS: dict[str, Callable] = {
    "sampled-bursts": _sampled_bursts_failures,
    "explicit": _explicit_failures,
}


@dataclass(frozen=True)
class FailureSpec:
    """One declared failure schedule: a registered ``kind`` + params."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}; "
                             f"registered: {sorted(FAILURE_KINDS)}")
        object.__setattr__(self, "params", dict(self.params))

    def build(self, streams: RandomStreams, racks: list,
              horizon: float) -> list[FailureEvent]:
        """Generate the failure events for one run."""
        return list(FAILURE_KINDS[self.kind](streams, racks, horizon,
                                             self.params))

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(kind=data["kind"], params=data.get("params", {}))


# ---------------------------------------------------------------------------
# Resilience mechanisms
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetrySpec:
    """Exponential-backoff retry policy parameters."""

    max_attempts: int = 6
    base: float = 1.0
    cap: float = 60.0
    multiplier: float = 2.0
    jitter: str = "none"

    def build(self) -> ExponentialBackoff:
        """Instantiate the retry policy."""
        return ExponentialBackoff(max_attempts=self.max_attempts,
                                  base=self.base, cap=self.cap,
                                  multiplier=self.multiplier,
                                  jitter=self.jitter)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"max_attempts": self.max_attempts, "base": self.base,
                "cap": self.cap, "multiplier": self.multiplier,
                "jitter": self.jitter}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetrySpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint/restart policy parameters."""

    interval: float
    overhead: float = 0.0
    min_runtime: float = 0.0

    def build(self) -> CheckpointPolicy:
        """Instantiate the checkpoint policy."""
        return CheckpointPolicy(interval=self.interval,
                                overhead=self.overhead,
                                min_runtime=self.min_runtime)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"interval": self.interval, "overhead": self.overhead,
                "min_runtime": self.min_runtime}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckpointSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class HedgeSpec:
    """Speculative (hedged) execution policy parameters."""

    delay_factor: float = 2.0
    min_delay: float = 0.0
    max_hedges: int = 1
    min_runtime: float = 0.0

    def build(self) -> HedgePolicy:
        """Instantiate the hedge policy."""
        return HedgePolicy(delay_factor=self.delay_factor,
                           min_delay=self.min_delay,
                           max_hedges=self.max_hedges,
                           min_runtime=self.min_runtime)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"delay_factor": self.delay_factor,
                "min_delay": self.min_delay,
                "max_hedges": self.max_hedges,
                "min_runtime": self.min_runtime}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HedgeSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class SheddingSpec:
    """Load-shedding admission-control parameters."""

    threshold: float = 0.85
    shed_below: int = 1

    def build(self) -> Callable[[Any], LoadSheddingAdmission]:
        """A ``(datacenter) -> admission controller`` factory."""
        return lambda datacenter: LoadSheddingAdmission(
            datacenter, threshold=self.threshold,
            shed_below=self.shed_below)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"threshold": self.threshold, "shed_below": self.shed_below}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SheddingSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(**dict(data))


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------
def _availability_objective(params: Mapping[str, Any]) -> ServiceObjective:
    """Build an :class:`AvailabilityObjective` from spec params."""
    return AvailabilityObjective(params["name"], good=params["good"],
                                 bad=params["bad"],
                                 target=params.get("target", 0.99))


def _queue_wait_objective(params: Mapping[str, Any]) -> ServiceObjective:
    """Build a :class:`QueueWaitObjective` from spec params."""
    return QueueWaitObjective(params["name"],
                              threshold=params["threshold"],
                              target=params.get("target", 0.95))


def _latency_objective(params: Mapping[str, Any]) -> ServiceObjective:
    """Build a :class:`LatencyObjective` from spec params."""
    return LatencyObjective(params["name"], histogram=params["histogram"],
                            threshold=params["threshold"],
                            target=params.get("target", 0.95))


def _goodput_objective(params: Mapping[str, Any]) -> ServiceObjective:
    """Build a :class:`GoodputObjective` from spec params."""
    return GoodputObjective(params["name"], counter=params["counter"],
                            target_rate=params["target_rate"],
                            target=params.get("target", 0.9))


#: Objective kind -> ``(params) -> ServiceObjective`` builder.
OBJECTIVE_KINDS: dict[str, Callable] = {
    "availability": _availability_objective,
    "queue-wait": _queue_wait_objective,
    "latency": _latency_objective,
    "goodput": _goodput_objective,
}


@dataclass(frozen=True)
class ObjectiveSpec:
    """One declared service objective: a registered ``kind`` + params."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; "
                             f"registered: {sorted(OBJECTIVE_KINDS)}")
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> ServiceObjective:
        """Instantiate the objective."""
        return OBJECTIVE_KINDS[self.kind](self.params)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObjectiveSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(kind=data["kind"], params=data.get("params", {}))


@dataclass(frozen=True)
class BurnRuleSpec:
    """One multi-window burn-rate alerting rule."""

    name: str
    long_window: float
    short_window: float
    threshold: float

    def build(self) -> BurnRateRule:
        """Instantiate the burn-rate rule."""
        return BurnRateRule(self.name, long_window=self.long_window,
                            short_window=self.short_window,
                            threshold=self.threshold)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"name": self.name, "long_window": self.long_window,
                "short_window": self.short_window,
                "threshold": self.threshold}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BurnRuleSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(**dict(data))


@dataclass(frozen=True)
class SLOSpec:
    """Declared objectives, burn rules, and the telemetry cadence.

    ``rules=None`` keeps the engine's default SRE fast/slow pair;
    an explicit tuple overrides it.
    """

    objectives: tuple[ObjectiveSpec, ...]
    rules: tuple[BurnRuleSpec, ...] | None = None
    telemetry_interval: float = 5.0

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("an SLO spec needs at least one objective")
        if self.telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        object.__setattr__(self, "objectives", tuple(self.objectives))
        if self.rules is not None:
            object.__setattr__(self, "rules", tuple(self.rules))

    def build_objectives(self) -> tuple[ServiceObjective, ...]:
        """Instantiate every declared objective."""
        return tuple(o.build() for o in self.objectives)

    def build_rules(self) -> tuple[BurnRateRule, ...] | None:
        """Instantiate the burn rules (None keeps the engine default)."""
        if self.rules is None:
            return None
        return tuple(r.build() for r in self.rules)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"objectives": [o.to_dict() for o in self.objectives],
                "rules": (None if self.rules is None
                          else [r.to_dict() for r in self.rules]),
                "telemetry_interval": self.telemetry_interval}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOSpec":
        """Rehydrate from :meth:`to_dict` output."""
        rules = data.get("rules")
        return cls(
            objectives=tuple(ObjectiveSpec.from_dict(o)
                             for o in data["objectives"]),
            rules=(None if rules is None
                   else tuple(BurnRuleSpec.from_dict(r) for r in rules)),
            telemetry_interval=data.get("telemetry_interval", 5.0))


# ---------------------------------------------------------------------------
# Sharding (per-region event loops, conservatively coupled)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardLinkSpec:
    """One declared wide-area link between two shards (symmetric).

    The latency is the one-way message delay between the two regions,
    and — through :func:`~repro.datacenter.wide_area.min_lookahead` —
    the physical bound behind the conservative epoch barrier.
    """

    src: str
    dst: str
    latency: float

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ShardConfigError("a shard link needs two shard names")
        if self.src == self.dst:
            raise ShardConfigError(
                f"shard link endpoints must differ, got {self.src!r} twice")
        if self.latency <= 0:
            raise ShardConfigError(
                f"link {self.src!r}->{self.dst!r} has non-positive latency "
                f"{self.latency}; zero-latency cross-shard links make the "
                f"conservative lookahead vanish")

    def build(self) -> WideAreaLink:
        """The link as a typed wide-area channel descriptor."""
        return WideAreaLink(src=self.src, dst=self.dst, latency=self.latency)

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"src": self.src, "dst": self.dst, "latency": self.latency}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardLinkSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(src=data["src"], dst=data["dst"],
                   latency=data["latency"])


@dataclass(frozen=True)
class ShardOffloadSpec:
    """Dynamic delegation from one shard to a linked peer.

    When the shard's instantaneous utilization reaches ``threshold`` at
    submit time, plain tasks are sent to ``target`` over the declared
    link instead of the local scheduler (C7 offloading, across the
    shard boundary).
    """

    target: str
    threshold: float = 0.85

    def __post_init__(self) -> None:
        if not self.target:
            raise ShardConfigError("an offload section needs a target shard")
        if not 0.0 <= self.threshold <= 1.0:
            raise ShardConfigError(
                f"offload threshold must be in [0, 1], got {self.threshold}")

    def to_dict(self) -> dict:
        """Plain-data form."""
        return {"target": self.target, "threshold": self.threshold}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardOffloadSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(target=data["target"],
                   threshold=data.get("threshold", 0.85))


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a named region owning a subset of the clusters.

    Each shard runs its own simulator, scheduler, and datacenter (named
    after the shard); ``workload`` overrides the scenario's workload for
    this region (usually every region declares its own), and
    ``offload`` optionally delegates overflow to a linked peer.
    """

    name: str
    clusters: tuple[str, ...]
    workload: WorkloadSpec | None = None
    offload: ShardOffloadSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ShardConfigError("a shard needs a non-empty name")
        if not self.clusters:
            raise ShardConfigError(
                f"shard {self.name!r} owns no clusters; every shard needs "
                f"at least one")
        object.__setattr__(self, "clusters", tuple(self.clusters))

    def to_dict(self) -> dict:
        """Plain-data form (optional sections omitted when absent)."""
        data: dict[str, Any] = {"name": self.name,
                                "clusters": list(self.clusters)}
        if self.workload is not None:
            data["workload"] = self.workload.to_dict()
        if self.offload is not None:
            data["offload"] = self.offload.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardSpec":
        """Rehydrate from :meth:`to_dict` output."""
        workload = data.get("workload")
        offload = data.get("offload")
        return cls(name=data["name"], clusters=tuple(data["clusters"]),
                   workload=(None if workload is None
                             else WorkloadSpec.from_dict(workload)),
                   offload=(None if offload is None
                            else ShardOffloadSpec.from_dict(offload)))


@dataclass(frozen=True)
class ShardPlanSpec:
    """The partition of a scenario into conservatively coupled shards.

    ``shards`` must partition the topology's clusters exactly — every
    cluster assigned to one shard, none to two.  ``links`` declare the
    wide-area channels (symmetric, positive latency); the conservative
    lookahead is their minimum latency unless a smaller explicit
    ``epoch`` tightens it.  All structural errors raise the typed
    :class:`~repro.sim.sharding.ShardConfigError` so the CLI can exit 2
    with one friendly line.
    """

    shards: tuple[ShardSpec, ...]
    links: tuple[ShardLinkSpec, ...] = ()
    epoch: float | None = None

    def __post_init__(self) -> None:
        if not self.shards:
            raise ShardConfigError("a shard plan needs at least one shard")
        object.__setattr__(self, "shards", tuple(self.shards))
        object.__setattr__(self, "links", tuple(self.links))
        names = [shard.name for shard in self.shards]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ShardConfigError(f"duplicate shard names {duplicates}")
        owners: dict[str, str] = {}
        for shard in self.shards:
            for cluster in shard.clusters:
                if cluster in owners:
                    raise ShardConfigError(
                        f"overlapping shards: cluster {cluster!r} is owned "
                        f"by both {owners[cluster]!r} and {shard.name!r}")
                owners[cluster] = shard.name
        declared = set(names)
        pairs: set[tuple[str, str]] = set()
        for link in self.links:
            for endpoint in (link.src, link.dst):
                if endpoint not in declared:
                    raise ShardConfigError(
                        f"link {link.src!r}->{link.dst!r} references "
                        f"unknown shard {endpoint!r}; declared: "
                        f"{sorted(declared)}")
            pair = tuple(sorted((link.src, link.dst)))
            if pair in pairs:
                raise ShardConfigError(
                    f"duplicate link between {pair[0]!r} and {pair[1]!r}")
            pairs.add(pair)
        if self.epoch is not None:
            if self.epoch <= 0:
                raise ShardConfigError(
                    f"epoch must be positive, got {self.epoch}")
            limit = min_lookahead([link.build() for link in self.links])
            if self.epoch > limit:
                raise ShardConfigError(
                    f"epoch {self.epoch} exceeds the minimum link latency "
                    f"{limit}; a conservative window cannot outrun the "
                    f"slowest guarantee")
        for shard in self.shards:
            if shard.offload is None:
                continue
            target = shard.offload.target
            if target not in declared:
                raise ShardConfigError(
                    f"shard {shard.name!r} offloads to unknown shard "
                    f"{target!r}")
            if target == shard.name:
                raise ShardConfigError(
                    f"shard {shard.name!r} cannot offload to itself")
            if tuple(sorted((shard.name, target))) not in pairs:
                raise ShardConfigError(
                    f"shard {shard.name!r} offloads to {target!r} but no "
                    f"link between them is declared")

    def validate(self, topology: "TopologySpec") -> None:
        """Check the plan partitions ``topology`` exactly.

        Raises :class:`~repro.sim.sharding.ShardConfigError` when a
        shard references an unknown datacenter cluster or a topology
        cluster is left unassigned.
        """
        known = {cluster.name for cluster in topology.clusters}
        assigned: set[str] = set()
        for shard in self.shards:
            for cluster in shard.clusters:
                if cluster not in known:
                    raise ShardConfigError(
                        f"shard {shard.name!r} references unknown "
                        f"datacenter cluster {cluster!r}; topology "
                        f"declares {sorted(known)}")
                assigned.add(cluster)
        missing = known - assigned
        if missing:
            raise ShardConfigError(
                f"clusters {sorted(missing)} are assigned to no shard; "
                f"the plan must partition the topology exactly")

    def lookahead(self) -> float:
        """The conservative window width this plan couples under.

        The explicit ``epoch`` when declared, otherwise the minimum
        link latency (``inf`` for fully decoupled shards).
        """
        if self.epoch is not None:
            return self.epoch
        return min_lookahead([link.build() for link in self.links])

    def latency(self, a: str, b: str) -> float:
        """One-way latency between two shards (symmetric lookup)."""
        for link in self.links:
            if {link.src, link.dst} == {a, b}:
                return link.latency
        raise ShardConfigError(f"no link declared between {a!r} and {b!r}")

    def to_dict(self) -> dict:
        """Plain-data form (``epoch`` omitted when defaulted)."""
        data: dict[str, Any] = {
            "shards": [shard.to_dict() for shard in self.shards],
            "links": [link.to_dict() for link in self.links],
        }
        if self.epoch is not None:
            data["epoch"] = self.epoch
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardPlanSpec":
        """Rehydrate from :meth:`to_dict` output."""
        return cls(
            shards=tuple(ShardSpec.from_dict(s) for s in data["shards"]),
            links=tuple(ShardLinkSpec.from_dict(l)
                        for l in data.get("links", ())),
            epoch=data.get("epoch"))


# ---------------------------------------------------------------------------
# The scenario spec
# ---------------------------------------------------------------------------
_OPTIONAL_SECTIONS: dict[str, type] = {
    "autoscaler": AutoscalerSpec,
    "failures": FailureSpec,
    "retries": RetrySpec,
    "checkpoints": CheckpointSpec,
    "hedging": HedgeSpec,
    "shedding": SheddingSpec,
    "slos": SLOSpec,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one reproducible simulation run needs, as plain data.

    The single composition artifact behind benchmarks, examples, chaos
    experiments, and the CLI.  :meth:`build` resolves the declarative
    sections into live components (the composition root);
    :meth:`run` executes the scenario and returns a deterministic
    :class:`~repro.scenario.result.ScenarioResult`.

    Args:
        name: Scenario name (keys artifacts and fingerprints).
        topology: Physical substrate declaration.
        workload: Workload declaration (kind + parameters).
        seed: Root seed; every random draw in the run derives from it.
        scheduler: Queue/placement policy selection.
        autoscaler: Optional elastic-provisioning section.
        failures: Optional failure schedule.
        retries: Optional retry policy (arms a
            :class:`~repro.selfaware.anomaly.RecoveryPlanner`).
        checkpoints: Optional checkpoint/restart policy.
        hedging: Optional speculative-execution policy.
        shedding: Optional load-shedding admission control.
        slos: Optional service objectives + burn-rate alerting (arms
            streaming telemetry and implies an observer).
        observer: Arm the observability stack for this run.
        duration: Optional run-until bound in sim-seconds; ``None``
            runs to event exhaustion (bounded by ``max_time``).
        horizon: Failure-generation horizon in sim-seconds.
        max_time: Safety cap on simulated time.
        availability_slo: Machine-availability target graded into the
            resilience report.
        injection_jitter: Perturbation bound on failure times.
        shards: Optional partition into per-region event loops with
            conservative epoch coupling (see
            :mod:`repro.sim.sharding`); ``None`` runs the scenario on
            one loop, exactly as before.
    """

    name: str
    topology: TopologySpec
    workload: WorkloadSpec
    seed: int = 0
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    autoscaler: AutoscalerSpec | None = None
    failures: FailureSpec | None = None
    retries: RetrySpec | None = None
    checkpoints: CheckpointSpec | None = None
    hedging: HedgeSpec | None = None
    shedding: SheddingSpec | None = None
    slos: SLOSpec | None = None
    observer: bool = False
    duration: float | None = None
    horizon: float = 1000.0
    max_time: float = 10_000_000.0
    availability_slo: float = 0.0
    injection_jitter: float = 0.0
    shards: ShardPlanSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= self.availability_slo <= 1.0:
            raise ValueError("availability_slo must be in [0, 1]")
        if self.injection_jitter < 0:
            raise ValueError("injection_jitter must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive when given")
        if self.shards is not None:
            self.shards.validate(self.topology)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable identity digest, via the experiment-recipe scheme.

        Reuses :meth:`~repro.sim.experiment.ExperimentRecipe.fingerprint`
        so sweep artifacts, ``BENCH_*.json`` records, and experiment
        registries share one identity format.
        """
        return self.recipe().fingerprint()

    def recipe(self) -> ExperimentRecipe:
        """The spec as an :class:`~repro.sim.experiment.ExperimentRecipe`."""
        return ExperimentRecipe(name=self.name, seed=self.seed,
                                parameters=self.to_dict())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The spec as JSON-ready plain data."""
        data: dict[str, Any] = {
            "schema": "scenario-spec/v1",
            "name": self.name,
            "seed": self.seed,
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
            "scheduler": self.scheduler.to_dict(),
            "observer": self.observer,
            "duration": self.duration,
            "horizon": self.horizon,
            "max_time": self.max_time,
            "availability_slo": self.availability_slo,
            "injection_jitter": self.injection_jitter,
        }
        for key in _OPTIONAL_SECTIONS:
            section = getattr(self, key)
            data[key] = None if section is None else section.to_dict()
        # Omit-if-None (unlike the always-emitted sections above) keeps
        # every pre-existing spec fingerprint byte-identical.
        if self.shards is not None:
            data["shards"] = self.shards.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rehydrate a spec from :meth:`to_dict` output."""
        schema = data.get("schema", "scenario-spec/v1")
        if schema != "scenario-spec/v1":
            raise ValueError(f"unsupported scenario schema {schema!r}")
        kwargs: dict[str, Any] = {
            "name": data["name"],
            "seed": data.get("seed", 0),
            "topology": TopologySpec.from_dict(data["topology"]),
            "workload": WorkloadSpec.from_dict(data["workload"]),
            "scheduler": SchedulerSpec.from_dict(data.get("scheduler", {})),
            "observer": data.get("observer", False),
            "duration": data.get("duration"),
            "horizon": data.get("horizon", 1000.0),
            "max_time": data.get("max_time", 10_000_000.0),
            "availability_slo": data.get("availability_slo", 0.0),
            "injection_jitter": data.get("injection_jitter", 0.0),
        }
        for key, section_cls in _OPTIONAL_SECTIONS.items():
            section = data.get(key)
            kwargs[key] = (None if section is None
                           else section_cls.from_dict(section))
        shards = data.get("shards")
        kwargs["shards"] = (None if shards is None
                            else ShardPlanSpec.from_dict(shards))
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        """The spec as a deterministic JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rehydrate a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Variation
    # ------------------------------------------------------------------
    def override(self, updates: Mapping[str, Any]) -> "ScenarioSpec":
        """A new spec with dotted-path fields replaced.

        Keys address the :meth:`to_dict` tree (``"seed"``,
        ``"scheduler.queue"``, ``"workload.params.n_tasks"`` ...).  The
        special key ``"scale"`` multiplies every cluster's machine
        count by its value (minimum one machine) — the capacity axis of
        a sweep.
        """
        data = self.to_dict()
        for path, value in updates.items():
            if path == "scale":
                for cluster in data["topology"]["clusters"]:
                    cluster["machines"] = max(1, round(cluster["machines"]
                                                       * value))
                continue
            parts = path.split(".")
            node = data
            for part in parts[:-1]:
                nxt = node.get(part)
                if not isinstance(nxt, dict):
                    raise KeyError(f"override path {path!r} does not "
                                   f"resolve (at {part!r})")
                node = nxt
            node[parts[-1]] = value
        return ScenarioSpec.from_dict(data)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The identical scenario under a different root seed."""
        return self.override({"seed": seed})

    # ------------------------------------------------------------------
    # Resolution (declarative -> live ingredients)
    # ------------------------------------------------------------------
    def cluster_factory(self) -> Callable[[], list[Cluster]]:
        """``() -> clusters`` builder (fresh topology per run)."""
        return self.topology.build

    def workload_fn(self) -> Callable[[RandomStreams, Any], list]:
        """``(streams, datacenter) -> items`` builder."""
        workload = self.workload
        return workload.build

    def failure_fn(self) -> Callable[[RandomStreams, list, float],
                                     Sequence[FailureEvent]] | None:
        """``(streams, racks, horizon) -> events`` builder, or None."""
        if self.failures is None:
            return None
        return self.failures.build

    def shard_subspec(self, shard: ShardSpec) -> "ScenarioSpec":
        """The single-region spec one shard of this scenario runs.

        The shard owns its declared clusters (in topology declaration
        order) under a datacenter named after the shard, runs its own
        workload (falling back to the scenario's), and derives its seed
        as the ``shard:<name>`` substream of the scenario seed — so
        regions draw decorrelated randomness yet the whole fleet is a
        pure function of the one root seed.  Resilience, scheduling,
        and observability sections pass through unchanged.
        """
        if self.shards is None:
            raise ShardConfigError(
                f"scenario {self.name!r} declares no shards")
        owned = set(shard.clusters)
        clusters = tuple(c for c in self.topology.clusters
                         if c.name in owned)
        topology = TopologySpec(clusters=clusters, datacenter=shard.name,
                                operator=self.topology.operator)
        return ScenarioSpec(
            name=f"{self.name}/{shard.name}",
            topology=topology,
            workload=shard.workload or self.workload,
            seed=substream_seed(self.seed, f"shard:{shard.name}"),
            scheduler=self.scheduler,
            autoscaler=self.autoscaler,
            failures=self.failures,
            retries=self.retries,
            checkpoints=self.checkpoints,
            hedging=self.hedging,
            shedding=self.shedding,
            slos=self.slos,
            observer=self.observer,
            duration=self.duration,
            horizon=self.horizon,
            max_time=self.max_time,
            availability_slo=self.availability_slo,
            injection_jitter=self.injection_jitter)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build(self, **overrides: Any) -> Any:
        """Compose the live :class:`~repro.scenario.runtime.ScenarioRuntime`.

        Keyword ``overrides`` replace resolved ingredients for
        programmatic studies (e.g. ``autoscaler=CustomPolicy()``); such
        runs are no longer reproducible from the JSON form alone.
        A sharded spec composes a
        :class:`~repro.sim.sharding.ShardedScenarioRuntime` instead —
        per-shard composition is derived, so overrides are rejected.
        """
        if self.shards is not None:
            if overrides:
                raise ShardConfigError(
                    "sharded scenarios compose each shard from the spec; "
                    "build() overrides are not supported")
            from ..sim.sharding import ShardedScenarioRuntime
            return ShardedScenarioRuntime(self)
        from .runtime import build_runtime
        return build_runtime(self, **overrides)

    def run(self, **overrides: Any) -> Any:
        """Build and execute; returns a deterministic ``ScenarioResult``."""
        return self.build(**overrides).execute()


def scenario_experiment(seed: int,
                        parameters: Mapping[str, Any]) -> dict[str, float]:
    """The kernel as an :data:`~repro.sim.experiment.ExperimentFn`.

    Bridges the reproducibility machinery onto the scenario kernel:
    ``spec.recipe()`` publishes a spec as an
    :class:`~repro.sim.experiment.ExperimentRecipe` (its parameters are
    the spec's :meth:`~ScenarioSpec.to_dict` tree), and this function
    re-runs it —

    >>> record = run_experiment(scenario_experiment, spec.recipe())
    >>> check_reproduction(scenario_experiment, record).reproducible
    True

    so ``check_reproduction`` exercises the full declarative pipeline:
    rehydrate, compose, run, summarize.
    """
    spec = ScenarioSpec.from_dict(parameters)
    if seed != spec.seed:
        spec = spec.with_seed(seed)
    return spec.run().summary()


def _spec_field_names() -> list[str]:
    """The declared field names of :class:`ScenarioSpec` (for tooling)."""
    return [f.name for f in fields(ScenarioSpec)]
