"""Deterministic scenario results: the run's outcome as plain data.

A :class:`ScenarioResult` is everything a finished run reports —
scheduler statistics, datacenter metrics, the resilience summary, SLO
verdicts and the alert log, the subsystem profile — as JSON-ready
plain data with a canonical SHA-256 :meth:`digest`.  No wall-clock
time ever enters the record, so a spec run in-process, in a
multiprocessing worker, or rehydrated from JSON yields the
byte-identical result.  That identity is what the sweep runner's
order-independent merge and the golden-pinned determinism tests rely
on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..observability.export import dumps_deterministic
from ..workload.task import TaskState

__all__ = ["ScenarioResult", "compile_result"]


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run, as deterministic plain data.

    Attributes:
        name: The scenario's name.
        seed: The root seed the run derived all randomness from.
        fingerprint: The spec's identity digest (empty for runs
            composed without a spec).
        sim_time: Final simulated clock.
        events_processed: Total events the simulator processed.
        makespan: Last task-finish time (``sim_time`` if none finished).
        tasks_total: Tasks in the workload (jobs counted by task).
        tasks_finished: Tasks that reached FINISHED.
        statistics: Scheduler wait/slowdown/response summaries, or
            ``None`` when nothing completed.
        datacenter: Utilization / energy / failure counters.
        chaos: Resilience summary (the chaos report's flat view plus
            violations), present when failures or retries were armed.
        slo_report: Per-objective SLO verdicts when objectives were
            declared.
        alerts: The burn-rate alert log (plain rows) when declared.
        profile: The observer's deterministic snapshot (metrics +
            per-subsystem profile) when an observer was armed.
        shards: The sharded-run roll-up — coupling record (lookahead,
            epoch count, cross-shard traffic) and every per-shard
            result in full — present only for sharded runs, so every
            single-loop result digest is untouched.
    """

    name: str
    seed: int
    fingerprint: str
    sim_time: float
    events_processed: int
    makespan: float
    tasks_total: int
    tasks_finished: int
    statistics: dict[str, float] | None = None
    datacenter: dict[str, float] = field(default_factory=dict)
    chaos: dict[str, Any] | None = None
    slo_report: dict[str, dict[str, float]] | None = None
    alerts: list[dict] | None = None
    profile: dict[str, Any] | None = None
    shards: dict[str, Any] | None = None

    def to_dict(self) -> dict:
        """The result as JSON-ready plain data."""
        data = {
            "schema": "scenario-result/v1",
            "name": self.name,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "sim_time": self.sim_time,
            "events_processed": self.events_processed,
            "makespan": self.makespan,
            "tasks_total": self.tasks_total,
            "tasks_finished": self.tasks_finished,
            "statistics": self.statistics,
            "datacenter": dict(self.datacenter),
            "chaos": self.chaos,
            "slo_report": self.slo_report,
            "alerts": self.alerts,
            "profile": self.profile,
        }
        # Omit-if-None keeps every pre-existing result digest intact.
        if self.shards is not None:
            data["shards"] = self.shards
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioResult":
        """Rehydrate a result from :meth:`to_dict` output."""
        schema = data.get("schema", "scenario-result/v1")
        if schema != "scenario-result/v1":
            raise ValueError(f"unsupported result schema {schema!r}")
        return cls(name=data["name"], seed=data["seed"],
                   fingerprint=data["fingerprint"],
                   sim_time=data["sim_time"],
                   events_processed=data["events_processed"],
                   makespan=data["makespan"],
                   tasks_total=data["tasks_total"],
                   tasks_finished=data["tasks_finished"],
                   statistics=data.get("statistics"),
                   datacenter=data.get("datacenter", {}),
                   chaos=data.get("chaos"),
                   slo_report=data.get("slo_report"),
                   alerts=data.get("alerts"),
                   profile=data.get("profile"),
                   shards=data.get("shards"))

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace, no NaN)."""
        return dumps_deterministic(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        """Rehydrate a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def summary(self) -> dict[str, float]:
        """Flat numeric view for tabulation (sweep report rows)."""
        flat = {
            "seed": float(self.seed),
            "sim_time": self.sim_time,
            "makespan": self.makespan,
            "tasks_total": float(self.tasks_total),
            "tasks_finished": float(self.tasks_finished),
        }
        if self.statistics:
            for key in ("wait_mean", "wait_p95", "slowdown_mean",
                        "response_p95", "mean_queue_length"):
                if key in self.statistics:
                    flat[key] = self.statistics[key]
        flat.update({f"datacenter_{k}": v
                     for k, v in self.datacenter.items()})
        if self.chaos is not None:
            flat["violations"] = float(len(self.chaos["violations"]))
            flat["availability"] = self.chaos["summary"]["availability"]
        return flat


def compile_result(runtime: Any) -> ScenarioResult:
    """Build the :class:`ScenarioResult` for a driven runtime.

    Reads only deterministic signals — simulated clocks, counters,
    registries — never wall time, so the record is identical across
    processes for the same spec.
    """
    sim = runtime.sim
    scheduler = runtime.scheduler
    datacenter = runtime.datacenter
    spec = runtime.spec
    tasks = runtime.tasks
    finished = [t for t in tasks if t.state is TaskState.FINISHED]
    makespan = (max(t.finish_time for t in finished) if finished
                else sim.now)
    statistics = scheduler.statistics() if scheduler.completed else None
    datacenter_view = {
        "mean_utilization": datacenter.mean_utilization(),
        "energy_joules": datacenter.total_energy_joules(),
        "failed_executions": float(datacenter.failed_executions),
        "wasted_core_seconds": datacenter.wasted_core_seconds,
        "preserved_core_seconds": datacenter.preserved_core_seconds,
    }
    if any(t.input_files or t.output_files for t in tasks):
        # Data-transfer accounting appears only for data-aware
        # workloads, keeping every pre-existing result digest intact.
        data = datacenter.data
        datacenter_view["data_transfer_seconds"] = data.transfer_seconds
        datacenter_view["data_transfer_bytes"] = data.transfer_bytes
        datacenter_view["data_local_bytes"] = data.local_bytes
    chaos = None
    if runtime.injector is not None or runtime.planner is not None:
        report = runtime.chaos_report()
        chaos = {
            "summary": report.summary(),
            "max_attempts_observed": report.max_attempts_observed,
            "unrecovered_victims": report.unrecovered_victims,
            "violations": list(report.violations),
        }
    slo_report = None
    alerts = None
    if runtime.engine is not None:
        slo_report = runtime.engine.report()
        alerts = runtime.engine.alerts.to_json()
    profile = (runtime.observer.snapshot()
               if runtime.observer is not None else None)
    return ScenarioResult(
        name=spec.name if spec is not None else "",
        seed=runtime.seed,
        fingerprint=spec.fingerprint() if spec is not None else "",
        sim_time=sim.now,
        events_processed=sim.events_processed,
        makespan=makespan,
        tasks_total=len(tasks),
        tasks_finished=len(finished),
        statistics=statistics,
        datacenter=datacenter_view,
        chaos=chaos,
        slo_report=slo_report,
        alerts=alerts,
        profile=profile,
    )
