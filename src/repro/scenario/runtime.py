"""The scenario composition root: one assembly path for every run.

Before this module existed the repository wired up simulations five
different ways — the perf benchmarks, each example script, the chaos
harness, experiment recipes, and the CLI all duplicated the
datacenter/workload/scheduler/observer setup.  :func:`compose` is the
single composition root they now share: it builds a
:class:`ScenarioRuntime` holding every live component of one run, in a
*fixed construction order* so that refactoring an entry point onto the
kernel preserves its determinism digests bit for bit.

The drive loop is the one introduced by the chaos harness: step the
simulator to event exhaustion (bounded by ``duration``/``max_time``)
without the clock jump that ``run(until=...)`` performs on an early
drain, advancing streaming telemetry *externally* so observation can
never perturb the event order.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..autoscaling.controller import AutoscalingController
from ..datacenter.cluster import Cluster
from ..datacenter.datacenter import Datacenter
from ..failures.injection import FailureInjector
from ..failures.models import FailureEvent
from ..observability.observer import Observer
from ..observability.slo import BurnRateRule, ServiceObjective, SLOEngine
from ..observability.streaming import StreamingPipeline
from ..scheduling.policies import PLACEMENT_POLICIES, QUEUE_POLICIES
from ..scheduling.portfolio import PortfolioScheduler
from ..scheduling.scheduler import ClusterScheduler
from ..scheduling.workflow_engine import WorkflowEngine
from ..selfaware.anomaly import RecoveryPlanner
from ..sim import RandomStreams, Simulator
from ..workload.task import Job, Task
from ..workload.workflow import Workflow
from .result import ScenarioResult, compile_result
from .spec import ScenarioSpec

__all__ = ["ScenarioRuntime", "compose", "build_runtime"]


class ScenarioRuntime:
    """The live components of one composed scenario run.

    Produced by :func:`compose`; holds the simulator, the observer (if
    armed), the SLO engine (if objectives were declared), the
    datacenter, scheduler, resilience machinery, workload, and failure
    injector.  :meth:`drive` executes the run, :meth:`finalize` stops
    the periodic processes, and :meth:`result` compiles the
    deterministic :class:`~repro.scenario.result.ScenarioResult`.
    """

    def __init__(self) -> None:
        self.spec: ScenarioSpec | None = None
        self.seed: int = 0
        self.sim: Simulator = None  # type: ignore[assignment]
        self.observer: Observer | None = None
        self.engine: SLOEngine | None = None
        self.streams: RandomStreams = None  # type: ignore[assignment]
        self.clusters: list[Cluster] = []
        self.datacenter: Datacenter = None  # type: ignore[assignment]
        self.admission: Any = None
        self.scheduler: ClusterScheduler = None  # type: ignore[assignment]
        self.portfolio: PortfolioScheduler | None = None
        self.controller: AutoscalingController | None = None
        self.planner: RecoveryPlanner | None = None
        self.workflow_engine: WorkflowEngine | None = None
        self.retry_policy: Any = None
        self.items: list = []
        self.tasks: list[Task] = []
        self.events: list[FailureEvent] = []
        self.injector: FailureInjector | None = None
        self.availability_slo: float = 0.0
        self.duration: float | None = None
        self.max_time: float = 10_000_000.0
        self._driven = False
        self._finalized = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def drive(self, trace: list[float] | None = None) -> None:
        """Step the run to completion.

        Runs to event exhaustion bounded by ``duration`` (when set) or
        ``max_time``, *without* the clock jump to the stop time that
        ``Simulator.run(until=...)`` performs on an early drain — the
        availability denominator is the actual elapsed time.  Streaming
        telemetry ticks are driven externally (``advance``) rather than
        as sim events, so observation can never keep a drained
        simulation alive or perturb its event order.

        Args:
            trace: Optional list; when given, ``sim.now`` is appended
                after every step — the event-time trace the perf
                harness digests to pin exact event ordering.
        """
        if self._driven:
            raise RuntimeError("this runtime was already driven; "
                               "build a fresh one per run")
        self._driven = True
        sim = self.sim
        bound = self.duration if self.duration is not None else self.max_time
        if self.engine is None:
            if trace is None:
                while sim.peek() <= bound:
                    sim.step()
            else:
                record = trace.append
                while sim.peek() <= bound:
                    sim.step()
                    record(sim.now)
        else:
            pipeline = self.engine.pipeline
            record = trace.append if trace is not None else None
            while (when := sim.peek()) <= bound:
                pipeline.advance(when)
                sim.step()
                if record is not None:
                    record(sim.now)
        if self.duration is not None and sim.now < self.duration:
            # An explicit duration fixes the observation window: jump
            # the clock to it (no events remain at or before it).
            sim.run(until=self.duration)
        if self.engine is not None:
            self.engine.pipeline.advance(sim.now)

    def finalize(self) -> None:
        """Stop the periodic processes (scheduler, portfolio, scaler)."""
        if self._finalized:
            return
        self._finalized = True
        self.scheduler.stop()
        if self.portfolio is not None:
            self.portfolio.stop()
        if self.controller is not None:
            self.controller.stop()

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def chaos_report(self):
        """The resilience-graded view of the finished run.

        Returns a :class:`~repro.resilience.chaos.ChaosReport` (SLO
        verdicts included when an engine was armed) — exactly what
        :meth:`ChaosExperiment.run` reports.
        """
        from ..resilience.chaos import compile_report
        report = compile_report(
            self.sim, self.datacenter, self.scheduler, self.planner,
            self.injector, self.tasks, seed=self.seed,
            availability_slo=self.availability_slo,
            retry_policy=self.retry_policy)
        if self.engine is not None:
            report.slo_report = self.engine.report()
            report.alert_log = self.engine.alerts
            report.violations.extend(self.engine.violations())
        return report

    def result(self) -> ScenarioResult:
        """Compile the deterministic result record for this run."""
        return compile_result(self)

    def execute(self, trace: list[float] | None = None) -> ScenarioResult:
        """Drive, finalize, and compile the result in one call."""
        self.drive(trace=trace)
        self.finalize()
        result = self.result()
        if self.observer is not None:
            # The run's simulator is private; release the observer so
            # its collected data can outlive the scenario.
            self.observer.detach()
        return result


def compose(*, seed: int,
            clusters: Callable[[], Sequence[Cluster]],
            workload: Callable[[RandomStreams, Datacenter], Sequence],
            failures: Callable[[RandomStreams, list, float],
                               Sequence[FailureEvent]] | None = None,
            observer: Observer | None = None,
            slos: Sequence[ServiceObjective] = (),
            slo_rules: Sequence[BurnRateRule] | None = None,
            telemetry_interval: float = 5.0,
            queue_policy: Any = None,
            placement_policy: Any = None,
            backfilling: bool = False,
            strict_head: bool = False,
            admission: Callable[[Datacenter], Any] | None = None,
            hedge_policy: Any = None,
            retry_policy: Any = None,
            checkpoint_policy: Any = None,
            portfolio: Sequence[Any] | None = None,
            portfolio_interval: float = 50.0,
            autoscaler: Any = None,
            autoscaler_interval: float = 10.0,
            datacenter_name: str = "dc",
            operator: str = "operator",
            horizon: float = 1000.0,
            injection_jitter: float = 0.0,
            availability_slo: float = 0.0,
            duration: float | None = None,
            max_time: float = 10_000_000.0,
            spec: ScenarioSpec | None = None,
            submit_router: Callable[[Any], bool] | None = None,
            ) -> ScenarioRuntime:
    """Assemble one run from live ingredients (the composition root).

    Every entry point — spec runs, the chaos harness, the perf
    benchmarks — funnels through this function, in this construction
    order; the order is part of the determinism contract.

    Args:
        seed: Root seed for the run's :class:`RandomStreams`.
        clusters: ``() -> clusters`` factory (fresh topology per run).
        workload: ``(streams, datacenter) -> tasks-or-jobs``.
        failures: Optional ``(streams, racks, horizon) -> events``;
            when given a :class:`FailureInjector` is armed even if the
            schedule comes back empty (a calm control run).
        observer: Optional observer to attach to the private simulator.
        slos: Declared objectives; arm streaming telemetry + SLOEngine
            (requires ``observer``).
        slo_rules: Burn rules for the engine (None keeps its default).
        telemetry_interval: Sim-seconds between telemetry windows.
        queue_policy / placement_policy / backfilling / strict_head:
            Scheduler configuration, as for :class:`ClusterScheduler`.
        admission: Optional ``(datacenter) -> admission controller``.
        hedge_policy: Optional speculative-execution policy.
        retry_policy: Optional retry policy; arms a
            :class:`RecoveryPlanner` with the ``"retry-jitter"`` stream.
        checkpoint_policy: Optional policy stamped onto the workload.
        portfolio: Optional extra queue-policy instances raced by a
            :class:`PortfolioScheduler`.
        portfolio_interval: Portfolio re-selection cadence.
        autoscaler: Optional autoscaling policy object; arms an
            :class:`AutoscalingController`.
        autoscaler_interval: Autoscaler evaluation cadence.
        datacenter_name / operator: Datacenter identity.
        horizon: Failure-generation horizon.
        injection_jitter: Failure-time perturbation bound.
        availability_slo: Target graded into the chaos report.
        duration: Optional run-until bound; None runs to exhaustion.
        max_time: Safety cap on simulated time.
        spec: The originating spec, if any (carried on the runtime for
            fingerprinting; composition never reads it).
        submit_router: Optional arrival-time hook, ``(item) -> bool``;
            returning True claims the item (it is *not* submitted
            locally).  The sharded runtime uses this to divert
            offloaded tasks into the cross-shard channel.

    Returns:
        A ready-to-drive :class:`ScenarioRuntime`.
    """
    if slos and observer is None:
        raise ValueError(
            "SLO grading reads the metrics registry; pass an observer "
            "when the scenario declares slos")
    runtime = ScenarioRuntime()
    runtime.spec = spec
    runtime.seed = seed
    runtime.availability_slo = availability_slo
    runtime.duration = duration
    runtime.max_time = max_time
    runtime.retry_policy = retry_policy

    sim = Simulator()
    runtime.sim = sim
    if observer is not None:
        observer.attach(sim)
        runtime.observer = observer
    if slos:
        pipeline = StreamingPipeline(sim, observer.metrics,
                                     interval=telemetry_interval)
        runtime.engine = (SLOEngine(pipeline, tuple(slos), rules=slo_rules)
                          if slo_rules is not None
                          else SLOEngine(pipeline, tuple(slos)))
    streams = RandomStreams(seed)
    runtime.streams = streams
    runtime.clusters = list(clusters())
    datacenter = Datacenter(sim, runtime.clusters, name=datacenter_name,
                            operator=operator)
    runtime.datacenter = datacenter
    runtime.admission = admission(datacenter) if admission else None
    scheduler = ClusterScheduler(
        sim, datacenter, queue_policy=queue_policy,
        placement_policy=placement_policy, backfilling=backfilling,
        strict_head=strict_head, admission=runtime.admission,
        hedge_policy=hedge_policy)
    runtime.scheduler = scheduler
    if portfolio:
        runtime.portfolio = PortfolioScheduler(
            sim, scheduler, list(portfolio), interval=portfolio_interval)
    if autoscaler is not None:
        runtime.controller = AutoscalingController(
            sim, datacenter, scheduler, autoscaler,
            interval=autoscaler_interval)
    if retry_policy is not None:
        runtime.planner = RecoveryPlanner(
            scheduler, retry_policy=retry_policy,
            rng=streams.stream("retry-jitter"))
    items = list(workload(streams, datacenter))
    if not items:
        raise ValueError("the workload produced no tasks")
    runtime.items = items
    runtime.tasks = _flatten(items)
    if any(isinstance(item, Workflow) for item in items):
        # DAG workloads need an execution engine that releases tasks
        # as dependencies finish; plain job/task workloads keep the
        # historical path (no engine, no extra completion callback).
        runtime.workflow_engine = WorkflowEngine(
            sim, scheduler, retry_policy=retry_policy, streams=streams)
    if checkpoint_policy is not None:
        checkpoint_policy.apply(runtime.tasks)
    if failures is not None:
        racks = [[machine.name for machine in rack]
                 for cluster in runtime.clusters for rack in cluster.racks]
        runtime.events = list(failures(streams, racks, horizon))
        runtime.injector = FailureInjector(sim, datacenter, runtime.events,
                                           streams=streams,
                                           jitter=injection_jitter)
    sim.process(_arrivals(sim, scheduler, items,
                          engine=runtime.workflow_engine,
                          router=submit_router),
                name="arrivals")
    return runtime


def build_runtime(spec: ScenarioSpec, **overrides: Any) -> ScenarioRuntime:
    """Resolve a :class:`ScenarioSpec` into a composed runtime.

    This is what :meth:`ScenarioSpec.build` calls.  Keyword
    ``overrides`` replace resolved ingredients by :func:`compose`
    parameter name (e.g. ``autoscaler=CustomPolicy()``,
    ``observer=my_observer``) — the programmatic escape hatch for
    studies whose components have no declarative form.  A run built
    with overrides is no longer reproducible from the spec JSON alone.
    """
    scheduler = spec.scheduler
    ingredients: dict[str, Any] = {
        "seed": spec.seed,
        "clusters": spec.cluster_factory(),
        "workload": spec.workload_fn(),
        "failures": spec.failure_fn(),
        "queue_policy": QUEUE_POLICIES[scheduler.queue](),
        "placement_policy": PLACEMENT_POLICIES[scheduler.placement](),
        "backfilling": scheduler.backfilling,
        "strict_head": scheduler.strict_head,
        "portfolio": ([QUEUE_POLICIES[name]() for name in
                       (scheduler.queue, *scheduler.portfolio)]
                      if scheduler.portfolio else None),
        "portfolio_interval": scheduler.portfolio_interval,
        "datacenter_name": spec.topology.datacenter,
        "operator": spec.topology.operator,
        "horizon": spec.horizon,
        "injection_jitter": spec.injection_jitter,
        "availability_slo": spec.availability_slo,
        "duration": spec.duration,
        "max_time": spec.max_time,
        "spec": spec,
    }
    if spec.autoscaler is not None:
        ingredients["autoscaler"] = spec.autoscaler.build()
        ingredients["autoscaler_interval"] = spec.autoscaler.interval
    if spec.retries is not None:
        ingredients["retry_policy"] = spec.retries.build()
    if spec.checkpoints is not None:
        ingredients["checkpoint_policy"] = spec.checkpoints.build()
    if spec.hedging is not None:
        ingredients["hedge_policy"] = spec.hedging.build()
    if spec.shedding is not None:
        ingredients["admission"] = spec.shedding.build()
    if spec.slos is not None:
        ingredients["slos"] = spec.slos.build_objectives()
        ingredients["slo_rules"] = spec.slos.build_rules()
        ingredients["telemetry_interval"] = spec.slos.telemetry_interval
    ingredients.update(overrides)
    if (spec.observer or ingredients.get("slos")) \
            and ingredients.get("observer") is None:
        ingredients["observer"] = Observer()
    return compose(**ingredients)


def _flatten(items: Sequence) -> list[Task]:
    """Every task in a mixed task/job workload, in item order."""
    tasks: list[Task] = []
    for item in items:
        if isinstance(item, Job):
            tasks.extend(item.tasks)
        else:
            tasks.append(item)
    return tasks


def _arrivals(sim: Simulator, scheduler: ClusterScheduler,
              items: Sequence, engine: WorkflowEngine | None = None,
              router: Callable[[Any], bool] | None = None):
    """The unified arrival process: submit in (submit_time, name) order.

    Workflows route through the :class:`WorkflowEngine` (dependency
    release + bounded retries) when one was armed; plain jobs and tasks
    go straight to the scheduler, as always.  A ``router`` sees every
    item first and may claim it (returning True) instead of local
    submission — the cross-shard offload seam.
    """
    for item in sorted(items, key=lambda t: (t.submit_time, t.name)):
        delay = item.submit_time - sim.now
        if delay > 0:
            yield sim.timeout(delay)
        if router is not None and router(item):
            continue
        if engine is not None and isinstance(item, Workflow):
            engine.submit(item)
        elif isinstance(item, Job):
            scheduler.submit_job(item)
        else:
            scheduler.submit(item)
