"""Regulatory compliance checking (§6.4: PSD2, GDPR, stress tests).

Banking "has seen a significant change, combining two contrary
directions: (i) more regulation in terms of increased liability and
lower tolerance for risk, with (ii) increased openness of the market".

:class:`ComplianceChecker` evaluates an open-banking market and its
clearing logs against three regulation families the paper names:
PSD2 (open APIs, clearing deadlines, refunds), GDPR (data-access
minimization), and Basel-style stress tests (capacity under a
submission surge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .ecosystem import OpenBankingEcosystem
from .transactions import ClearingSystem, Payment

__all__ = ["ComplianceViolation", "ComplianceReport", "ComplianceChecker"]


@dataclass(frozen=True)
class ComplianceViolation:
    """One detected violation."""

    regulation: str
    subject: str
    description: str


@dataclass
class ComplianceReport:
    """Outcome of a compliance audit."""

    violations: list[ComplianceViolation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def compliant(self) -> bool:
        """Whether the audit found no violations."""
        return not self.violations

    def by_regulation(self, regulation: str) -> list[ComplianceViolation]:
        """Violations of one regulation family."""
        return [v for v in self.violations if v.regulation == regulation]


class ComplianceChecker:
    """Audits a market plus its clearing systems.

    Args:
        deadline_target: Minimum fraction of payments that must clear
            within their PSD2 deadline.
        refund_deadline_target: Same target applied to refund payments.
    """

    def __init__(self, deadline_target: float = 0.99,
                 refund_deadline_target: float = 0.95) -> None:
        for target in (deadline_target, refund_deadline_target):
            if not 0.0 < target <= 1.0:
                raise ValueError("targets must be in (0, 1]")
        self.deadline_target = deadline_target
        self.refund_deadline_target = refund_deadline_target

    def audit(self, market: OpenBankingEcosystem,
              clearing_systems: Sequence[tuple[str, ClearingSystem]] = (),
              ) -> ComplianceReport:
        """Run all checks; returns the consolidated report."""
        report = ComplianceReport()
        self._check_open_apis(market, report)
        for bank_name, clearing in clearing_systems:
            self._check_deadlines(bank_name, clearing, report)
            self._check_refunds(bank_name, clearing, report)
        return report

    # ------------------------------------------------------------------
    # PSD2: open APIs
    # ------------------------------------------------------------------
    def _check_open_apis(self, market: OpenBankingEcosystem,
                         report: ComplianceReport) -> None:
        report.checks_run += 1
        report.violations.extend(
            ComplianceViolation(
                regulation="PSD2",
                subject=bank,
                description="bank has not opened its payment API to any "
                            "third party")
            for bank in market.non_compliant_banks())

    # ------------------------------------------------------------------
    # PSD2: clearing deadlines
    # ------------------------------------------------------------------
    def _check_deadlines(self, bank: str, clearing: ClearingSystem,
                         report: ComplianceReport) -> None:
        report.checks_run += 1
        compliance = clearing.deadline_compliance()
        if compliance < self.deadline_target:
            report.violations.append(ComplianceViolation(
                regulation="PSD2",
                subject=bank,
                description=f"only {compliance:.1%} of payments cleared "
                            f"within deadline (target "
                            f"{self.deadline_target:.1%})"))

    # ------------------------------------------------------------------
    # PSD2: refund right
    # ------------------------------------------------------------------
    def _check_refunds(self, bank: str, clearing: ClearingSystem,
                       report: ComplianceReport) -> None:
        report.checks_run += 1
        refunds = [p for p in clearing.cleared if p.refund_of is not None]
        if not refunds:
            return
        on_time = sum(1 for p in refunds if p.met_deadline) / len(refunds)
        if on_time < self.refund_deadline_target:
            report.violations.append(ComplianceViolation(
                regulation="PSD2",
                subject=bank,
                description=f"only {on_time:.1%} of refunds met their "
                            f"deadline (target "
                            f"{self.refund_deadline_target:.1%})"))

    # ------------------------------------------------------------------
    # GDPR: data minimization
    # ------------------------------------------------------------------
    @staticmethod
    def gdpr_data_minimization(payments: Sequence[Payment],
                               accessed_fields: Sequence[str],
                               ) -> list[ComplianceViolation]:
        """Flag access to fields a payment initiator does not need.

        GDPR [172] requires data minimization; a payment initiator
        needs amount/timing fields, not the account holder's profile.
        """
        permitted = {"amount", "submit_time", "deadline", "provider",
                     "status", "payment_id"}
        return [
            ComplianceViolation(
                regulation="GDPR",
                subject=field_name,
                description=f"initiator accessed non-essential field "
                            f"{field_name!r} on "
                            f"{len(payments)} payments")
            for field_name in accessed_fields
            if field_name not in permitted]

    # ------------------------------------------------------------------
    # Basel-style stress test
    # ------------------------------------------------------------------
    @staticmethod
    def stress_capacity_needed(surge_rate: float, service_time: float,
                               deadline_slack: float) -> int:
        """Clearing lanes needed to survive a submission surge.

        From queueing first principles: stability requires capacity
        ``c > surge_rate * service_time``; the deadline adds headroom
        inversely proportional to the allowed slack.  This is the
        planning number a Basel stress test asks the bank to defend.
        """
        if surge_rate <= 0 or service_time <= 0 or deadline_slack <= 0:
            raise ValueError("all stress parameters must be positive")
        import math
        base = surge_rate * service_time
        headroom = 1.0 + service_time / deadline_slack
        return max(1, math.ceil(base * headroom))
