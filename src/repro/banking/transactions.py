"""Payment clearing with PSD2 deadlines (§6.4).

"PSD2 enforces strict performance targets, including deadlines in
clearing financial transactions such as payments, contracts, and
salaries; and offer more customer rights, including the right to
refund."

The :class:`ClearingSystem` processes payments on a bank's limited
clearing capacity.  Payments are deadline-bearing; the service order is
pluggable (FCFS vs. earliest-deadline-first), which the benchmarks use
to show that the regulated NFR (deadline compliance) is a *scheduling*
property — MCS's P4 applied to banking.  Refunds (the PSD2 customer
right) re-enter the same pipeline.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..sim import Simulator

__all__ = ["PaymentStatus", "Payment", "ClearingSystem",
           "fcfs_order", "edf_order"]

_payment_ids = itertools.count(1)


class PaymentStatus(enum.Enum):
    """Lifecycle of a payment."""

    SUBMITTED = "submitted"
    CLEARED = "cleared"
    REFUNDED = "refunded"


@dataclass
class Payment:
    """One payment instruction."""

    amount: float
    submit_time: float
    deadline: float
    initiator: str = "customer"
    provider: str = "bank"
    payment_id: int = field(default_factory=lambda: next(_payment_ids))
    status: PaymentStatus = PaymentStatus.SUBMITTED
    cleared_time: float | None = None
    refund_of: int | None = None

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError("amount must be positive")
        if self.deadline < self.submit_time:
            raise ValueError("deadline lies before submission")

    @property
    def met_deadline(self) -> bool:
        """Whether the payment cleared within its PSD2 deadline."""
        return (self.cleared_time is not None
                and self.cleared_time <= self.deadline)


def fcfs_order(queue: list[Payment], now: float) -> Payment:
    """Serve the oldest payment first."""
    return min(queue, key=lambda p: (p.submit_time, p.payment_id))


def edf_order(queue: list[Payment], now: float) -> Payment:
    """Serve the payment with the earliest deadline first."""
    return min(queue, key=lambda p: (p.deadline, p.payment_id))


class ClearingSystem:
    """A bank's payment-clearing pipeline with limited capacity.

    Args:
        sim: The simulator.
        capacity: Parallel clearing lanes.
        service_time: Seconds to clear one payment.
        order: Queue discipline (``fcfs_order`` or ``edf_order``).
    """

    def __init__(self, sim: Simulator, capacity: int = 2,
                 service_time: float = 1.0,
                 order: Callable[[list[Payment], float], Payment]
                 = fcfs_order) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        self.sim = sim
        self.capacity = capacity
        self.service_time = service_time
        self.order = order
        self.queue: list[Payment] = []
        self.cleared: list[Payment] = []
        self.refunds_issued: list[Payment] = []
        self._busy = 0
        self._wakeup = sim.event()
        self._stopped = False
        for lane in range(capacity):
            sim.process(self._lane(), name=f"clearing-lane-{lane}")

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payment: Payment) -> Payment:
        """Enter a payment into the clearing queue."""
        if payment.status is not PaymentStatus.SUBMITTED:
            raise ValueError(f"payment {payment.payment_id} is "
                             f"{payment.status.value}")
        self.queue.append(payment)
        self._poke()
        return payment

    def refund(self, original: Payment) -> Payment:
        """Exercise the PSD2 refund right on a cleared payment.

        The refund is a new payment in the opposite direction with its
        own deadline, entering the same clearing pipeline.
        """
        if original.status is not PaymentStatus.CLEARED:
            raise ValueError("only cleared payments can be refunded")
        original.status = PaymentStatus.REFUNDED
        refund = Payment(amount=original.amount,
                         submit_time=self.sim.now,
                         deadline=self.sim.now + (original.deadline
                                                  - original.submit_time),
                         initiator=original.provider,
                         provider=original.initiator,
                         refund_of=original.payment_id)
        self.refunds_issued.append(refund)
        return self.submit(refund)

    # ------------------------------------------------------------------
    # Clearing lanes
    # ------------------------------------------------------------------
    def _poke(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _lane(self):
        while not self._stopped:
            while not self.queue:
                yield self._wakeup
                if self._wakeup.triggered:
                    self._wakeup = self.sim.event()
                if self._stopped:
                    return
            payment = self.order(self.queue, self.sim.now)
            self.queue.remove(payment)
            self._busy += 1
            yield self.sim.timeout(self.service_time)
            self._busy -= 1
            payment.cleared_time = self.sim.now
            payment.status = PaymentStatus.CLEARED
            self.cleared.append(payment)
            self._poke()

    def stop(self) -> None:
        """Stop the clearing lanes."""
        self._stopped = True
        self._poke()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def deadline_compliance(self) -> float:
        """Fraction of cleared payments that met their deadline."""
        if not self.cleared:
            return 1.0
        return sum(1 for p in self.cleared
                   if p.met_deadline) / len(self.cleared)

    def mean_clearing_latency(self) -> float:
        """Mean submit-to-clear latency over cleared payments."""
        if not self.cleared:
            raise RuntimeError("no cleared payments")
        return sum(p.cleared_time - p.submit_time
                   for p in self.cleared) / len(self.cleared)
