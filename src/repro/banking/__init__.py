"""Banking substrate (S13): the regulated PSD2 ecosystem (§6.4).

The open-banking market model (banks, fintechs, API grants), a
deadline-bearing payment-clearing pipeline with refunds, and the
compliance checker covering PSD2, GDPR, and stress-test rules.
"""

from .compliance import ComplianceChecker, ComplianceReport, ComplianceViolation
from .ecosystem import OpenBankingEcosystem, Participant, ParticipantKind
from .transactions import (
    ClearingSystem,
    Payment,
    PaymentStatus,
    edf_order,
    fcfs_order,
)

__all__ = [
    "ParticipantKind",
    "Participant",
    "OpenBankingEcosystem",
    "Payment",
    "PaymentStatus",
    "ClearingSystem",
    "fcfs_order",
    "edf_order",
    "ComplianceViolation",
    "ComplianceReport",
    "ComplianceChecker",
]
