"""The PSD2 open-banking ecosystem (paper §6.4).

"PSD2 is disruptive, because banks have to open up payment
functionality through APIs to other financial operators, and give
access to personal data to customers ... banks are now forced to
integrate into a much more complex software ecosystem."

:class:`OpenBankingEcosystem` models the participants — banks (with
their legacy application estates; ING alone runs over 1,400 [173]),
fintechs, and consumer-facing brands — and the PSD2 API grants between
them.  It exposes the assembly as a paper-§2.1
:class:`~repro.core.entity.Ecosystem`, which qualifies exactly because
regulation forces heterogeneous, multi-owner integration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.entity import CollectiveFunction, Ecosystem, System

__all__ = ["ParticipantKind", "Participant", "OpenBankingEcosystem"]


class ParticipantKind(enum.Enum):
    """Kinds of PSD2 market participants named in §6.4."""

    BANK = "bank"
    FINTECH = "fintech"
    CONSUMER_BRAND = "consumer-brand"
    REGULATOR = "regulator"


@dataclass
class Participant:
    """One organization in the open-banking market."""

    name: str
    kind: ParticipantKind
    #: Number of in-house applications (banks: legacy estates, [173]).
    applications: int = 1
    #: Fraction of those applications that are legacy (pre-PSD2).
    legacy_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.applications < 0:
            raise ValueError("applications must be non-negative")
        if not 0.0 <= self.legacy_fraction <= 1.0:
            raise ValueError("legacy_fraction must be in [0, 1]")


class OpenBankingEcosystem:
    """Participants plus the PSD2 API-access grants between them."""

    def __init__(self, name: str = "psd2-market") -> None:
        self.name = name
        self._participants: dict[str, Participant] = {}
        #: (provider, consumer) pairs: provider's payment API is open
        #: to consumer.
        self._grants: set[tuple[str, str]] = set()

    def join(self, participant: Participant) -> Participant:
        """Register a market participant."""
        if participant.name in self._participants:
            raise ValueError(f"participant {participant.name!r} already joined")
        self._participants[participant.name] = participant
        return participant

    def get(self, name: str) -> Participant:
        """Look up a participant."""
        if name not in self._participants:
            raise KeyError(name)
        return self._participants[name]

    def participants(self, kind: ParticipantKind | None = None,
                     ) -> list[Participant]:
        """All participants, optionally filtered by kind."""
        values = list(self._participants.values())
        if kind is None:
            return values
        return [p for p in values if p.kind is kind]

    # ------------------------------------------------------------------
    # PSD2 grants
    # ------------------------------------------------------------------
    def grant_api_access(self, provider: str, consumer: str) -> None:
        """Open ``provider``'s payment API to ``consumer``."""
        if self.get(provider).kind is not ParticipantKind.BANK:
            raise ValueError("only banks provide payment APIs under PSD2")
        self.get(consumer)
        self._grants.add((provider, consumer))

    def has_access(self, provider: str, consumer: str) -> bool:
        """Whether ``consumer`` may initiate payments at ``provider``."""
        return (provider, consumer) in self._grants

    def psd2_compliant_grants(self) -> list[str]:
        """Banks that have opened their API to at least one third party.

        PSD2's core obligation: every bank must open up payment
        functionality.  Returns the banks that have.
        """
        providers = {provider for provider, _ in self._grants}
        return sorted(b.name for b in
                      self.participants(ParticipantKind.BANK)
                      if b.name in providers)

    def non_compliant_banks(self) -> list[str]:
        """Banks that have not opened any API (PSD2 violations)."""
        compliant = set(self.psd2_compliant_grants())
        return sorted(b.name for b in
                      self.participants(ParticipantKind.BANK)
                      if b.name not in compliant)

    # ------------------------------------------------------------------
    # Ecosystem view (§2.1)
    # ------------------------------------------------------------------
    def as_ecosystem(self) -> Ecosystem:
        """The market as a paper-§2.1 ecosystem of autonomous systems."""
        eco = Ecosystem(self.name, function="retail payments",
                        owner="market")
        for participant in self._participants.values():
            sub = Ecosystem(participant.name,
                            function=participant.kind.value,
                            owner=participant.name)
            n_legacy = round(participant.applications
                             * participant.legacy_fraction)
            for index in range(participant.applications):
                sub.add(System(f"{participant.name}-app-{index}",
                               function="financial application",
                               owner=participant.name,
                               kind=participant.kind.value,
                               legacy=index < n_legacy))
            eco.add(sub)
        eco.register_collective_function(
            CollectiveFunction("clear-retail-payments",
                               required_fraction=0.6))
        return eco
