"""Serverless application on the Figure 5 FaaS architecture (§6.5).

Deploys the paper's canonical serverless application — image
translation and processing — as a composition of functions, runs a
bursty invocation pattern, and reports the cold-start / latency / cost
profile per keep-alive setting.

Run with:  python examples/serverless_faas.py
"""

from repro.faas import (
    CompositionEngine,
    FaaSPlatform,
    FaaSReferenceArchitecture,
    FunctionSpec,
    parallel,
    sequence,
    step,
)
from repro.reporting import render_table
from repro.sim import Simulator


def image_pipeline():
    """fetch -> (translate || resize || caption) -> store."""
    return sequence(
        step("fetch"),
        parallel(step("translate"), step("resize"), step("caption")),
        step("store"),
    )


def run_day(keep_alive: float) -> dict[str, float]:
    sim = Simulator()
    platform = FaaSPlatform(sim, concurrency=64)
    for name, runtime in (("fetch", 0.1), ("translate", 0.8),
                          ("resize", 0.3), ("caption", 0.5),
                          ("store", 0.1)):
        platform.deploy(FunctionSpec(name, mean_runtime=runtime,
                                     memory_gb=0.5, cold_start=0.7,
                                     keep_alive=keep_alive))
    engine = CompositionEngine(sim, platform)
    pipeline = image_pipeline()

    def traffic(sim):
        # Bursts of 5 requests separated by quiet gaps: the pattern
        # that makes keep-alive decisions matter.
        for burst in range(12):
            runs = [engine.run(pipeline) for _ in range(5)]
            yield sim.all_of(runs)
            yield sim.timeout(45.0)

    sim.run(until=sim.process(traffic(sim)))
    stats = platform.statistics()
    return {
        "invocations": stats["invocations"],
        "cold": stats["cold_start_fraction"],
        "p99_ms": stats["latency_p99"] * 1000,
        "dollars": stats["billed_dollars"],
    }


def main() -> None:
    architecture = FaaSReferenceArchitecture()
    print("Figure 5 layers (business logic -> operational logic):")
    for layer in architecture:
        print(f"  {layer.number}. {layer.name}")
    print()
    rows = []
    for keep_alive in (1.0, 15.0, 60.0, 300.0):
        metrics = run_day(keep_alive)
        rows.append((f"{keep_alive:.0f} s",
                     int(metrics["invocations"]),
                     f"{metrics['cold']:.2f}",
                     f"{metrics['p99_ms']:.0f}",
                     f"{metrics['dollars'] * 1e4:.2f}"))
    print(render_table(
        ["Keep-alive", "Invocations", "Cold fraction", "p99 [ms]",
         "Cost [$ x 1e-4]"],
        rows, title="Image pipeline: the cold-start trade-off"))


if __name__ == "__main__":
    main()
