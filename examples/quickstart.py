"""Quickstart: an ecosystem, a datacenter, and a scheduled workload.

Builds the smallest end-to-end MCS scenario: a heterogeneous
datacenter exposed as a paper-§2.1 ecosystem, a workload with
first-class non-functional requirements (P3), and the dual-problem
scheduler (C7) executing it.

Run with:  python examples/quickstart.py
"""

from repro.core import SLA, SLO, Direction, NFRKind, Requirement
from repro.datacenter import Datacenter, heterogeneous_cluster
from repro.reporting import render_kv
from repro.scheduling import ClusterScheduler, FastestFit, SJF
from repro.sim import Simulator
from repro.workload import Task


def main() -> None:
    # 1. The substrate: a simulator and a heterogeneous datacenter.
    sim = Simulator()
    datacenter = Datacenter(
        sim, [heterogeneous_cluster("edge-dc", n_cpu=6, n_gpu=2, n_fpga=1)],
        name="quickstart-dc", operator="small-studio")

    # 2. The datacenter *is* an ecosystem under the paper's definition.
    ecosystem = datacenter.as_ecosystem()
    assert ecosystem.is_ecosystem(), ecosystem.disqualifications()

    # 3. Non-functional requirements are first-class objects (P3).
    sla = SLA("gold", provider="quickstart-dc", client="you")
    sla.add(SLO("p95-wait", Requirement(
        kind=NFRKind.PERFORMANCE, metric="wait_p95", target=60.0,
        direction=Direction.MINIMIZE)), penalty=10.0)
    sla.add(SLO("throughput", Requirement(
        kind=NFRKind.SCALABILITY, metric="completed", target=50.0,
        direction=Direction.MAXIMIZE)), penalty=5.0)

    # 4. Schedule a bag of heterogeneous tasks (SJF onto the fastest
    #    machine that fits — GPUs finish work 4x faster).
    scheduler = ClusterScheduler(sim, datacenter, queue_policy=SJF(),
                                 placement_policy=FastestFit(),
                                 backfilling=True)
    for i in range(50):
        scheduler.submit(Task(runtime=10.0 + (i % 7) * 5.0,
                              cores=1 + (i % 3), name=f"job-{i}"))
    sim.run(until=10_000.0)

    # 5. Evaluate the SLA against what actually happened.
    stats = scheduler.statistics()
    report = sla.evaluate(stats)
    print(render_kv([
        ("ecosystem constituents", sum(1 for _ in ecosystem.walk())),
        ("super-distribution depth", ecosystem.distribution_depth()),
        ("tasks completed", int(stats["completed"])),
        ("mean slowdown", round(stats["slowdown_mean"], 2)),
        ("p95 wait [s]", round(stats["wait_p95"], 1)),
        ("mean utilization", round(datacenter.mean_utilization(), 3)),
        ("energy [kJ]", round(datacenter.total_energy_joules() / 1000, 1)),
        ("SLA objectives met", f"{report.fraction_met:.0%}"),
        ("SLA penalty owed", report.penalty),
    ], title="Quickstart: one scheduled day in a small ecosystem"))
    assert stats["completed"] == 50


if __name__ == "__main__":
    main()
