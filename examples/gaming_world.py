"""Online gaming: all four Figure 4 functions in one scenario (§6.3).

A simulated day in a small studio's game: an elastic virtual world
(cloud-hosted), player analytics, procedural content generation, and
social meta-gaming with toxicity monitoring.

Run with:  python examples/gaming_world.py
"""

import random

from repro.gaming import (
    ChatMessage,
    CloudProvisioner,
    Match,
    PlayEvent,
    PuzzleGenerator,
    SelfHostedProvisioner,
    ToxicityDetector,
    VirtualWorld,
    diurnal_player_curve,
    engagement_summary,
    implicit_social_network,
    sessionize,
    social_communities,
)
from repro.reporting import render_kv
from repro.sim import Simulator


def run_virtual_world(cloud: bool) -> dict[str, float]:
    sim = Simulator()
    world = VirtualWorld(sim, n_zones=4, players_per_server=100)
    players = diurnal_player_curve(2500, period=86400.0)
    if cloud:
        provisioner = CloudProvisioner(world, sim)
    else:
        provisioner = SelfHostedProvisioner(world, servers_per_zone=3)

    def day(sim):
        for hour in range(24):
            world.set_population(players(hour * 3600.0),
                                 rng=random.Random(hour))
            provisioner.rebalance()
            yield sim.timeout(3600.0)

    sim.run(until=sim.process(day(sim)))
    return {"qos": world.qos(), "upfront": provisioner.upfront_cost}


def main() -> None:
    rng = random.Random(0)

    # --- Virtual World: cloud vs self-hosted (the §6.3 question) ---
    cloud = run_virtual_world(cloud=True)
    hosted = run_virtual_world(cloud=False)

    # --- Gaming Analytics: sessions and engagement ---
    events = [PlayEvent(f"player-{p}", day * 86400.0 + rng.uniform(0, 7200))
              for p in range(40)
              for day in range(3) if rng.random() < 0.7]
    sessions = sessionize(events)
    engagement = engagement_summary(sessions)

    # --- Procedural Content Generation: calibrated puzzles ---
    generator = PuzzleGenerator(size=8, rng=rng)
    puzzles = generator.generate_many(difficulty=0.6, count=20)

    # --- Social Meta-Gaming: ties + toxicity ---
    matches = [Match(i, tuple(rng.sample(
        [f"player-{p}" for p in range(20)], k=4))) for i in range(120)]
    network = implicit_social_network(matches, min_coplays=3)
    communities = social_communities(network)
    detector = ToxicityDetector()
    for i in range(50):
        player = f"player-{rng.randrange(20)}"
        text = ("uninstall trash loser" if rng.random() < 0.1
                else "good game well played")
        detector.observe(ChatMessage(player, text))

    print(render_kv([
        ("cloud QoS / up-front", f"{cloud['qos']:.3f} / "
                                 f"${cloud['upfront']:.0f}"),
        ("self-hosted QoS / up-front", f"{hosted['qos']:.3f} / "
                                       f"${hosted['upfront']:.0f}"),
        ("players analyzed", int(engagement["players"])),
        ("mean sessions/player",
         round(engagement["mean_sessions_per_player"], 2)),
        ("puzzles generated @ difficulty 0.6", len(puzzles)),
        ("mean optimal moves",
         round(sum(p.optimal_moves for p in puzzles) / len(puzzles), 1)),
        ("social ties found", network.edge_count),
        ("communities", len(set(communities.values()))),
        ("toxic messages flagged", len(detector.flagged)),
        ("worst offender", detector.worst_offenders(1)[0][0]
         if detector.worst_offenders(1) else "none"),
    ], title="A day of online gaming across all four Figure 4 functions"))
    assert cloud["upfront"] == 0.0


if __name__ == "__main__":
    main()
