"""SLO watchtower (C2, C13, P4): declare objectives, watch them burn.

Three acts, all deterministic, all declared as
:class:`~repro.scenario.ScenarioSpec` documents:

1. **Grade a chaos run against declared SLOs.**  A correlated failure
   burst takes down a third of a small cluster; streaming telemetry
   evaluates an availability SLO and a queue-wait SLO every 5 simulated
   seconds, multi-window burn-rate rules raise alerts, and the chaos
   report carries the verdicts.
2. **Explain the damage with trace analytics.**  A span census diff
   between a calm control run (the same spec with the burst overridden
   away) and the chaos run shows exactly which causal activity the
   burst added, and the subsystem breakdown attributes the simulated
   time.
3. **Close the loop.**  A pathological autoscaling policy — injected
   as a programmatic ``build()`` override, the escape hatch for
   components with no declarative form — pins capacity at one machine
   while load piles up; the queue-wait SLO burns, the alert fires, and
   the alert-driven boost leases machines the policy never would —
   monitoring turned into action, the MAPE-K arc of the paper's
   self-awareness principle.

Run with:  python examples/slo_watchtower.py
"""

from repro.observability import Observer, census_diff, span_census, \
    subsystem_breakdown
from repro.reporting import render_alerts, render_slo_report, render_table
from repro.resilience import ChaosExperiment
from repro.scenario import (BurnRuleSpec, ClusterSpec, FailureSpec,
                            ObjectiveSpec, RetrySpec, ScenarioSpec,
                            SLOSpec, TopologySpec, WorkloadSpec)

CHAOS_SPEC = ScenarioSpec(
    name="slo-watchtower",
    seed=23,
    topology=TopologySpec(
        clusters=(ClusterSpec("c", 8, cores=4, machines_per_rack=4),),
        datacenter="chaos-dc"),
    workload=WorkloadSpec("uniform-tasks", {
        "n_tasks": 24, "runtime": [10.0, 40.0], "cores": 2,
        "submit": [0.0, 20.0], "prefix": "t"}),
    failures=FailureSpec("sampled-bursts", {
        "times": [30.0], "victims": 3, "duration": 20.0}),
    retries=RetrySpec(max_attempts=6, base=1.0, cap=20.0),
    horizon=250.0,
    slos=SLOSpec(
        objectives=(
            ObjectiveSpec("availability", {
                "name": "exec-success",
                "good": "datacenter.executions_finished",
                "bad": "datacenter.executions_interrupted",
                "target": 0.95}),
            ObjectiveSpec("queue-wait", {
                "name": "fast-start", "threshold": 25.0, "target": 0.9}),
        ),
        rules=(BurnRuleSpec("fast", long_window=60.0, short_window=15.0,
                            threshold=2.0),),
        telemetry_interval=5.0))

#: The calm control: identical trace, the burst overridden away, no
#: grading (an explicit empty failure schedule keeps the injector armed
#: so both runs compose identically).
CALM_SPEC = CHAOS_SPEC.override({
    "failures": {"kind": "explicit", "params": {"events": []}},
    "slos": None})


def act_one():
    """Grade the chaos run; print verdicts and the alert timeline."""
    observer = Observer()
    report = ChaosExperiment.from_spec(CHAOS_SPEC).run(observer=observer)
    print(render_slo_report(report.slo_report,
                            title="Act 1 — SLO verdicts, chaos run seed 23"))
    print()
    print(render_alerts(report.alert_log, title="Burn-rate alert timeline"))
    print()
    for line in report.violations:
        if line.startswith("SLO "):
            print(f"  violation: {line}")
    print()
    return observer


def act_two(chaos_observer):
    """Diff the chaos trace against a calm control run."""
    calm = Observer()
    ChaosExperiment.from_spec(CALM_SPEC).run(observer=calm)
    diff = census_diff(span_census(calm.tracer),
                       span_census(chaos_observer.tracer))
    rows = [(kind, str(before), str(after), f"{delta:+d}")
            for kind, (before, after, delta) in diff.items() if delta]
    print(render_table(["Span kind", "calm", "chaos", "delta"], rows,
                       title="Act 2 — what the failure burst added"))
    print()
    breakdown = subsystem_breakdown(chaos_observer.tracer)
    rows = [(name, str(entry["spans"]), f"{entry['total_time']:.1f}",
             f"{entry['share']:.0%}")
            for name, entry in breakdown.items()]
    print(render_table(["Subsystem", "Spans", "Sim time", "Share"], rows,
                       title="Simulated time by subsystem (chaos run)"))
    print()


class PinnedAutoscaler:
    """Pathological policy: one machine, whatever the demand."""

    name = "pinned"

    def decide(self, snapshot):
        """Always target a single leased machine."""
        return 1


LIVE_SPEC = ScenarioSpec(
    name="slo-watchtower-live",
    seed=0,
    topology=TopologySpec(
        clusters=(ClusterSpec("live", 6, cores=2, machines_per_rack=3),),
        datacenter="live-dc"),
    workload=WorkloadSpec("uniform-tasks", {
        "n_tasks": 30, "runtime": 4.0, "cores": 1, "submit": 0.5,
        "prefix": "load"}),
    slos=SLOSpec(
        objectives=(ObjectiveSpec("queue-wait", {
            "name": "fast-start", "threshold": 5.0, "target": 0.9}),),
        rules=(BurnRuleSpec("fast", long_window=8.0, short_window=2.0,
                            threshold=2.0),),
        telemetry_interval=1.0),
    duration=120.0)


def act_three():
    """A burning SLO fires an alert that leases machines."""
    # The pathological policy has no declarative form — inject it as a
    # build-time override (the run is then no longer reproducible from
    # the spec JSON alone, which is exactly the boundary the kernel
    # draws around programmatic components).
    runtime = LIVE_SPEC.build(autoscaler=PinnedAutoscaler(),
                              autoscaler_interval=1000.0)
    runtime.controller.respond_to_alerts(runtime.engine, boost=3)
    runtime.drive()
    runtime.finalize()

    engine = runtime.engine
    controller = runtime.controller
    fires = engine.alerts.fires()
    print("Act 3 — closing the loop")
    print("  pinned policy parked the fleet at 1 machine; 30 tasks queued")
    print(f"  first alert fired at t={fires[0].time:.1f} "
          f"(burn {fires[0].burn_long:.1f}x over budget)")
    print(f"  alert boosts applied: {controller.alert_boosts} "
          f"(+3 machines each) -> {controller.leased_machines} machines")
    stats = runtime.scheduler.statistics()
    print(f"  tasks completed by t=120: {stats['completed']:.0f}, "
          f"mean wait {stats['wait_mean']:.1f}s")
    print()
    print("Without the subscription the same alert fires and nothing")
    print("moves — tests/integration/test_slo_adaptation.py pins both")
    print("halves of that causal claim.")


def main() -> None:
    """Run all three acts."""
    chaos_observer = act_one()
    act_two(chaos_observer)
    act_three()


if __name__ == "__main__":
    main()
