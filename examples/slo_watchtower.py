"""SLO watchtower (C2, C13, P4): declare objectives, watch them burn.

Three acts, all deterministic:

1. **Grade a chaos run against declared SLOs.**  A correlated failure
   burst takes down a third of a small cluster; streaming telemetry
   evaluates an availability SLO and a queue-wait SLO every 5 simulated
   seconds, multi-window burn-rate rules raise alerts, and the chaos
   report carries the verdicts.
2. **Explain the damage with trace analytics.**  A span census diff
   between a calm control run and the chaos run shows exactly which
   causal activity the burst added (extra exec attempts, failure
   markers), and the subsystem breakdown attributes the simulated time.
3. **Close the loop.**  In a live simulation, a pathological
   autoscaling policy pins capacity at one machine while load piles up;
   the queue-wait SLO burns, the alert fires, and the alert-driven
   boost leases machines the policy never would — monitoring turned
   into action, the MAPE-K arc of the paper's self-awareness principle.

Run with:  python examples/slo_watchtower.py
"""

from repro.autoscaling import AutoscalingController
from repro.datacenter import (Datacenter, MachineSpec, homogeneous_cluster)
from repro.failures import FailureEvent
from repro.observability import (AvailabilityObjective, BurnRateRule,
                                 Observer, QueueWaitObjective, SLOEngine,
                                 StreamingPipeline, census_diff, span_census,
                                 subsystem_breakdown)
from repro.reporting import (render_alerts, render_slo_report, render_table)
from repro.resilience import ChaosExperiment, ExponentialBackoff
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import Task

SLOS = [
    AvailabilityObjective("exec-success",
                          good="datacenter.executions_finished",
                          bad="datacenter.executions_interrupted",
                          target=0.95),
    QueueWaitObjective("fast-start", threshold=25.0, target=0.9),
]
RULES = (
    BurnRateRule("fast", long_window=60.0, short_window=15.0, threshold=2.0),
    BurnRateRule("slow", long_window=180.0, short_window=60.0, threshold=1.5),
)


def make_experiment(chaotic=True):
    """The graded chaos experiment; ``chaotic=False`` is the calm control."""
    def workload(streams):
        rng = streams.stream("workload")
        return [Task(runtime=rng.uniform(10.0, 40.0), cores=2,
                     submit_time=rng.uniform(0.0, 20.0), name=f"t{i}")
                for i in range(24)]

    def failures(streams, racks, horizon):
        if not chaotic:
            return []
        rng = streams.stream("failures")
        names = [name for rack in racks for name in rack]
        victims = tuple(sorted(rng.sample(names, k=3)))
        return [FailureEvent(time=30.0, machine_names=victims,
                             duration=20.0)]

    return ChaosExperiment(
        cluster=lambda: homogeneous_cluster("c", 8, MachineSpec(cores=4),
                                            machines_per_rack=4),
        workload=workload,
        failures=failures,
        seed=23,
        horizon=250.0,
        retry_policy=ExponentialBackoff(max_attempts=6, base=1.0, cap=20.0),
        slos=SLOS, slo_rules=(RULES[0],), telemetry_interval=5.0)


def act_one():
    """Grade the chaos run; print verdicts and the alert timeline."""
    observer = Observer()
    report = make_experiment().run(observer=observer)
    print(render_slo_report(report.slo_report,
                            title="Act 1 — SLO verdicts, chaos run seed 23"))
    print()
    print(render_alerts(report.alert_log, title="Burn-rate alert timeline"))
    print()
    for line in report.violations:
        if line.startswith("SLO "):
            print(f"  violation: {line}")
    print()
    return observer


def act_two(chaos_observer):
    """Diff the chaos trace against a calm control run."""
    calm = Observer()
    experiment = make_experiment(chaotic=False)
    experiment.slos = ()          # control run: same workload, no grading
    experiment.run(observer=calm)
    diff = census_diff(span_census(calm.tracer),
                       span_census(chaos_observer.tracer))
    rows = [(kind, str(before), str(after), f"{delta:+d}")
            for kind, (before, after, delta) in diff.items() if delta]
    print(render_table(["Span kind", "calm", "chaos", "delta"], rows,
                       title="Act 2 — what the failure burst added"))
    print()
    breakdown = subsystem_breakdown(chaos_observer.tracer)
    rows = [(name, str(entry["spans"]), f"{entry['total_time']:.1f}",
             f"{entry['share']:.0%}")
            for name, entry in breakdown.items()]
    print(render_table(["Subsystem", "Spans", "Sim time", "Share"], rows,
                       title="Simulated time by subsystem (chaos run)"))
    print()


class PinnedAutoscaler:
    """Pathological policy: one machine, whatever the demand."""

    name = "pinned"

    def decide(self, snapshot):
        """Always target a single leased machine."""
        return 1


def act_three():
    """A burning SLO fires an alert that leases machines."""
    sim = Simulator()
    observer = Observer()
    observer.attach(sim)
    cluster = homogeneous_cluster("live", 6, MachineSpec(cores=2),
                                  machines_per_rack=3)
    datacenter = Datacenter(sim, [cluster], name="live-dc")
    scheduler = ClusterScheduler(sim, datacenter)
    controller = AutoscalingController(sim, datacenter, scheduler,
                                       PinnedAutoscaler(), interval=1000.0)
    pipeline = StreamingPipeline(sim, observer.metrics, interval=1.0)
    engine = SLOEngine(
        pipeline,
        objectives=[QueueWaitObjective("fast-start", threshold=5.0,
                                       target=0.9)],
        rules=(BurnRateRule("fast", long_window=8.0, short_window=2.0,
                            threshold=2.0),))
    controller.respond_to_alerts(engine, boost=3)

    def arrivals(sim):
        yield sim.timeout(0.5)
        for i in range(30):
            scheduler.submit(Task(runtime=4.0, cores=1, submit_time=sim.now,
                                  name=f"load{i}"))

    sim.process(arrivals(sim))
    pipeline.attach(until=120.0)
    sim.run(until=120.0)
    scheduler.stop()

    fires = engine.alerts.fires()
    print("Act 3 — closing the loop")
    print("  pinned policy parked the fleet at 1 machine; 30 tasks queued")
    print(f"  first alert fired at t={fires[0].time:.1f} "
          f"(burn {fires[0].burn_long:.1f}x over budget)")
    print(f"  alert boosts applied: {controller.alert_boosts} "
          f"(+3 machines each) -> {controller.leased_machines} machines")
    stats = scheduler.statistics()
    print(f"  tasks completed by t=120: {stats['completed']:.0f}, "
          f"mean wait {stats['wait_mean']:.1f}s")
    print()
    print("Without the subscription the same alert fires and nothing")
    print("moves — tests/integration/test_slo_adaptation.py pins both")
    print("halves of that causal claim.")


def main() -> None:
    """Run all three acts."""
    chaos_observer = act_one()
    act_two(chaos_observer)
    act_three()


if __name__ == "__main__":
    main()
