"""WfCommons replay (C7, C16): published workflow instances as specs.

Loads the LIGO-shaped WfFormat instance from the spec gallery
(``examples/specs/ligo_small.wfformat.json``), compiles it into a
:class:`~repro.scenario.ScenarioSpec`, and replays it twice — once
under data-blind ``first-fit`` placement and once under the
``data-local`` policy that prefers machines already holding a task's
input files.  The instance's trigbank stage re-reads the *partner*
detector's frame segment (a crossed coincidence check), so a
data-blind scheduler keeps shipping 250 MB frame files between
machines while the data-aware one routes each task to the machine
that already holds its inputs.  Both configurations stay on the
bit-identical determinism contract: each reproduces its own digest
exactly across runs.

Any gallery instance replays from the command line through its
compiled spec (see ``examples/specs/*_scenario.json``)::

    python -m repro run examples/specs/ligo_small_scenario.json

Run with:  python examples/wfcommons_replay.py
"""

from pathlib import Path

from repro.reporting import render_table
from repro.workload import load_wfformat, scenario_from_wfformat

GALLERY = Path(__file__).parent / "specs"


def replay(document: dict, placement: str):
    """Run the instance under one placement policy; return the result."""
    spec = scenario_from_wfformat(document, machines=2, cores=2,
                                  link_bandwidth=1.0e8,
                                  placement=placement)
    return spec.run()


def main() -> None:
    """Replay the LIGO instance data-blind and data-aware."""
    document = load_wfformat(GALLERY / "ligo_small.wfformat.json")
    rows = []
    for placement in ("first-fit", "data-local"):
        result = replay(document, placement)
        view = result.datacenter
        rows.append((placement,
                     f"{result.makespan:.1f}",
                     f"{view['data_transfer_seconds']:.2f}",
                     f"{view['data_transfer_bytes'] / 1e6:.0f}",
                     f"{view['data_local_bytes'] / 1e6:.0f}",
                     result.digest()[:12]))
        again = replay(document, placement)
        assert again.digest() == result.digest(), "determinism violated"
    print(render_table(
        ("placement", "makespan", "transfer s", "moved MB", "local MB",
         "digest"),
        rows,
        title="LIGO-small replay: data-blind vs data-aware placement"))
    blind, aware = (float(r[2]) for r in rows)
    print(f"\ndata-local cut input staging from {blind:.2f}s to "
          f"{aware:.2f}s ({blind - aware:.2f}s saved).")


if __name__ == "__main__":
    main()
