"""Trace-driven simulation from a Grid-Workloads-Archive-style file.

The paper's group maintains the Grid Workloads Archive [139]; this
example loads the bundled synthetic LCG-like trace
(``data/sample_grid_trace.gwf``), characterizes it the way [107] does
("How are Real Grids Used?"), and replays a slice of it through the
datacenter scheduler under two policies — the DGSim methodology [131]
on one page.

Run with:  python examples/trace_replay.py
"""

import pathlib

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.reporting import render_kv, render_table
from repro.scheduling import FCFS, SJF, ClusterScheduler
from repro.sim import Simulator
from repro.workload import read_gwf, records_to_jobs, trace_statistics

TRACE = pathlib.Path(__file__).parents[1] / "data" / "sample_grid_trace.gwf"


def replay(jobs, queue_policy) -> dict[str, float]:
    sim = Simulator()
    datacenter = Datacenter(sim, [homogeneous_cluster(
        "grid-site", 32, MachineSpec(cores=2, memory=1e9))])
    scheduler = ClusterScheduler(sim, datacenter,
                                 queue_policy=queue_policy,
                                 backfilling=True)

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=10 * 24 * 3600.0)
    stats = scheduler.statistics()
    assert stats["completed"] == sum(len(j) for j in jobs)
    return {"slowdown": stats["slowdown_mean"],
            "wait_p95_h": stats["wait_p95"] / 3600.0,
            "utilization": datacenter.mean_utilization()}


def main() -> None:
    records = read_gwf(TRACE)
    stats = trace_statistics(records)
    print(render_kv([
        ("trace file", TRACE.name),
        ("jobs", int(stats["jobs"])),
        ("users", int(stats["users"])),
        ("total demand [core-hours]",
         round(stats["total_core_seconds"] / 3600.0)),
        ("mean runtime [h]", round(stats["mean_runtime"] / 3600.0, 2)),
        ("mean inter-arrival [s]", round(stats["mean_interarrival"], 1)),
        ("bag-of-tasks fraction", round(stats["bot_fraction"], 2)),
        ("dominant-user load share ([107])",
         round(stats["dominant_user_share"], 3)),
    ], title="Trace characterization (Grid Workloads Archive style)"))
    print()

    # Replay the first 400 jobs under two policies (fresh task objects
    # per replay — tasks carry execution state).
    rows = []
    for name, policy in (("fcfs+backfill", FCFS()), ("sjf", SJF())):
        jobs = records_to_jobs(records[:400])
        metrics = replay(jobs, policy)
        rows.append((name, f"{metrics['slowdown']:.2f}",
                     f"{metrics['wait_p95_h']:.2f}",
                     f"{metrics['utilization']:.3f}"))
    print(render_table(
        ["Policy", "Mean slowdown", "p95 wait [h]", "Mean utilization"],
        rows, title="Trace replay on a 32-node, 2-core-node grid site"))


if __name__ == "__main__":
    main()
