"""Scenario sweep (C3, P6): one spec, a grid of runs, two processes.

Declares a chaos scenario once as a :class:`~repro.scenario.ScenarioSpec`
and fans a seed x queue-policy grid across worker processes with
:class:`~repro.scenario.SweepRunner`.  The merged report is assembled
in grid order regardless of which worker finishes first, and its
canonical digest is byte-identical whether the grid runs serially or
in a process pool — the determinism contract that lets a sweep be
resumed, sharded, or re-verified anywhere.

The same sweep is available from the command line::

    python -m repro sweep <spec.json> --seeds 1,2,3 \\
        --policies fcfs,sjf --workers 2 --verify-serial

Run with:  python examples/scenario_sweep.py
"""

from repro.reporting import render_table
from repro.scenario import (ClusterSpec, FailureSpec, RetrySpec,
                            ScenarioSpec, SweepRunner, TopologySpec,
                            WorkloadSpec)

BASE = ScenarioSpec(
    name="sweep-demo",
    seed=0,
    topology=TopologySpec(
        clusters=(ClusterSpec("c", 12, cores=4, machines_per_rack=4),),
        datacenter="sweep-dc"),
    workload=WorkloadSpec("uniform-tasks", {
        "n_tasks": 60, "runtime": [15.0, 90.0], "cores": [1, 3],
        "submit": [0.0, 60.0], "priority_levels": 3, "prefix": "t"}),
    failures=FailureSpec("sampled-bursts", {
        "times": [45.0], "victims": 4, "duration": 25.0}),
    retries=RetrySpec(max_attempts=6, base=1.0, cap=30.0,
                      jitter="decorrelated"),
    horizon=400.0)


def main() -> None:
    """Fan the grid out twice — serial and parallel — and compare."""
    grid = {"seeds": (1, 2, 3), "policies": ("fcfs", "sjf")}
    parallel = SweepRunner(BASE, workers=2).sweep(**grid)
    serial = SweepRunner(BASE, workers=1).sweep(**grid)

    rows = []
    for label, summary in parallel.rows():
        rows.append((label,
                     f"{summary['makespan']:.1f}",
                     f"{summary['tasks_finished']:.0f}/"
                     f"{summary['tasks_total']:.0f}",
                     f"{summary['wait_mean']:.1f}",
                     f"{summary['availability']:.3f}"))
    print(render_table(
        ["Point", "Makespan", "Finished", "Mean wait", "Availability"],
        rows, title="3 seeds x 2 queue policies, 2 worker processes"))
    print()
    print(f"  parallel report digest: {parallel.digest()}")
    print(f"  serial   report digest: {serial.digest()}")
    assert parallel.digest() == serial.digest()
    print("  byte-identical: worker count never changes the science.")


if __name__ == "__main__":
    main()
