"""Chaos engineering study (C17): resilience mechanisms under fire.

Runs the same workload through a reproducible chaos experiment — a
space-correlated failure burst takes down half the cluster mid-run —
with progressively more resilience armed:

1. retries only (bounded exponential backoff),
2. retries + checkpoint/restart,
3. retries + checkpoints + hedged execution,
4. the full stack, plus load shedding of low-priority work.

The table shows what each mechanism buys: checkpoints shrink wasted
work, hedging shortens recovery, shedding trades a few low-priority
tasks for everyone else's latency.  Same seed, same burst, every row.

Run with:  python examples/chaos_engineering.py
"""

from repro.datacenter import MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent
from repro.reporting import render_table
from repro.resilience import (
    ChaosExperiment,
    CheckpointPolicy,
    ExponentialBackoff,
    HedgePolicy,
    LoadSheddingAdmission,
)
from repro.workload import Task

N_MACHINES = 16


def make_cluster():
    return homogeneous_cluster("c", N_MACHINES, MachineSpec(cores=4),
                               machines_per_rack=4)


def make_workload(streams):
    rng = streams.stream("workload")
    return [Task(runtime=rng.uniform(20.0, 120.0), cores=2,
                 submit_time=rng.uniform(0.0, 50.0), priority=i % 3,
                 name=f"t{i}")
            for i in range(80)]


def burst_failures(streams, racks, horizon):
    """One correlated burst killing 50% of the fleet at t=60."""
    rng = streams.stream("failures")
    names = [name for rack in racks for name in rack]
    victims = tuple(sorted(rng.sample(names, k=len(names) // 2)))
    return [FailureEvent(time=60.0, machine_names=victims, duration=40.0)]


def run_scenario(name: str):
    checkpoints = "checkpoint" in name or "full" in name
    hedging = "hedge" in name or "full" in name
    shedding = "full" in name
    experiment = ChaosExperiment(
        cluster=make_cluster,
        workload=make_workload,
        failures=burst_failures,
        seed=7,
        horizon=500.0,
        retry_policy=ExponentialBackoff(max_attempts=6, base=1.0, cap=60.0,
                                        jitter="decorrelated"),
        checkpoint_policy=(CheckpointPolicy(interval=15.0, overhead=0.5)
                           if checkpoints else None),
        hedge_policy=(HedgePolicy(delay_factor=2.5, min_runtime=30.0)
                      if hedging else None),
        admission=((lambda dc: LoadSheddingAdmission(dc, threshold=0.85,
                                                     shed_below=1))
                   if shedding else None),
        availability_slo=0.9,
    )
    return experiment.run()


def main() -> None:
    scenarios = [
        ("retries only", "retries"),
        ("+ checkpoints", "checkpoint"),
        ("+ hedging", "checkpoint+hedge"),
        ("full (+ shedding)", "full"),
    ]
    rows = []
    for label, key in scenarios:
        report = run_scenario(key)
        assert report.ok, report.violations
        rows.append((label,
                     f"{report.tasks_finished}/{report.tasks_total}",
                     f"{report.tasks_shed}",
                     f"{report.wasted_core_seconds:.0f}",
                     f"{report.mean_recovery_time:.0f}",
                     f"{report.makespan:.0f}",
                     f"{report.availability:.3f}",
                     "yes" if report.slo_met else "no"))
    print(render_table(
        ["Mechanisms", "Finished", "Shed", "Wasted (core-s)",
         "Mean recovery (s)", "Makespan (s)", "Availability", "SLO met"],
        rows,
        title="Chaos experiment: 50% of machines lost at t=60, seed 7"))
    print()
    print("Every run is bit-reproducible: rerunning this script yields")
    print("the identical table (all randomness derives from one seed).")


if __name__ == "__main__":
    main()
