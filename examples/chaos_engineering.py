"""Chaos engineering study (C17): resilience mechanisms under fire.

Runs the same workload through a reproducible chaos experiment — a
space-correlated failure burst takes down half the cluster mid-run —
with progressively more resilience armed:

1. retries only (bounded exponential backoff),
2. retries + checkpoint/restart,
3. retries + checkpoints + hedged execution,
4. the full stack, plus load shedding of low-priority work.

Each row is one declarative :class:`~repro.scenario.ScenarioSpec`
derived from the base by switching resilience sections on — the
mechanism ladder is literally a sequence of spec overrides, and any
row could be exported with ``spec.to_json()`` and replayed with
``python -m repro run``.  The table shows what each mechanism buys:
checkpoints shrink wasted work, hedging shortens recovery, shedding
trades a few low-priority tasks for everyone else's latency.  Same
seed, same burst, every row.

Run with:  python examples/chaos_engineering.py
"""

from repro.reporting import render_table
from repro.scenario import (CheckpointSpec, ClusterSpec, FailureSpec,
                            HedgeSpec, RetrySpec, ScenarioSpec,
                            SheddingSpec, TopologySpec, WorkloadSpec)

BASE = ScenarioSpec(
    name="chaos-engineering",
    seed=7,
    topology=TopologySpec(
        clusters=(ClusterSpec("c", 16, cores=4, machines_per_rack=4),),
        datacenter="chaos-dc"),
    workload=WorkloadSpec("uniform-tasks", {
        "n_tasks": 80, "runtime": [20.0, 120.0], "cores": 2,
        "submit": [0.0, 50.0], "priority_levels": 3, "prefix": "t"}),
    failures=FailureSpec("sampled-bursts", {
        "times": [60.0], "victims": 0.5, "duration": 40.0}),
    retries=RetrySpec(max_attempts=6, base=1.0, cap=60.0,
                      jitter="decorrelated"),
    horizon=500.0,
    availability_slo=0.9)

#: Mechanism ladder: scenario key -> extra spec sections.
MECHANISMS = {
    "retries": {},
    "checkpoint": {"checkpoints": CheckpointSpec(interval=15.0,
                                                 overhead=0.5)},
    "checkpoint+hedge": {
        "checkpoints": CheckpointSpec(interval=15.0, overhead=0.5),
        "hedging": HedgeSpec(delay_factor=2.5, min_runtime=30.0)},
    "full": {
        "checkpoints": CheckpointSpec(interval=15.0, overhead=0.5),
        "hedging": HedgeSpec(delay_factor=2.5, min_runtime=30.0),
        "shedding": SheddingSpec(threshold=0.85, shed_below=1)},
}


def make_spec(key: str) -> ScenarioSpec:
    """The base chaos spec with the keyed mechanisms switched on."""
    sections = {name: section.to_dict()
                for name, section in MECHANISMS[key].items()}
    return BASE.override(sections)


def run_scenario(key: str) -> dict:
    """Run one rung of the mechanism ladder; return the chaos view."""
    result = make_spec(key).run()
    assert result.chaos is not None
    return result.chaos


def main() -> None:
    """Climb the resilience ladder and tabulate what each rung buys."""
    scenarios = [
        ("retries only", "retries"),
        ("+ checkpoints", "checkpoint"),
        ("+ hedging", "checkpoint+hedge"),
        ("full (+ shedding)", "full"),
    ]
    rows = []
    for label, key in scenarios:
        chaos = run_scenario(key)
        assert not chaos["violations"], chaos["violations"]
        summary = chaos["summary"]
        rows.append((label,
                     f"{summary['tasks_finished']:.0f}/"
                     f"{summary['tasks_total']:.0f}",
                     f"{summary['tasks_shed']:.0f}",
                     f"{summary['wasted_core_seconds']:.0f}",
                     f"{summary['mean_recovery_time']:.0f}",
                     f"{summary['makespan']:.0f}",
                     f"{summary['availability']:.3f}",
                     "yes" if summary["slo_met"] else "no"))
    print(render_table(
        ["Mechanisms", "Finished", "Shed", "Wasted (core-s)",
         "Mean recovery (s)", "Makespan (s)", "Availability", "SLO met"],
        rows,
        title="Chaos experiment: 50% of machines lost at t=60, seed 7"))
    print()
    print("Every run is bit-reproducible: rerunning this script yields")
    print("the identical table (all randomness derives from one seed).")


if __name__ == "__main__":
    main()
