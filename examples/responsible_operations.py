"""Responsible ecosystem operations: the peopleware & methodology side.

The paper insists MCS "must go deeper than just building technology"
(P2): operating an ecosystem involves licensed professionals (P7),
software-defined control with legacy adapters (C2), continuous
stakeholder transparency (C13), and reproducible experiments (C16).
This example runs one operations cycle exercising all four.

Run with:  python examples/responsible_operations.py
"""

import random

from repro.core import CertificationBody, Privilege, Professional, require_license
from repro.datacenter import (
    ControlPlane,
    Datacenter,
    MachineSpec,
    MetaMiddleware,
    homogeneous_cluster,
)
from repro.reporting import OperationalSnapshot, TransparencyReporter
from repro.scheduling import ClusterScheduler
from repro.sim import (
    ExperimentRecipe,
    Simulator,
    check_reproduction,
    run_experiment,
)
from repro.workload import PoissonArrivals, WorkloadGenerator


def operations_experiment(seed, parameters):
    """One reproducible operations period, returning its metrics."""
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "prod", parameters["machines"], MachineSpec(cores=16,
                                                    memory=1e9))])
    scheduler = ClusterScheduler(sim, dc)
    jobs = WorkloadGenerator(
        PoissonArrivals(0.25, rng=random.Random(seed)),
        rng=random.Random(seed + 1)).generate(parameters["horizon"])
    for job in jobs:
        scheduler.submit_job(job)
    sim.run(until=100_000.0)
    stats = scheduler.statistics()
    return {
        "completed": stats["completed"],
        "mean_latency": stats["response_mean"],
        "utilization": dc.mean_utilization(),
        "energy_kj": dc.total_energy_joules() / 1000.0,
    }


def main() -> None:
    # --- P7: only licensed professionals may operate ---
    society = CertificationBody("mcs-society")
    operator = Professional("sre-ada", competences={
        "systems thinking": 0.9, "design thinking": 0.7})
    society.grant(operator, Privilege.OPERATE)

    # --- C2: a mixed fleet, made controllable via meta-middleware ---
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("prod", 6)])
    plane = ControlPlane(dc, legacy=["prod-m0", "prod-m1"])
    before = plane.software_defined_fraction()
    MetaMiddleware(plane).wrap_all()
    after = plane.software_defined_fraction()
    require_license(society, operator.name, Privilege.OPERATE)
    release = plane.release(["prod-m5"])  # licensed, now fully SD

    # --- C16: run the quarter as a reproducible experiment ---
    recipe = ExperimentRecipe("ops-Q1", seed=7,
                              parameters={"machines": 6, "horizon": 200.0})
    record = run_experiment(operations_experiment, recipe)
    reproduction = check_reproduction(operations_experiment, record)

    # --- C13: publish the transparency report ---
    reporter = TransparencyReporter("prod-compute")
    reporter.publish(OperationalSnapshot(
        period="Q1",
        completed_work=int(record.metrics["completed"]),
        mean_latency=record.metrics["mean_latency"],
        sla_fraction_met=1.0,
        outages=0,
        tasks_lost_to_failures=0,
        cost_dollars=record.metrics["energy_kj"] * 0.0001,
        energy_kilojoules=record.metrics["energy_kj"],
        mean_utilization=record.metrics["utilization"],
    ))

    print(f"Operator licensing: {operator.name} licensed by "
          f"{society.name}: "
          f"{society.is_licensed(operator.name, Privilege.OPERATE)}")
    print(f"Software-defined fraction: {before:.2f} -> {after:.2f} "
          f"(meta-middleware); release applied: {release.fully_applied}")
    print(f"Experiment {recipe.name} ({recipe.fingerprint()}): "
          f"reproducible = {reproduction.reproducible}")
    print()
    print(reporter.render("client"))
    print()
    print(reporter.render("regulator"))
    assert reproduction.reproducible
    assert after == 1.0


if __name__ == "__main__":
    main()
