"""The future of banking under PSD2 (§6.4).

Builds an open-banking market, clears a day of deadline-bearing
payments (including refunds) under FCFS and EDF, and runs the
compliance audit — showing that meeting the *regulated* NFR is a
resource-management problem (P4).

Run with:  python examples/banking_psd2.py
"""

import random

from repro.banking import (
    ClearingSystem,
    ComplianceChecker,
    OpenBankingEcosystem,
    Participant,
    ParticipantKind,
    Payment,
    edf_order,
    fcfs_order,
)
from repro.reporting import render_kv, render_table
from repro.sim import Simulator


def build_market() -> OpenBankingEcosystem:
    market = OpenBankingEcosystem("eu-retail-payments")
    market.join(Participant("ing", ParticipantKind.BANK,
                            applications=1400, legacy_fraction=0.6))
    market.join(Participant("rabo", ParticipantKind.BANK,
                            applications=800, legacy_fraction=0.5))
    market.join(Participant("adyen", ParticipantKind.FINTECH,
                            applications=40))
    market.join(Participant("tink", ParticipantKind.FINTECH,
                            applications=25))
    market.join(Participant("google-pay", ParticipantKind.CONSUMER_BRAND,
                            applications=10))
    market.grant_api_access("ing", "adyen")
    market.grant_api_access("ing", "tink")
    market.grant_api_access("rabo", "google-pay")
    return market


def clear_a_day(order, seed: int = 3) -> ClearingSystem:
    sim = Simulator()
    clearing = ClearingSystem(sim, capacity=3, service_time=0.6,
                              order=order)
    rng = random.Random(seed)
    refundable = []

    def traffic(sim):
        for i in range(200):
            yield sim.timeout(rng.expovariate(1.2))
            payment = Payment(amount=rng.uniform(5, 2000),
                              submit_time=sim.now,
                              deadline=sim.now + rng.uniform(2.0, 8.0),
                              initiator=rng.choice(("adyen", "tink")),
                              provider="ing")
            clearing.submit(payment)
            refundable.append(payment)
            # The PSD2 refund right, exercised occasionally.
            if i % 37 == 5:
                for candidate in refundable:
                    if candidate.status.value == "cleared":
                        clearing.refund(candidate)
                        refundable.remove(candidate)
                        break

    sim.run(until=sim.process(traffic(sim)))
    sim.run(until=sim.now + 200.0)
    clearing.stop()
    return clearing


def main() -> None:
    market = build_market()
    eco = market.as_ecosystem()
    rows = []
    systems = {}
    for name, order in (("fcfs", fcfs_order), ("edf", edf_order)):
        clearing = clear_a_day(order)
        systems[name] = clearing
        rows.append((name, len(clearing.cleared),
                     f"{clearing.deadline_compliance():.3f}",
                     f"{clearing.mean_clearing_latency():.2f}",
                     len(clearing.refunds_issued)))
    report = ComplianceChecker(deadline_target=0.95).audit(
        market, [("ing", systems["edf"])])

    print(render_kv([
        ("market participants", len(market.participants())),
        ("ecosystem qualifies (§2.1)", eco.is_ecosystem()),
        ("applications in the market", sum(1 for _ in eco.walk())
         - len(market.participants())),
        ("PSD2-compliant banks", ", ".join(market.psd2_compliant_grants())),
    ], title="The PSD2 open-banking market"))
    print()
    print(render_table(
        ["Clearing order", "Cleared", "Deadline compliance",
         "Mean latency [s]", "Refunds"],
        rows, title="A day of payment clearing"))
    print()
    print(f"Compliance audit: {'PASS' if report.compliant else 'FAIL'} "
          f"({report.checks_run} checks, "
          f"{len(report.violations)} violations)")
    for violation in report.violations:
        print(f"  - [{violation.regulation}] {violation.subject}: "
              f"{violation.description}")


if __name__ == "__main__":
    main()
