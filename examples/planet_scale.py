"""Planet-scale sharding (C7, P4): three regions, one deterministic run.

Loads the three-region composite from the spec gallery
(``examples/specs/planet_scale.json``) — a gaming region (``eu``,
bursty MMPP match/lobby jobs), a banking region (``us``, Poisson
transaction/batch jobs), and a FaaS edge region (``ap``, short
independent function invocations) — and runs it sharded: one event
loop per region, coupled only through explicit cross-shard messages
under a conservative epoch barrier whose lookahead is the minimum
wide-area link latency (0.25 s).  The ``ap`` edge offloads overflow
functions to ``us`` over its declared link, so real tasks cross the
shard boundary mid-run.

The demonstration is the determinism contract from
``docs/ARCHITECTURE.md`` ("Sharding"): the merged result digest is
byte-identical whether the three shards share one process or spread
over 2 or 3 OS worker processes.  The same scenario runs from the
command line via::

    python -m repro run examples/specs/planet_scale.json --shard-workers 2

Run with:  python examples/planet_scale.py
"""

from pathlib import Path

from repro.reporting import render_table
from repro.scenario import ScenarioSpec
from repro.sim import run_sharded

SPEC = Path(__file__).parent / "specs" / "planet_scale.json"


def main() -> None:
    """Run the three-region scenario at 1, 2, and 3 shard workers."""
    spec = ScenarioSpec.from_json(SPEC.read_text(encoding="utf-8"))
    baseline = run_sharded(spec, workers=1)
    rows = []
    for shard, entry in sorted(baseline.result.shards["by_shard"].items()):
        shard_result = entry["result"]
        rows.append((shard,
                     f"{shard_result['tasks_finished']}"
                     f"/{shard_result['tasks_total']}",
                     f"{shard_result['makespan']:.1f}",
                     f"{entry['offloads_sent']}",
                     f"{entry['offloads_run']}"))
    print(render_table(
        ("region", "finished", "makespan", "offloaded", "ran remote"),
        rows,
        title=f"Planet-scale run of {spec.name!r} "
              f"(seed {spec.seed}, 3 regions)"))
    coupling = baseline.result.shards["coupling"]
    print(f"\n  epoch barrier: {coupling['epochs']} epochs at lookahead "
          f"{coupling['lookahead']}s, {coupling['offloaded']} task(s) "
          f"crossed a shard boundary")
    print(f"  merged digest: {baseline.result.digest()}")
    for workers in (2, 3):
        outcome = run_sharded(spec, workers=workers)
        assert outcome.result.digest() == baseline.result.digest(), (
            f"determinism violated at {workers} workers")
        print(f"  {workers} worker processes: digest identical")
    print("  one loop or many processes - byte-identical, as promised")


if __name__ == "__main__":
    main()
