"""Datacenter scheduling study (§6.1, C7): policies on a bursty trace.

Generates a bursty grid-style workload (MMPP arrivals [113]), replays
it under four allocation policies, and adds elastic provisioning with
an autoscaler — the full dual problem on one page.

Run with:  python examples/datacenter_scheduling.py
"""

import random

from repro.autoscaling import AutoscalingController, ReactAutoscaler
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.reporting import render_table
from repro.scheduling import FCFS, SJF, ClusterScheduler, PortfolioScheduler
from repro.sim import Simulator
from repro.workload import (
    MMPPArrivals,
    TaskProfile,
    VicissitudeMix,
    WorkloadGenerator,
)


def make_jobs(seed: int = 1):
    generator = WorkloadGenerator(
        MMPPArrivals(quiet_rate=0.05, burst_rate=0.8, quiet_duration=60.0,
                     burst_duration=20.0, rng=random.Random(seed)),
        mix=VicissitudeMix.steady(
            (TaskProfile("batch", runtime_mean=25.0, runtime_sigma=1.0,
                         cores_choices=(1, 2, 4)),)),
        tasks_per_job=3.0, rng=random.Random(seed + 1))
    return generator.generate(horizon=500.0)


def run(policy_name: str, autoscale: bool = False) -> dict[str, float]:
    sim = Simulator()
    datacenter = Datacenter(sim, [homogeneous_cluster(
        "c", 6, MachineSpec(cores=8, memory=1e9))])
    if policy_name == "fcfs":
        scheduler = ClusterScheduler(sim, datacenter, queue_policy=FCFS(),
                                     strict_head=True)
    elif policy_name == "fcfs+backfill":
        scheduler = ClusterScheduler(sim, datacenter, queue_policy=FCFS(),
                                     backfilling=True)
    elif policy_name == "sjf":
        scheduler = ClusterScheduler(sim, datacenter, queue_policy=SJF())
    else:
        scheduler = ClusterScheduler(sim, datacenter)
        PortfolioScheduler(sim, scheduler, [FCFS(), SJF()], interval=25.0)
    controller = None
    if autoscale:
        controller = AutoscalingController(sim, datacenter, scheduler,
                                           ReactAutoscaler(), interval=5.0)
    jobs = make_jobs()

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=20_000.0)
    if controller is not None:
        controller.stop()
    stats = scheduler.statistics()
    assert stats["completed"] == sum(len(j) for j in jobs)
    return {
        "slowdown": stats["slowdown_mean"],
        "wait_p95": stats["wait_p95"],
        "utilization": datacenter.mean_utilization(),
    }


def main() -> None:
    rows = []
    for name in ("fcfs", "fcfs+backfill", "sjf", "portfolio"):
        metrics = run(name)
        rows.append((name, f"{metrics['slowdown']:.2f}",
                     f"{metrics['wait_p95']:.0f}",
                     f"{metrics['utilization']:.3f}"))
    elastic = run("sjf", autoscale=True)
    rows.append(("sjf + react autoscaler", f"{elastic['slowdown']:.2f}",
                 f"{elastic['wait_p95']:.0f}",
                 f"{elastic['utilization']:.3f}"))
    print(render_table(
        ["Policy", "Mean slowdown", "p95 wait [s]", "Mean utilization"],
        rows, title="Dual-problem scheduling on a bursty MMPP trace"))


if __name__ == "__main__":
    main()
