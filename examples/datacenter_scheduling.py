"""Datacenter scheduling study (§6.1, C7): policies on a bursty trace.

Declares a bursty grid-style workload (MMPP arrivals [113]) as a
:class:`~repro.scenario.ScenarioSpec`, replays it under four
allocation policies, and adds elastic provisioning with an autoscaler
— the full dual problem on one page.  Every variant is derived from
one base spec via ``override``; no hand-wired setup code remains, and
each derived spec could be dumped to JSON and re-run bit-identically
(``python -m repro run <spec.json>``).

Run with:  python examples/datacenter_scheduling.py
"""

from repro.reporting import render_table
from repro.scenario import (ClusterSpec, ScenarioSpec, TopologySpec,
                            WorkloadSpec)

BASE = ScenarioSpec(
    name="datacenter-scheduling",
    seed=1,
    topology=TopologySpec(
        clusters=(ClusterSpec("c", 6, cores=8, memory=1e9),)),
    workload=WorkloadSpec("mmpp-jobs", {
        "quiet_rate": 0.05, "burst_rate": 0.8,
        "quiet_duration": 60.0, "burst_duration": 20.0,
        "profiles": [{"kind": "batch", "runtime_mean": 25.0,
                      "runtime_sigma": 1.0, "cores_choices": [1, 2, 4]}],
        "tasks_per_job": 3.0, "horizon": 500.0}),
    duration=20_000.0)

#: Variant name -> dotted-path overrides on the base spec.
VARIANTS = {
    "fcfs": {"scheduler.strict_head": True},
    "fcfs+backfill": {"scheduler.backfilling": True},
    "sjf": {"scheduler.queue": "sjf"},
    "portfolio": {"scheduler.portfolio": ["sjf"],
                  "scheduler.portfolio_interval": 25.0},
}


def run(policy_name: str, autoscale: bool = False) -> dict[str, float]:
    """Run one policy variant; return its headline metrics."""
    spec = BASE.override(VARIANTS[policy_name])
    if autoscale:
        spec = spec.override(
            {"autoscaler": {"policy": "react", "interval": 5.0}})
    result = spec.run()
    assert result.statistics is not None
    assert result.statistics["completed"] == result.tasks_total
    return {
        "slowdown": result.statistics["slowdown_mean"],
        "wait_p95": result.statistics["wait_p95"],
        "utilization": result.datacenter["mean_utilization"],
    }


def main() -> None:
    """Replay the trace under every variant and tabulate."""
    rows = []
    for name in ("fcfs", "fcfs+backfill", "sjf", "portfolio"):
        metrics = run(name)
        rows.append((name, f"{metrics['slowdown']:.2f}",
                     f"{metrics['wait_p95']:.0f}",
                     f"{metrics['utilization']:.3f}"))
    elastic = run("sjf", autoscale=True)
    rows.append(("sjf + react autoscaler", f"{elastic['slowdown']:.2f}",
                 f"{elastic['wait_p95']:.0f}",
                 f"{elastic['utilization']:.3f}"))
    print(render_table(
        ["Policy", "Mean slowdown", "p95 wait [s]", "Mean utilization"],
        rows, title="Dual-problem scheduling on a bursty MMPP trace"))


if __name__ == "__main__":
    main()
