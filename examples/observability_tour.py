"""Observability tour (C13, C17): a chaos experiment, traced end-to-end.

Runs one reproducible chaos experiment — a correlated failure burst
takes down a quarter of the cluster mid-run, bounded retries recover —
with the full observability stack attached, then shows every view the
layer offers:

1. the metrics registry (counters, gauges, latency histograms),
2. the per-subsystem profile of the run itself,
3. the causal trace: task spans, their execution attempts (including
   the interrupted ones the burst killed), and resilience markers,
4. the Chrome-trace export, written next to this script.

Attaching the observer changes nothing: the experiment's report is
identical with and without it, and rerunning this script regenerates
the identical trace bytes (the printed digest proves it).

Run with:  python examples/observability_tour.py
"""

import hashlib
import pathlib

from repro.datacenter import MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent
from repro.observability import Observer
from repro.reporting import render_metrics, render_profile, render_table
from repro.resilience import ChaosExperiment, ExponentialBackoff
from repro.workload import Task

N_MACHINES = 16


def make_cluster():
    return homogeneous_cluster("c", N_MACHINES, MachineSpec(cores=4),
                               machines_per_rack=4)


def make_workload(streams):
    rng = streams.stream("workload")
    return [Task(runtime=rng.uniform(20.0, 120.0), cores=2,
                 submit_time=rng.uniform(0.0, 50.0), name=f"t{i}")
            for i in range(60)]


def burst_failures(streams, racks, horizon):
    """One correlated burst killing 25% of the fleet at t=60."""
    rng = streams.stream("failures")
    names = [name for rack in racks for name in rack]
    victims = tuple(sorted(rng.sample(names, k=len(names) // 4)))
    return [FailureEvent(time=60.0, machine_names=victims, duration=40.0)]


def make_experiment():
    return ChaosExperiment(
        cluster=make_cluster,
        workload=make_workload,
        failures=burst_failures,
        seed=7,
        horizon=600.0,
        retry_policy=ExponentialBackoff(max_attempts=6, base=1.0, cap=60.0,
                                        jitter="decorrelated"),
    )


def span_census(tracer):
    """Count spans by name prefix — the trace's table of contents."""
    census: dict[str, int] = {}
    for span in tracer.spans:
        kind = span.name.split(" ")[0]
        census[kind] = census.get(kind, 0) + 1
    return census


def main() -> None:
    observer = Observer()
    report = make_experiment().run(observer=observer)
    baseline = make_experiment().run()
    assert report.summary() == baseline.summary(), \
        "observability must not perturb the run"

    print(render_metrics(observer.metrics.snapshot(),
                         title="Chaos run, seed 7: metrics registry"))
    print()
    print(render_profile(observer.profiler.report(),
                         wall=observer.profiler.wall_report(),
                         title="Where the run's events went"))
    print()

    census = span_census(observer.tracer)
    print(render_table(
        ["Span kind", "Count"],
        [(kind, str(count)) for kind, count in sorted(census.items())],
        title="Causal trace census"))
    print()

    interrupted = [s for s in observer.tracer.spans
                   if s.attrs.get("outcome") == "interrupted"]
    print(f"The burst at t=60 interrupted {len(interrupted)} execution")
    print("attempts; each is an 'exec' span parented to its task span,")
    print("so the retry chain reads left-to-right in the trace viewer.")
    print()

    trace_json = observer.trace_chrome_json()
    # Lands next to this script; a generated artifact, gitignored on
    # purpose — re-run the tour to regenerate it (same seed, same bytes).
    out = pathlib.Path(__file__).with_name("observability_tour_trace.json")
    out.write_text(trace_json)
    digest = hashlib.sha256(trace_json.encode()).hexdigest()
    print(f"Chrome trace written to {out.name} "
          f"({len(trace_json)} bytes) — open it at chrome://tracing.")
    print(f"sha256 {digest[:16]}…  (stable across reruns: all randomness")
    print("derives from the experiment seed; see docs/OBSERVABILITY.md)")


if __name__ == "__main__":
    main()
