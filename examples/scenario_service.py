"""The scenario service surviving its own chaos drill (C4, C17).

Runs the deterministic incident script from
:class:`~repro.service.ServiceChaosDrill` against an in-process
:class:`~repro.service.ScenarioService`: an overload burst from three
tenants against a deliberately small service (bounded queue of 8,
quota 4 per tenant), worker crashes injected into the first admitted
jobs to trip the circuit breaker, a submission against the open
breaker, then recovery.  The drill verifies the dogfooding claim end
to end — shed requests get 429/503 with ``Retry-After``, every
admitted run completes with a digest byte-identical to serial
execution, a post-storm re-submission is a pure cache hit, and the
service's own availability SLO stays green in its alert log.

The same service runs over HTTP with::

    python -m repro serve --port 8765 --workers 2

(see docs/SERVICE.md for the endpoints and semantics).

Run with:  python examples/scenario_service.py
"""

from repro.reporting import render_table
from repro.scenario import (ClusterSpec, ScenarioSpec, TopologySpec,
                            WorkloadSpec)
from repro.service import ServiceChaosDrill

BASE = ScenarioSpec(
    name="service-demo",
    seed=0,
    topology=TopologySpec(
        clusters=(ClusterSpec("s", 4, cores=2, machines_per_rack=2),),
        datacenter="service-dc"),
    workload=WorkloadSpec("uniform-tasks", {
        "n_tasks": 10, "runtime": [5.0, 20.0], "cores": 1,
        "submit": [0.0, 15.0], "prefix": "t"}),
    horizon=200.0)


def main() -> None:
    """Run the drill twice and print the (identical) incident report."""
    report = ServiceChaosDrill(BASE).run()

    rows = [
        ("submissions offered", str(report.submissions)),
        ("admitted", str(report.admitted)),
        ("shed with 429 + Retry-After", str(report.shed_429)),
        ("rejected 503 (breaker open)", str(report.breaker_503)),
        ("worker crashes injected", str(report.injected_crashes)),
        ("deterministic retries", str(report.retries)),
        ("admitted runs completed", str(report.completed)),
        ("digest mismatches vs serial", str(len(report.digest_mismatches))),
        ("post-storm cache hit", "yes" if report.cache_hit_ok else "NO"),
        ("availability compliance",
         f"{report.availability.get('compliance', 0.0):.3f} "
         f"(target {report.availability.get('target', 0.0):.2f})"),
        ("burn-rate alerts firing", str(report.alerts_active)),
    ]
    print(render_table(["What the drill observed", "Value"], rows,
                       title="One scripted incident: overload burst + "
                             "worker crashes"))
    print()
    verdict = "PASSED" if report.passed else "FAILED"
    print(f"  drill verdict: {verdict}")

    again = ServiceChaosDrill(BASE).run()
    assert again.to_dict() == report.to_dict()
    print("  re-run of the drill produced an identical report "
          "(deterministic incident)")


if __name__ == "__main__":
    main()
