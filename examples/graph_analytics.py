"""Generalized graph processing with a Graphalytics harness (§6.6, [42]).

Runs the six-algorithm suite across three platform models and three
dataset families, prints the ranking, a strong-scaling curve, and then
*renews* the benchmark workload — the Graphalytics curation process in
action.

Run with:  python examples/graph_analytics.py
"""


from repro.graphproc import (
    GraphalyticsHarness,
    default_workload,
    grid_graph,
)
from repro.reporting import render_series, render_table


def main() -> None:
    workload = default_workload(scale=200, seed=42)
    harness = GraphalyticsHarness(workload)

    # Full matrix: 3 platforms x 6 algorithms x 3 datasets.
    results = harness.run_suite()
    ranking = harness.rank_platforms(results)
    print(render_table(
        ["Platform", "Geo-mean runtime [s]"],
        [(name, f"{value:.3f}") for name, value in ranking],
        title=f"Graphalytics matrix v{workload.version}: "
              f"{len(results)} cells"))
    print()

    # Per-algorithm winners on the scale-free dataset.
    rows = []
    for algorithm in sorted(workload.algorithms):
        cells = [r for r in results
                 if r.algorithm == algorithm and r.dataset == "scale-free"]
        best = min(cells, key=lambda r: r.runtime)
        rows.append((algorithm, best.platform, f"{best.runtime:.3f}",
                     f"{best.evps:.0f}"))
    print(render_table(["Algorithm", "Fastest platform", "Runtime [s]",
                        "EVPS"], rows,
                       title="Per-algorithm winners (scale-free dataset)"))
    print()

    # Strong scaling of PageRank on the dataflow engine.
    curve = harness.strong_scaling("dataflow-engine", "pr", "uniform",
                                   worker_counts=(1, 2, 4, 8, 16, 32))
    print(render_series(curve, title="Strong scaling: PageRank on the "
                                     "dataflow engine (workers -> speedup)"))
    print()

    # The renewal process: retire a dataset, add a road-network-like one.
    renewed = workload.renew(
        add_datasets={"road-grid": grid_graph(16, 16)},
        retire_datasets=["sparse"])
    renewed_harness = GraphalyticsHarness(renewed)
    renewed_results = renewed_harness.run_suite()
    print(f"Workload renewed: v{workload.version} -> v{renewed.version}; "
          f"datasets now {sorted(renewed.datasets)}; "
          f"{len(renewed_results)} cells re-run.")


if __name__ == "__main__":
    main()
