"""Timing and determinism-digest utilities for the perf harness.

Wall-clock numbers are noisy and machine-dependent; the harness
therefore records three complementary kinds of evidence:

- **elapsed seconds** (best-of-N wall time) for local before/after
  comparisons on the same machine;
- **calibrated cost** — elapsed time divided by the duration of a
  fixed pure-Python calibration loop measured on the same host, which
  makes numbers roughly comparable across machines and CI runners;
- **determinism digests** — SHA-256 hashes of simulation outcomes
  (event-time traces, scheduler statistics, chaos reports, CSR
  arrays), which must match *exactly* across code changes that claim
  to preserve behavior.
"""

from __future__ import annotations

import hashlib
import json
import time
from array import array
from typing import Any, Callable, Sequence

__all__ = [
    "best_of",
    "calibration_unit",
    "canonical_json",
    "digest",
    "digest_floats",
]


def best_of(fn: Callable[[], Any], repeat: int = 3) -> tuple[float, Any]:
    """Run ``fn`` ``repeat`` times; return (best elapsed seconds, last result)."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best = float("inf")
    result: Any = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _calibration_workload() -> int:
    """A fixed mixed workload: attribute access, calls, list building."""

    class Cell:
        __slots__ = ("value",)

        def __init__(self, value: int) -> None:
            self.value = value

    cells = [Cell(i & 15) for i in range(512)]
    acc = 0
    out: list[int] = []
    append = out.append
    for _ in range(200):
        for cell in cells:
            value = cell.value
            if value & 1:
                acc += value
            else:
                append(value)
        del out[:]
    return acc


def calibration_unit(repeat: int = 5) -> float:
    """Seconds the host needs for the fixed calibration workload.

    Dividing a scenario's elapsed time by this unit yields a roughly
    machine-independent cost figure (the same trick pyperf uses for
    system calibration).
    """
    unit, _ = best_of(_calibration_workload, repeat=repeat)
    return unit


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering (sorted keys, full float precision)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def digest_floats(values: Sequence[float]) -> str:
    """SHA-256 hex digest of a float sequence's exact binary image."""
    return hashlib.sha256(array("d", values).tobytes()).hexdigest()
