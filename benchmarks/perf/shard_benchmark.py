"""Shard benchmark: one continental event loop vs per-region shards.

Measures what :func:`repro.sim.run_sharded` actually buys over the
architecture it replaces — a single monolithic simulator spinning one
event loop over every region's machines and every service's tasks at
once.  The workload is the paper's composite ecosystem: each region
runs gaming (bursty MMPP match/lobby jobs), banking (Poisson
transaction/batch jobs), and FaaS (short independent function
invocations) on shared regional infrastructure, overloaded enough
that schedulers carry real backlog.  Summed over the run the fleet
executes about a million simulated core-seconds.

The speedup is *algorithmic*, not parallel-hardware luck: scheduling
a task costs work proportional to the fleet and backlog the scheduler
can see, so one loop over ``K`` regions pays superlinearly what ``K``
per-region loops pay piecewise.  The record therefore reports the
sharded runs at 1 worker process first — same host, same core, same
Python, just a partitioned event loop — and the multi-process
configurations after it.  Every sharded configuration must produce
the byte-identical merged digest (the conservative-coupling
determinism contract); ``tools/check_bench_trajectory.py`` refuses
the record otherwise.

The monolith and the sharded spec are *different specs* (one has a
``shards`` section) with different fingerprints — the record keeps
both and the checker validates them independently instead of
demanding the cross-spec identity the ``bench-sim-core/v1`` schema
enforces.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.shard_benchmark \
        --output BENCH_shard.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.scenario import (ClusterSpec, ScenarioSpec, ShardLinkSpec,
                            ShardPlanSpec, ShardSpec, TopologySpec,
                            WorkloadSpec)
from repro.sim.sharding import run_sharded

__all__ = ["main", "monolith_spec", "sharded_spec"]

SCHEMA = "bench-shard/v1"
REGIONS = 6
MACHINES_PER_REGION = 30
CORES_PER_MACHINE = 4
HORIZON = 300.0
LINK_LATENCY = 0.5


def _region_workload(region: int) -> WorkloadSpec:
    """Gaming + banking + FaaS on one region's shared infrastructure."""
    prefix = f"r{region}"
    gaming = {"kind": "mmpp-jobs", "params": {
        "profiles": [
            {"kind": "match", "runtime_mean": 30.0, "runtime_sigma": 0.4,
             "cores_choices": [2], "memory_mean": 2.0},
            {"kind": "lobby", "runtime_mean": 8.0, "runtime_sigma": 0.3,
             "cores_choices": [1], "memory_mean": 1.0},
        ],
        "quiet_rate": 0.5, "burst_rate": 2.2,
        "quiet_duration": 30.0, "burst_duration": 15.0,
        "horizon": HORIZON, "tasks_per_job": 4.0,
        "arrival_stream": f"{prefix}-game-arrivals",
        "stream": f"{prefix}-gaming"}}
    banking = {"kind": "poisson-jobs", "params": {
        "profiles": [
            {"kind": "txn", "runtime_mean": 10.0, "runtime_sigma": 0.3,
             "cores_choices": [1], "memory_mean": 1.0},
            {"kind": "batch", "runtime_mean": 50.0, "runtime_sigma": 0.5,
             "cores_choices": [2, 4], "memory_mean": 4.0},
        ],
        "rate": 0.8, "horizon": HORIZON, "tasks_per_job": 5.0,
        "arrival_stream": f"{prefix}-bank-arrivals",
        "stream": f"{prefix}-banking"}}
    faas = {"kind": "uniform-tasks", "params": {
        "n_tasks": 800, "runtime": [2.0, 16.0], "cores": [1, 2],
        "submit": [0.0, HORIZON], "prefix": f"{prefix}-fn-",
        "priority_levels": 1, "stream": f"{prefix}-faas"}}
    return WorkloadSpec("composite", {"parts": [gaming, banking, faas]})


def _clusters() -> tuple:
    return tuple(ClusterSpec(f"r{i}", MACHINES_PER_REGION,
                             cores=CORES_PER_MACHINE, machines_per_rack=6)
                 for i in range(REGIONS))


def monolith_spec() -> ScenarioSpec:
    """Every region's services in one event loop (the "before")."""
    parts = [_region_workload(i).to_dict() for i in range(REGIONS)]
    return ScenarioSpec(
        name="continental-monolith", seed=7,
        topology=TopologySpec(clusters=_clusters(), datacenter="continent"),
        workload=WorkloadSpec("composite", {"parts": parts}),
        horizon=20000.0)


def sharded_spec() -> ScenarioSpec:
    """The same regions as conservatively coupled shards (the "after")."""
    shards = tuple(ShardSpec(f"r{i}", (f"r{i}",),
                             workload=_region_workload(i))
                   for i in range(REGIONS))
    links = tuple(ShardLinkSpec(f"r{i}", f"r{i + 1}", latency=LINK_LATENCY)
                  for i in range(REGIONS - 1))
    parts = [_region_workload(i).to_dict() for i in range(REGIONS)]
    return ScenarioSpec(
        name="continental-sharded", seed=7,
        topology=TopologySpec(clusters=_clusters(), datacenter="continent"),
        workload=WorkloadSpec("composite", {"parts": parts}),
        horizon=20000.0,
        shards=ShardPlanSpec(shards=shards, links=links))


def _measure_monolith() -> dict:
    """Time the single-loop run; return metrics + digest."""
    spec = monolith_spec()
    start = time.perf_counter()
    result = spec.run()
    elapsed = time.perf_counter() - start
    core_seconds = sum(
        t.runtime * t.cores for t in spec.build().tasks)
    return {
        "fingerprint": spec.fingerprint(),
        "elapsed_s": elapsed,
        "digest": result.digest(),
        "tasks": result.tasks_total,
        "tasks_finished": result.tasks_finished,
        "events": result.events_processed,
        "makespan": result.makespan,
        "core_seconds": core_seconds,
    }


def _measure_sharded(worker_counts: tuple[int, ...]) -> dict:
    """Time the sharded run at each worker count; digests must agree."""
    spec = sharded_spec()
    configs = {}
    coupling = None
    for workers in worker_counts:
        start = time.perf_counter()
        outcome = run_sharded(spec, workers=workers)
        elapsed = time.perf_counter() - start
        coupling = outcome.result.shards["coupling"]
        configs[str(workers)] = {
            "elapsed_s": elapsed,
            "digest": outcome.result.digest(),
        }
    return {
        "fingerprint": spec.fingerprint(),
        "shards": REGIONS,
        "epochs": coupling["epochs"],
        "offloaded": coupling["offloaded"],
        "configs": configs,
    }


def main(argv: list[str] | None = None) -> int:
    """Run the benchmark and write/print the ``bench-shard/v1`` record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the record here (default: stdout)")
    parser.add_argument("--workers", default="1,2,6",
                        help="comma-separated sharded worker counts")
    args = parser.parse_args(argv)
    worker_counts = tuple(int(part) for part in args.workers.split(","))

    monolith = _measure_monolith()
    sharded = _measure_sharded(worker_counts)
    digests = {entry["digest"] for entry in sharded["configs"].values()}
    if len(digests) != 1:
        print(f"FAIL: sharded digests diverged across worker counts: "
              f"{sorted(digests)}", file=sys.stderr)
        return 1
    speedups = {
        workers: monolith["elapsed_s"] / entry["elapsed_s"]
        for workers, entry in sharded["configs"].items()}
    record = {
        "schema": SCHEMA,
        "generated_with": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "note": ("monolith = one event loop over all regions; "
                     "sharded = per-region loops under conservative "
                     "epoch coupling, keyed by worker-process count. "
                     "The 1-worker speedup is the pure partition "
                     "effect (same process, same core); every sharded "
                     "config produced the byte-identical digest."),
        },
        "monolith": monolith,
        "sharded": sharded,
        "speedups": speedups,
    }
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    for workers, ratio in sorted(speedups.items(), key=lambda kv: int(kv[0])):
        print(f"  {workers} worker(s): {ratio:.2f}x vs monolith "
              f"({sharded['configs'][workers]['elapsed_s']:.2f}s vs "
              f"{monolith['elapsed_s']:.2f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
