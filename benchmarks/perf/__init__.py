"""Performance-benchmark harness for the simulator hot paths.

Measures the discrete-event core, the cluster-scheduling pipeline, and
CSR graph construction, and emits machine-readable results for
``BENCH_sim_core.json``.  Every scenario is seeded and also produces a
*determinism digest* so optimizations can be checked for bit-identical
behavior, not just speed.  See ``docs/PERFORMANCE.md``.
"""
