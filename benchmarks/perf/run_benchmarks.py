"""CLI driver for the perf harness.

Typical flows::

    # Record a capture (timings + determinism digests) at the current code:
    PYTHONPATH=src python -m benchmarks.perf.run_benchmarks \
        --mode full --capture benchmarks/perf/baseline_before.json

    # After optimizing, produce the committed perf record (verifies the
    # determinism digests against the "before" capture):
    PYTHONPATH=src python -m benchmarks.perf.run_benchmarks \
        --mode full --before benchmarks/perf/baseline_before.json \
        --output BENCH_sim_core.json

    # CI regression smoke check against the committed record:
    PYTHONPATH=src python -m benchmarks.perf.run_benchmarks \
        --mode smoke --check BENCH_sim_core.json --tolerance 0.25

    # Refresh the tier-1 determinism goldens:
    PYTHONPATH=src python -m benchmarks.perf.run_benchmarks \
        --capture-goldens tests/perf/goldens/determinism.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from . import scenarios
from .harness import calibration_unit

SCHEMA = "bench-sim-core/v1"


def _capture(mode: str, repeat: int) -> dict:
    """Run every scenario at ``mode`` size; return timings + digests."""
    sizes = scenarios.SIZES[mode]
    unit = calibration_unit()
    sched = scenarios.run_scheduling(sizes["sched_tasks"],
                                     sizes["sched_machines"])
    sched["calibrated_cost"] = sched["elapsed_s"] / unit
    events = scenarios.run_event_core(sizes["event_count"])
    events["calibrated_cost"] = events["elapsed_s"] / unit
    csr = scenarios.run_csr_build(sizes["csr_vertices"], sizes["csr_degree"],
                                  repeat=repeat)
    csr["calibrated_cost"] = csr["elapsed_s"] / unit
    chaos = scenarios.run_chaos()
    chaos["calibrated_cost"] = chaos["elapsed_s"] / unit
    return {
        "schema": SCHEMA,
        "mode": mode,
        "python": platform.python_version(),
        "calibration_unit_s": unit,
        "metrics": {
            "scheduling": sched,
            "event_core": events,
            "csr_build": csr,
            "chaos": chaos,
        },
        "digests": {
            "scheduling": scenarios.digest_scheduling(
                sizes["sched_tasks"], sizes["sched_machines"]),
            "event_core": scenarios.digest_event_core(sizes["event_count"]),
            "csr": scenarios.digest_csr(sizes["csr_vertices"],
                                        sizes["csr_degree"]),
            "chaos": scenarios.digest_chaos(),
        },
    }


def _golden_capture() -> dict:
    sizes = scenarios.SIZES["golden"]
    return {
        "schema": "determinism-goldens/v1",
        "sizes": sizes,
        "scheduling": scenarios.digest_scheduling(sizes["sched_tasks"],
                                                  sizes["sched_machines"]),
        "event_core": scenarios.digest_event_core(sizes["event_count"]),
        "csr": scenarios.digest_csr(sizes["csr_vertices"],
                                    sizes["csr_degree"]),
        "chaos": scenarios.digest_chaos(),
        "alerts": scenarios.digest_alerts(),
    }


def _compare_digests(before: dict, after: dict) -> list[str]:
    """Names of scenarios whose determinism digests differ."""
    mismatches = []
    for name, record in after.items():
        old = before.get(name)
        if old is not None and old.get("sha") != record.get("sha"):
            mismatches.append(name)
    return mismatches


def _speedup(before: dict, after: dict, metric: str = "elapsed_s") -> float:
    if not after.get(metric):
        return 0.0
    return before.get(metric, 0.0) / after[metric]


def _emit_record(args: argparse.Namespace) -> int:
    capture = _capture(args.mode, args.repeat)
    record: dict = {
        "schema": SCHEMA,
        "generated_with": {"python": capture["python"], "mode": args.mode},
        "current": capture,
    }
    if args.before:
        before = json.loads(Path(args.before).read_text())
        mismatches = _compare_digests(before.get("digests", {}),
                                      capture["digests"])
        if mismatches:
            print(f"FAIL: determinism digests changed: {mismatches}")
            return 1
        record["before"] = before
        record["speedups"] = {
            name: _speedup(before["metrics"][name],
                           capture["metrics"][name])
            for name in capture["metrics"]
            if name in before.get("metrics", {})
        }
        print("determinism digests identical to the 'before' capture")
        for name, factor in sorted(record["speedups"].items()):
            print(f"  speedup {name}: {factor:.2f}x")
    # A smoke capture rides along for the CI regression check, so CI
    # does not need to run the full sizes.
    if args.mode != "smoke":
        record["smoke"] = _capture("smoke", args.repeat)
    else:
        record["smoke"] = capture
    Path(args.output).write_text(json.dumps(record, indent=2,
                                            sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


def _check(args: argparse.Namespace) -> int:
    """CI regression gate against a committed BENCH record."""
    committed = json.loads(Path(args.check).read_text())
    baseline = committed.get("smoke")
    if baseline is None:
        print(f"FAIL: {args.check} has no 'smoke' baseline section")
        return 1
    tolerance = args.tolerance
    capture = _capture("smoke", args.repeat)
    failures: list[str] = []

    mismatches = _compare_digests(baseline.get("digests", {}),
                                  capture["digests"])
    if mismatches:
        failures.append(f"determinism digests changed: {mismatches}")

    # Machine-portable ratio: vectorized CSR vs the frozen reference
    # loop, both timed on this host in this run.
    committed_ratio = baseline["metrics"]["csr_build"].get(
        "speedup_vs_reference", 0.0)
    current_ratio = capture["metrics"]["csr_build"].get(
        "speedup_vs_reference", 0.0)
    if committed_ratio and current_ratio < (1.0 - tolerance) * committed_ratio:
        failures.append(
            f"csr speedup regressed: {current_ratio:.2f}x vs committed "
            f"{committed_ratio:.2f}x")

    # Calibrated costs: elapsed / host-calibration-unit.  Noisier than
    # the ratio above, so the tolerance applies to these too.
    for name in ("scheduling", "event_core", "chaos"):
        committed_cost = baseline["metrics"][name].get("calibrated_cost")
        current_cost = capture["metrics"][name].get("calibrated_cost")
        if committed_cost and current_cost > (1.0 + tolerance) * committed_cost:
            failures.append(
                f"{name} calibrated cost regressed: {current_cost:.1f} vs "
                f"committed {committed_cost:.1f} (tolerance {tolerance:.0%})")

    for line in failures:
        print(f"FAIL: {line}")
    if not failures:
        print(f"perf smoke check passed (tolerance {tolerance:.0%})")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("smoke", "full"), default="smoke")
    parser.add_argument("--repeat", type=int, default=5,
                        help="best-of repetitions for micro timings")
    parser.add_argument("--capture", metavar="PATH",
                        help="run scenarios and write a raw capture JSON")
    parser.add_argument("--before", metavar="PATH",
                        help="prior capture to compare digests/speedups against")
    parser.add_argument("--output", metavar="PATH",
                        help="write the combined BENCH record here")
    parser.add_argument("--check", metavar="PATH",
                        help="regression-check against a committed BENCH record")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression for --check")
    parser.add_argument("--capture-goldens", metavar="PATH",
                        help="write tier-1 determinism goldens and exit")
    args = parser.parse_args(argv)

    if args.capture_goldens:
        Path(args.capture_goldens).write_text(
            json.dumps(_golden_capture(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.capture_goldens}")
        return 0
    if args.check:
        return _check(args)
    if args.capture:
        capture = _capture(args.mode, args.repeat)
        Path(args.capture).write_text(json.dumps(capture, indent=2,
                                                 sort_keys=True) + "\n")
        print(f"wrote {args.capture}")
        for name, metrics in sorted(capture["metrics"].items()):
            print(f"  {name}: {metrics['elapsed_s']:.3f}s")
        return 0
    if args.output:
        return _emit_record(args)
    parser.error("choose one of --capture, --output, --check, "
                 "--capture-goldens")
    return 2


if __name__ == "__main__":
    sys.exit(main())
