"""Sweep benchmark: warm worker-pool fan-out vs cold process-per-config.

Measures what :class:`repro.scenario.SweepRunner` actually buys over
the workflow it replaces — a shell loop that launches one cold Python
process per configuration, each paying interpreter start-up and the
full ``repro`` import bill before a single simulated event runs.  The
runner instead forks warm workers from an already-imported parent, so
the per-configuration overhead is one ``fork()`` plus two small JSON
strings over a pipe.

Both paths execute the byte-identical science: the cold loop feeds
each worker process the same ``(index, spec_json)`` payload the pool
uses, and the record stores the merged report digest from each side —
the checker (``tools/check_bench_trajectory.py``) refuses the record
if they diverge, and the ``fingerprint`` on each digest entry pins
which spec produced it.

On a multi-core host the pool also overlaps the simulations
themselves; on a single-core host (like CI containers) the speedup is
honest start-up amortization only.  The host's CPU count is recorded
in ``generated_with`` so the committed number can be read in context.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.sweep_benchmark \
        --output BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.scenario import SweepReport, SweepRunner
from repro.scenario.sweep import _run_spec_payload

from .scenarios import sweep_spec

__all__ = ["main", "run_cold_sweep", "run_pool_sweep"]

SCHEMA = "bench-sim-core/v1"

#: The one cold worker pays per configuration: rehydrate the payload,
#: run it, print the result — exactly ``_run_spec_payload`` behind a
#: fresh interpreter.
_COLD_WORKER = """\
import json, sys
from repro.scenario.sweep import _run_spec_payload
index, spec_json = json.loads(sys.stdin.read())
index, result_json = _run_spec_payload((index, spec_json))
print(json.dumps([index, result_json]))
"""


def _grid(base, n_seeds: int):
    """The benchmark grid: an ``n_seeds``-way seed sweep of the base."""
    return SweepRunner(base).grid(seeds=range(1, n_seeds + 1))


def run_cold_sweep(base, n_seeds: int) -> dict:
    """Time the pre-kernel workflow: one cold process per point."""
    points = _grid(base, n_seeds)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    started = time.perf_counter()
    runs = []
    for point in points:
        payload = json.dumps([point.index, point.spec.to_json()])
        proc = subprocess.run([sys.executable, "-c", _COLD_WORKER],
                              input=payload, capture_output=True,
                              text=True, env=env, check=True)
        index, result_json = json.loads(proc.stdout)
        runs.append((index, result_json))
    elapsed = time.perf_counter() - started
    report = SweepReport.assemble(base, points, runs)
    return {"elapsed_s": elapsed, "runs": len(points),
            "digest": report.digest()}


def run_pool_sweep(base, n_seeds: int, workers: int) -> dict:
    """Time the kernel's worker pool on the same grid."""
    runner = SweepRunner(base, workers=workers)
    started = time.perf_counter()
    report = runner.run(_grid(base, n_seeds))
    elapsed = time.perf_counter() - started
    return {"elapsed_s": elapsed, "runs": len(report.points),
            "digest": report.digest()}


def _capture(n_seeds: int, workers: int) -> dict:
    """One before/current pair on an ``n_seeds``-way grid."""
    base = sweep_spec()
    cold = run_cold_sweep(base, n_seeds)
    pool = run_pool_sweep(base, n_seeds, workers)
    if cold["digest"] != pool["digest"]:
        raise SystemExit(f"FAIL: cold digest {cold['digest']} != pool "
                         f"digest {pool['digest']}")
    digest = {"sha": pool["digest"], "fingerprint": base.fingerprint()}
    return {
        "before": {"schema": SCHEMA, "mode": "cold-process-per-config",
                   "metrics": {"sweep": cold},
                   "digests": {"sweep": digest}},
        "current": {"schema": SCHEMA, "mode": f"pool-{workers}-workers",
                    "metrics": {"sweep": pool},
                    "digests": {"sweep": digest}},
        "speedup": cold["elapsed_s"] / pool["elapsed_s"],
    }


def main(argv: list[str] | None = None) -> int:
    """Run the sweep benchmark; optionally write the BENCH record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=4,
                        help="grid width for the full capture")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size for the warm sweep")
    parser.add_argument("--output", metavar="PATH",
                        help="write the combined BENCH record here")
    args = parser.parse_args(argv)

    full = _capture(args.seeds, args.workers)
    smoke = _capture(2, args.workers)
    print(f"cold sweep ({args.seeds} points): "
          f"{full['before']['metrics']['sweep']['elapsed_s']:.2f}s")
    print(f"pool sweep ({args.workers} workers): "
          f"{full['current']['metrics']['sweep']['elapsed_s']:.2f}s")
    print(f"speedup: {full['speedup']:.2f}x (digests byte-identical)")

    if args.output:
        record = {
            "schema": SCHEMA,
            "generated_with": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "cpus": os.cpu_count(),
                "note": ("before = cold python process per configuration "
                         "(interpreter + import start-up each run); "
                         "current = SweepRunner forked warm workers on the "
                         "same grid; digests prove identical science"),
            },
            "before": full["before"],
            "current": full["current"],
            "smoke": smoke["current"],
            "speedups": {"sweep": full["speedup"]},
        }
        Path(args.output).write_text(json.dumps(record, indent=2,
                                                sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
