"""Seeded benchmark scenarios over the simulator's hot paths.

Each scenario exposes two entry points:

- ``run_*`` — build and execute the scenario once, returning timing
  metrics (used for the perf trajectory);
- ``digest_*`` — execute the scenario under instrumentation and return
  a determinism digest: a JSON-able record of the *outcome* (event
  trace, statistics, report fields, array hashes) that must stay
  bit-identical across behavior-preserving optimizations.

All randomness derives from :class:`repro.sim.RandomStreams`
substreams of an explicit seed, so every run of a scenario at a given
size is exactly reproducible.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.datacenter import Datacenter
from repro.observability import Observer
from repro.graphproc.csr import CSRGraph, pagerank_csr
from repro.graphproc.graph import Graph, preferential_attachment_graph
from repro.resilience import ChaosExperiment
from repro.scenario import (BurnRuleSpec, CheckpointSpec, ClusterSpec,
                            FailureSpec, HedgeSpec, ObjectiveSpec, RetrySpec,
                            ScenarioRuntime, ScenarioSpec, SLOSpec,
                            TopologySpec, WorkloadSpec, open_arrival_tasks)
from repro.scheduling import ClusterScheduler
from repro.sim import RandomStreams, Simulator
from repro.workload import Task

from .harness import best_of, digest, digest_floats

__all__ = [
    "SIZES",
    "scheduling_spec",
    "chaos_spec",
    "sweep_spec",
    "make_scheduling_tasks",
    "run_scheduling",
    "digest_scheduling",
    "run_event_core",
    "digest_event_core",
    "run_csr_build",
    "digest_csr",
    "run_chaos",
    "digest_chaos",
    "digest_alerts",
]

#: Scenario sizes per harness mode.  ``full`` backs the headline
#: numbers in BENCH_sim_core.json; ``smoke`` is the CI regression
#: check; ``golden`` is small enough for the tier-1 determinism tests.
SIZES = {
    "full": {
        "sched_tasks": 10_000, "sched_machines": 1_000,
        "event_count": 200_000,
        "csr_vertices": 25_000, "csr_degree": 4,
    },
    # Smoke sizes are chosen so every scenario takes a few hundred ms
    # *after* optimization: much smaller and best-of-N wall times get
    # noisy enough to trip the CI tolerance on a quiet regression-free
    # run.
    "smoke": {
        "sched_tasks": 2_500, "sched_machines": 256,
        "event_count": 150_000,
        "csr_vertices": 8_000, "csr_degree": 4,
    },
    "golden": {
        "sched_tasks": 400, "sched_machines": 64,
        "event_count": 10_000,
        "csr_vertices": 1_200, "csr_degree": 3,
    },
}


# ---------------------------------------------------------------------------
# Scheduling pipeline: submission -> queue -> placement -> execution
# ---------------------------------------------------------------------------
def scheduling_spec(n_tasks: int, n_machines: int,
                    seed: int = 0) -> ScenarioSpec:
    """The scheduling benchmark as a declarative scenario spec."""
    return ScenarioSpec(
        name="perf-scheduling",
        seed=seed,
        topology=TopologySpec(
            clusters=(ClusterSpec("perf", n_machines, cores=8, memory=32.0,
                                  machines_per_rack=32),),
            datacenter="perf-dc"),
        workload=WorkloadSpec("open-arrivals", {
            "n_tasks": n_tasks, "load": 0.9, "cores": [1, 8],
            "runtime": [5.0, 195.0], "memory_per_core": 2.0,
            "prefix": "perf", "stream": "perf-workload"}))


def make_scheduling_tasks(n_tasks: int, total_cores: int,
                          seed: int = 0, load: float = 0.9) -> list[Task]:
    """A seeded open-arrival workload targeting ``load`` utilization."""
    rng = RandomStreams(seed).stream("perf-workload")
    return open_arrival_tasks(rng, n_tasks, total_cores, load=load)


def run_scheduling(n_tasks: int, n_machines: int,
                   seed: int = 0) -> dict[str, float]:
    """Time one end-to-end scheduling run; returns flat metrics."""
    runtime = scheduling_spec(n_tasks, n_machines, seed).build()
    sim = runtime.sim
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    runtime.finalize()
    return {
        "elapsed_s": elapsed,
        "events_processed": float(sim.events_processed),
        "events_per_sec": sim.events_processed / elapsed if elapsed else 0.0,
        "tasks_completed": float(len(runtime.scheduler.completed)),
        "sim_time": sim.now,
    }


def _scheduling_outcome(sim: Simulator, datacenter: Datacenter,
                        scheduler: ClusterScheduler,
                        trace: Sequence[float]) -> dict:
    return {
        "statistics": scheduler.statistics(),
        "makespan": scheduler.makespan(),
        "completed": len(scheduler.completed),
        "failed_executions": datacenter.failed_executions,
        "energy_joules": datacenter.total_energy_joules(),
        "mean_utilization": datacenter.mean_utilization(),
        "events_processed": sim.events_processed,
        "sim_time": sim.now,
        "event_trace_len": len(trace),
        "event_trace_sha": digest_floats(trace),
    }


def digest_scheduling(n_tasks: int, n_machines: int, seed: int = 0) -> dict:
    """Run under step-level instrumentation; digest the full outcome.

    The event-time trace pins the simulator's exact event ordering:
    any change to when (or how many) events fire changes the digest.
    """
    runtime: ScenarioRuntime = scheduling_spec(n_tasks, n_machines,
                                               seed).build()
    trace: list[float] = []
    runtime.drive(trace=trace)
    runtime.finalize()
    outcome = _scheduling_outcome(runtime.sim, runtime.datacenter,
                                  runtime.scheduler, trace)
    outcome["sha"] = digest(outcome)
    return outcome


# ---------------------------------------------------------------------------
# Event core: timeout-driven process churn
# ---------------------------------------------------------------------------
def _build_event_core(event_count: int, seed: int = 0) -> Simulator:
    sim = Simulator()
    rng = RandomStreams(seed).stream("perf-events")
    n_processes = 50
    per_process = event_count // n_processes

    def ticker(delays):
        for delay in delays:
            yield sim.timeout(delay)

    for _ in range(n_processes):
        delays = [rng.uniform(0.01, 10.0) for _ in range(per_process)]
        sim.process(ticker(delays), name="perf-ticker")
    return sim


def run_event_core(event_count: int, seed: int = 0) -> dict[str, float]:
    """Time a pure timeout/process workload; the kernel's floor cost."""
    sim = _build_event_core(event_count, seed)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": elapsed,
        "events_processed": float(sim.events_processed),
        "events_per_sec": sim.events_processed / elapsed if elapsed else 0.0,
    }


def digest_event_core(event_count: int, seed: int = 0) -> dict:
    """Step-driven digest of the event core's exact timing sequence."""
    sim = _build_event_core(event_count, seed)
    trace: list[float] = []
    record = trace.append
    while sim.peek() != float("inf"):
        sim.step()
        record(sim.now)
    outcome = {
        "events_processed": sim.events_processed,
        "sim_time": sim.now,
        "event_trace_len": len(trace),
        "event_trace_sha": digest_floats(trace),
    }
    outcome["sha"] = digest(outcome)
    return outcome


# ---------------------------------------------------------------------------
# CSR construction
# ---------------------------------------------------------------------------
def build_csr_graph(n_vertices: int, degree: int, seed: int = 0) -> Graph:
    """A scale-free graph with roughly ``n_vertices * degree`` edges."""
    rng = RandomStreams(seed).stream("perf-graph")
    return preferential_attachment_graph(n_vertices, m=degree, rng=rng)


def run_csr_build(n_vertices: int, degree: int, seed: int = 0,
                  repeat: int = 3,
                  with_reference: bool = True) -> dict[str, float]:
    """Time CSR construction; optionally also the frozen reference loop.

    The reference ratio (``speedup_vs_reference``) is machine-portable:
    both implementations run back to back on the same host.
    """
    graph = build_csr_graph(n_vertices, degree, seed)
    build_elapsed, csr = best_of(lambda: CSRGraph(graph), repeat=repeat)
    metrics = {
        "elapsed_s": build_elapsed,
        "vertices": float(csr.vertex_count),
        "directed_edges": float(csr.directed_edge_count),
        "edges_per_sec": (csr.directed_edge_count / build_elapsed
                          if build_elapsed else 0.0),
    }
    if with_reference:
        from .csr_reference import reference_csr_arrays
        ref_elapsed, _ = best_of(lambda: reference_csr_arrays(graph),
                                 repeat=repeat)
        metrics["reference_elapsed_s"] = ref_elapsed
        metrics["speedup_vs_reference"] = (ref_elapsed / build_elapsed
                                           if build_elapsed else 0.0)
    return metrics


def digest_csr(n_vertices: int, degree: int, seed: int = 0) -> dict:
    """Digest the CSR arrays and a PageRank over them."""
    graph = build_csr_graph(n_vertices, degree, seed)
    csr = CSRGraph(graph)
    ranks, ops = pagerank_csr(csr, iterations=10)
    outcome = {
        "vertices": csr.vertex_count,
        "directed_edges": csr.directed_edge_count,
        "indptr_sha": digest_floats([float(x) for x in csr.indptr]),
        "indices_sha": digest_floats([float(x) for x in csr.indices]),
        "weights_sha": digest_floats([float(x) for x in csr.weights]),
        "pagerank_sha": digest_floats([ranks[v] for v in sorted(ranks)]),
        "edges_scanned": ops.edges_scanned,
    }
    outcome["sha"] = digest(outcome)
    return outcome


# ---------------------------------------------------------------------------
# Chaos experiment: resilience machinery end to end
# ---------------------------------------------------------------------------
def chaos_spec(seed: int = 11, with_slos: bool = False) -> ScenarioSpec:
    """The chaos benchmark as a declarative scenario spec.

    ``with_slos=True`` adds the SLO/burn-rate declarations graded by
    :func:`digest_alerts`.
    """
    slos = None
    if with_slos:
        slos = SLOSpec(
            objectives=(
                ObjectiveSpec("availability", {
                    "name": "exec-success",
                    "good": "datacenter.executions_finished",
                    "bad": "datacenter.executions_interrupted",
                    "target": 0.9}),
                ObjectiveSpec("queue-wait", {
                    "name": "fast-start", "threshold": 50.0,
                    "target": 0.9}),
            ),
            rules=(BurnRuleSpec("fast", long_window=60.0, short_window=15.0,
                                threshold=4.0),
                   BurnRuleSpec("slow", long_window=240.0, short_window=60.0,
                                threshold=2.0)),
            telemetry_interval=5.0)
    return ScenarioSpec(
        name="perf-chaos",
        seed=seed,
        topology=TopologySpec(
            clusters=(ClusterSpec("chaos", 24, cores=4, memory=32.0,
                                  machines_per_rack=6),),
            datacenter="chaos-dc"),
        workload=WorkloadSpec("uniform-tasks", {
            "n_tasks": 160, "runtime": [20.0, 150.0], "cores": [1, 3],
            "submit": [0.0, 80.0], "priority_levels": 3,
            "prefix": "chaos-", "stream": "workload"}),
        failures=FailureSpec("sampled-bursts", {
            "times": [70.0, 180.0, 320.0], "victims": 6,
            "duration": 35.0, "stream": "failures"}),
        retries=RetrySpec(max_attempts=6, base=1.0, cap=60.0,
                          jitter="decorrelated"),
        checkpoints=CheckpointSpec(interval=20.0, overhead=0.5),
        hedging=HedgeSpec(delay_factor=2.5, min_runtime=40.0),
        horizon=600.0, availability_slo=0.85, injection_jitter=3.0,
        slos=slos)


def sweep_spec() -> ScenarioSpec:
    """The base spec for the sweep benchmark (seed x policy grid).

    A mid-size chaos scenario: heavy enough that a sweep has real work
    to parallelize, light enough for CI smoke runs.
    """
    spec = chaos_spec(seed=3)
    return spec.override({"workload.params.n_tasks": 120,
                          "horizon": 400.0})


def run_chaos(seed: int = 11) -> dict[str, float]:
    """Time one chaos experiment (retries, checkpoints, hedges, repairs)."""
    experiment = ChaosExperiment.from_spec(chaos_spec(seed))
    start = time.perf_counter()
    experiment.run()
    elapsed = time.perf_counter() - start
    return {"elapsed_s": elapsed}


def digest_chaos(seed: int = 11) -> dict:
    """Digest the full chaos report — every resilience counter."""
    report = ChaosExperiment.from_spec(chaos_spec(seed)).run()
    outcome = {"summary": report.summary(),
               "max_attempts_observed": report.max_attempts_observed,
               "unrecovered_victims": report.unrecovered_victims,
               "violations": list(report.violations)}
    outcome["sha"] = digest(outcome)
    return outcome


def digest_alerts(seed: int = 11) -> dict:
    """Digest the SLO verdicts and alert log of an observed chaos run.

    The same scenario as :func:`digest_chaos`, re-run with the
    observer armed and SLOs declared: the per-tick burn-rate
    evaluation, every fire/resolve transition, and the final SLO
    report must all be bit-identical for a fixed seed.
    """
    spec = chaos_spec(seed, with_slos=True)
    experiment = ChaosExperiment.from_spec(spec)
    report = experiment.run(observer=Observer())
    outcome = {"slo_report": report.slo_report,
               "alerts": report.alert_log.to_json(),
               "violations": list(report.violations)}
    outcome["sha"] = digest(outcome)
    return outcome
