"""Frozen reference implementation of CSR construction.

This is the original per-edge Python loop that
:class:`repro.graphproc.csr.CSRGraph` shipped with, kept verbatim so
the harness can measure the vectorized implementation's speedup on the
*same machine* in the *same run* — a ratio that is meaningful on any
host, unlike absolute wall-clock numbers.  Do not "optimize" this file;
its slowness is the baseline.
"""

from __future__ import annotations

import numpy

from repro.graphproc.graph import Graph

__all__ = ["reference_csr_arrays"]


def reference_csr_arrays(
        graph: Graph) -> tuple[numpy.ndarray, numpy.ndarray, numpy.ndarray]:
    """Build (indptr, indices, weights) with the original per-edge loop."""
    vertices = list(graph.vertices())
    if not vertices:
        raise ValueError("empty graph")
    index_of = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    degrees = numpy.zeros(n + 1, dtype=numpy.int64)
    for v in vertices:
        degrees[index_of[v] + 1] = graph.degree(v)
    indptr = numpy.cumsum(degrees)
    m = int(indptr[-1])
    indices = numpy.empty(m, dtype=numpy.int64)
    weights = numpy.empty(m, dtype=numpy.float64)
    cursor = indptr[:-1].copy()
    for v in vertices:
        i = index_of[v]
        for u, w in graph.neighbors(v).items():
            position = cursor[i]
            indices[position] = index_of[u]
            weights[position] = w
            cursor[i] += 1
    return indptr, indices, weights
