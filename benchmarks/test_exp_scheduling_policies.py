"""E1 — the dual-problem scheduling study (C7, P4).

Sweeps allocation policies (strict FCFS, FCFS+EASY backfilling, SJF,
and portfolio selection) on the same bursty bag-of-tasks trace, and
provisioning policies (static, on-demand, reserved+on-demand) for
cost.  Reproduction contract: backfilling beats strict FCFS on
makespan; SJF beats FCFS on mean slowdown; the portfolio is never
worse than the worst fixed policy; on-demand provisioning is cheaper
than static while completing the same work.
"""

import random

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.reporting import render_table
from repro.scheduling import (
    FCFS,
    SJF,
    ClusterScheduler,
    OnDemandProvisioning,
    PortfolioScheduler,
    Provisioner,
    ReservedPlusOnDemand,
    StaticProvisioning,
)
from repro.sim import Simulator
from repro.workload import MMPPArrivals, TaskProfile, VicissitudeMix, WorkloadGenerator


def bursty_jobs(seed=1, horizon=600.0):
    generator = WorkloadGenerator(
        MMPPArrivals(quiet_rate=0.05, burst_rate=1.0, quiet_duration=60.0,
                     burst_duration=15.0, rng=random.Random(seed)),
        mix=VicissitudeMix.steady(
            (TaskProfile("mix", runtime_mean=20.0, runtime_sigma=1.0,
                         cores_choices=(1, 2, 4)),)),
        tasks_per_job=3.0,
        rng=random.Random(seed + 1))
    return generator.generate(horizon)


def run_allocation(policy_name: str, jobs) -> dict[str, float]:
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 4, MachineSpec(cores=8, memory=1e9))])
    kwargs = {}
    if policy_name == "fcfs-strict":
        kwargs = dict(queue_policy=FCFS(), strict_head=True)
    elif policy_name == "fcfs-backfill":
        kwargs = dict(queue_policy=FCFS(), backfilling=True)
    elif policy_name == "sjf":
        kwargs = dict(queue_policy=SJF())
    scheduler = ClusterScheduler(sim, dc, **kwargs)
    portfolio = None
    if policy_name == "portfolio":
        portfolio = PortfolioScheduler(sim, scheduler, [FCFS(), SJF()],
                                       interval=30.0)

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim), name="feeder"))
    sim.run(until=20000.0)
    if portfolio is not None:
        portfolio.stop()
    stats = scheduler.statistics()
    expected = sum(len(j) for j in jobs)
    assert stats["completed"] == expected, (policy_name, stats["completed"])
    return {"slowdown": stats["slowdown_mean"],
            "wait_p95": stats["wait_p95"],
            "makespan": scheduler.makespan()}


def run_provisioning(policy, jobs) -> dict[str, float]:
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 8, MachineSpec(cores=8, memory=1e9, cost_per_hour=1.0))])
    scheduler = ClusterScheduler(sim, dc, queue_policy=SJF())
    provisioner = Provisioner(sim, dc, scheduler, policy, interval=10.0,
                              reserved_machines=getattr(policy, "reserved",
                                                        0))

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim), name="feeder"))
    sim.run(until=3600.0)
    provisioner.stop()
    expected = sum(len(j) for j in jobs)
    assert len(scheduler.completed) == expected
    return {"cost": provisioner.total_cost(),
            "mean_leased": provisioner.mean_leased(),
            "slowdown": scheduler.statistics()["slowdown_mean"]}


def build_e1():
    jobs_fn = lambda: bursty_jobs(seed=7)
    allocation = {name: run_allocation(name, jobs_fn())
                  for name in ("fcfs-strict", "fcfs-backfill", "sjf",
                               "portfolio")}
    provisioning = {
        "static-8": run_provisioning(StaticProvisioning(8), jobs_fn()),
        "on-demand": run_provisioning(
            OnDemandProvisioning(min_machines=1, headroom=0.1), jobs_fn()),
        "reserved+od": run_provisioning(
            ReservedPlusOnDemand(reserved=3), jobs_fn()),
    }
    return allocation, provisioning


def test_exp_scheduling_policies(benchmark, show):
    allocation, provisioning = benchmark.pedantic(build_e1, rounds=1,
                                                  iterations=1)
    # --- allocation contract ---
    assert (allocation["fcfs-backfill"]["makespan"]
            <= allocation["fcfs-strict"]["makespan"])
    assert (allocation["sjf"]["slowdown"]
            < allocation["fcfs-strict"]["slowdown"])
    worst = max(a["slowdown"] for a in allocation.values())
    assert allocation["portfolio"]["slowdown"] <= worst
    # --- provisioning contract ---
    assert provisioning["on-demand"]["cost"] < provisioning["static-8"]["cost"]
    assert (provisioning["on-demand"]["mean_leased"]
            < provisioning["static-8"]["mean_leased"])

    rows = [(name, f"{m['slowdown']:.2f}", f"{m['wait_p95']:.1f}",
             f"{m['makespan']:.0f}") for name, m in allocation.items()]
    prov_rows = [(name, f"{m['cost']:.3f}", f"{m['mean_leased']:.2f}",
                  f"{m['slowdown']:.2f}")
                 for name, m in provisioning.items()]
    show(render_table(["Allocation policy", "Mean slowdown", "p95 wait [s]",
                       "Makespan [s]"], rows,
                      title="E1a. ALLOCATION POLICIES ON A BURSTY TRACE.")
         + "\n\n"
         + render_table(["Provisioning policy", "Cost [$]",
                         "Mean machines leased", "Mean slowdown"],
                        prov_rows,
                        title="E1b. PROVISIONING POLICIES (THE DUAL "
                              "PROBLEM'S OTHER HALF)."))
