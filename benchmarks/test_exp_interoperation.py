"""E9 — interoperation of assemblies (C10): delegation, wide-area
analytics, and computation on protected data.

Three C10 capabilities on one federated deployment: (a) service
delegation absorbs a local overload; (b) wide-area analytics sweeps
the aggregation/degradation frontier of [125]; (c) the secure sum of
[129] aggregates site loads without exposing any site's value.
Reproduction contract: delegation serves everything FCFS-locally could
not; aggregation is exact at a fraction of full-transfer traffic;
sampling error shrinks as traffic grows; the secure total is exact
while every published share is masked.
"""

import random

from repro.datacenter import (
    Datacenter,
    Federation,
    MachineSpec,
    SiteData,
    WideAreaAnalytics,
    homogeneous_cluster,
    least_loaded_offload,
    secure_sum,
)
from repro.reporting import render_kv, render_table
from repro.sim import Simulator
from repro.workload import Task, TaskState


def run_delegation():
    sim = Simulator()
    sites = [Datacenter(sim, [homogeneous_cluster(
        f"{name}-c", 2, MachineSpec(cores=4, memory=1e9))], name=name)
        for name in ("eu", "us", "ap")]
    federation = Federation(
        sim, sites,
        latency={("eu", "us"): 0.1, ("eu", "ap"): 0.25, ("us", "ap"): 0.18},
        policy=least_loaded_offload(threshold=0.6))
    tasks = [Task(runtime=30.0, cores=4, name=f"t{i}") for i in range(18)]

    def feeder(sim):
        for task in tasks:
            federation.submit(task, "eu")
            yield sim.timeout(0.5)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=5000.0)
    assert all(t.state is TaskState.FINISHED for t in tasks)
    per_site = {dc.name: len(dc.completed_tasks) for dc in sites}
    return federation, per_site


def build_e9():
    federation, per_site = run_delegation()

    rng = random.Random(13)
    sites_data = [SiteData(name, tuple(rng.gauss(100.0, 15.0)
                                       for _ in range(500)))
                  for name in ("eu", "us", "ap")]
    analytics = WideAreaAnalytics(sites_data, rng=random.Random(14))
    frontier = analytics.pareto_frontier(sample_fractions=(0.02, 0.1, 0.5))

    site_loads = {name: float(count) for name, count in per_site.items()}
    total, published = secure_sum(site_loads, rng=random.Random(15))
    return federation, per_site, frontier, site_loads, total, published


def test_exp_interoperation(benchmark, show):
    (federation, per_site, frontier, site_loads, total,
     published) = benchmark.pedantic(build_e9, rounds=1, iterations=1)
    # (a) Delegation happened and work spread beyond the home site.
    assert federation.offloaded_tasks > 0
    assert sum(per_site.values()) == 18
    assert per_site["us"] + per_site["ap"] == federation.offloaded_tasks
    # (b) Aggregation exact & cheapest; full exact & costliest; sampling
    # error non-increasing with traffic.
    aggregate = next(r for r in frontier if r.strategy == "aggregate")
    full = next(r for r in frontier if r.strategy == "full")
    samples = [r for r in frontier if r.strategy == "sample"]
    assert aggregate.relative_error < 1e-9
    assert full.relative_error == 0.0
    assert aggregate.bytes_transferred < min(
        r.bytes_transferred for r in samples)
    cheap, *_, rich = sorted(samples, key=lambda r: r.bytes_transferred)
    assert rich.relative_error <= cheap.relative_error + 0.02
    # (c) Secure sum exact up to mask-cancellation rounding; no share
    # reveals a site's load.
    assert abs(total - sum(site_loads.values())) < 1e-6
    for name, load in site_loads.items():
        assert abs(published[name] - load) > 1.0

    frontier_rows = [(r.strategy, r.bytes_transferred,
                      f"{r.relative_error:.4f}") for r in frontier]
    show(render_kv([
        ("tasks served per site",
         ", ".join(f"{k}={v}" for k, v in sorted(per_site.items()))),
        ("offloaded", federation.offloaded_tasks),
        ("wide-area seconds paid",
         round(federation.wide_area_seconds, 2)),
        ("secure-sum total (exact)", total),
    ], title="E9a. SERVICE DELEGATION + SECURE AGGREGATION (C10).")
         + "\n\n"
         + render_table(["Strategy", "Bytes", "Relative error"],
                        frontier_rows,
                        title="E9b. WIDE-AREA ANALYTICS: THE "
                              "AGGREGATION/DEGRADATION FRONTIER [125]."))
