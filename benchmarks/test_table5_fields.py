"""T5 — regenerate Table 5: comparison of emerging fields (§7.3)."""

from repro.core import FieldRegistry
from repro.reporting import render_table


def build_table5():
    registry = FieldRegistry()
    # The paper's stated conclusion from the table must be recomputable.
    assert registry.closest_to_mcs().name == "Systems Biology"
    return registry.table_rows()


def test_table5_fields(benchmark, show):
    rows = benchmark(build_table5)
    assert len(rows) == 6
    mcs = rows[-1]
    assert mcs[0] == "MCS (this work)"
    assert mcs[1] == "Systems complexity"
    assert mcs[2] == "Distributed Systems"
    assert mcs[3] == "DES"          # Design + Engineering + Scientific
    assert mcs[5] == "ADHSP"        # the full methodology set
    show(render_table(
        ["Field (Decade)", "Crisis", "Continues", "Objectives", "Object",
         "Methodology", "Character"],
        rows, title="TABLE 5. COMPARISON OF FIELDS (MCS ROW ENVISIONED)."))
