"""T4 — regenerate Table 4 by *executing* all six use cases (§6).

Each Table 4 row maps to a scenario package; this benchmark runs a
small instance of every scenario end-to-end and reports one headline
metric per row — turning the paper's use-case list into a live
integration demonstration.
"""

import random

from repro.banking import ClearingSystem, Payment, edf_order
from repro.core import UseCaseRegistry
from repro.datacenter import Datacenter, heterogeneous_cluster
from repro.faas import (
    CompositionEngine,
    FaaSPlatform,
    FunctionSpec,
    parallel,
    sequence,
    step,
)
from repro.gaming import CloudProvisioner, VirtualWorld, diurnal_player_curve
from repro.graphproc import GraphalyticsHarness, default_workload
from repro.reporting import render_table
from repro.scheduling import ClusterScheduler, FastestFit, WorkflowEngine
from repro.sim import Simulator
from repro.workload import montage_workflow


def run_datacenter_management() -> float:
    """§6.1: schedule a workflow burst on a heterogeneous cluster."""
    sim = Simulator()
    dc = Datacenter(sim, [heterogeneous_cluster("dc", n_cpu=6, n_gpu=2)])
    scheduler = ClusterScheduler(sim, dc, placement_policy=FastestFit(),
                                 backfilling=True)
    engine = WorkflowEngine(sim, scheduler)
    for i in range(4):
        engine.submit(montage_workflow(width=6, rng=random.Random(i),
                                       submit_time=0.0))
    sim.run(until=10000.0)
    assert scheduler.statistics()["completed"] == 4 * (6 + 5 + 1 + 6 + 1)
    return dc.mean_utilization()


def run_serverless() -> float:
    """§6.5: the image-processing composition on the FaaS platform."""
    sim = Simulator()
    platform = FaaSPlatform(sim, concurrency=16)
    for name in ("fetch", "translate", "resize", "store"):
        platform.deploy(FunctionSpec(name, mean_runtime=0.2,
                                     cold_start=0.4))
    engine = CompositionEngine(sim, platform)
    pipeline = sequence(step("fetch"),
                        parallel(step("translate"), step("resize")),
                        step("store"))
    for _ in range(20):
        result = sim.run(until=engine.run(pipeline))
    assert len(engine.completed) == 20
    return platform.cold_start_fraction()


def run_graph_processing() -> float:
    """§6.6: one Graphalytics cell on the native engine."""
    harness = GraphalyticsHarness(default_workload(scale=150, seed=4))
    result = harness.run_one("native-engine", "pr", "scale-free")
    assert result.runtime > 0
    return result.evps


def run_future_science() -> float:
    """§6.2: an e-Science Montage workflow on the datacenter."""
    sim = Simulator()
    dc = Datacenter(sim, [heterogeneous_cluster("sci", n_cpu=4, n_gpu=1)])
    scheduler = ClusterScheduler(sim, dc)
    engine = WorkflowEngine(sim, scheduler)
    workflow = montage_workflow(width=8, rng=random.Random(9))
    done = engine.submit(workflow)
    sim.run(until=done)
    assert workflow.is_finished
    return workflow.makespan


def run_online_gaming() -> float:
    """§6.3: a diurnal day on elastic cloud hosting."""
    sim = Simulator()
    world = VirtualWorld(sim, n_zones=4, players_per_server=100)
    cloud = CloudProvisioner(world, sim)
    players = diurnal_player_curve(2000, period=86400.0)

    def day(sim):
        for hour in range(24):
            world.set_population(players(hour * 3600.0),
                                 rng=random.Random(hour))
            cloud.rebalance()
            yield sim.timeout(3600.0)

    sim.run(until=sim.process(day(sim)))
    qos = world.qos()
    assert qos > 0.95  # elastic hosting keeps the world seamless
    return qos


def run_future_banking() -> float:
    """§6.4: PSD2 deadline clearing under EDF."""
    sim = Simulator()
    clearing = ClearingSystem(sim, capacity=4, service_time=0.5,
                              order=edf_order)
    rng = random.Random(11)
    for i in range(100):
        submit = i * 0.1
        payment = Payment(amount=rng.uniform(1, 500), submit_time=submit,
                          deadline=submit + rng.uniform(2.0, 10.0))

        def submit_later(sim, clearing=clearing, payment=payment,
                         delay=submit):
            yield sim.timeout(delay)
            clearing.submit(payment)

        sim.process(submit_later(sim))
    sim.run(until=60.0)
    clearing.stop()
    return clearing.deadline_compliance()


SCENARIOS = {
    "§6.1": ("mean datacenter utilization", run_datacenter_management),
    "§6.5": ("cold-start fraction", run_serverless),
    "§6.6": ("EVPS (native engine)", run_graph_processing),
    "§6.2": ("Montage makespan [s]", run_future_science),
    "§6.3": ("lag-free player-time QoS", run_online_gaming),
    "§6.4": ("PSD2 deadline compliance", run_future_banking),
}


def build_table4():
    rows = []
    for use_case in UseCaseRegistry():
        metric_name, scenario = SCENARIOS[use_case.location]
        value = scenario()
        rows.append((use_case.location, use_case.description,
                     use_case.key_aspects, f"{metric_name} = {value:.3g}"))
    return rows


def test_table4_usecases(benchmark, show):
    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    assert len(rows) == 6
    show(render_table(
        ["Loc.", "Description", "Key aspects", "Executed headline metric"],
        rows, title="TABLE 4. SELECTED USE-CASES FOR MCS (EXECUTED)."))
