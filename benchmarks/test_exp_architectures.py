"""E10 — comparing RM architectures, DGSim-style ([131], C7/§6.1).

Replays the same bursty trace under three resource-management
architectures with equal total capacity: centralized (global
knowledge), hierarchical (least-loaded meta-scheduling), and
decentralized (uncoordinated random routing).  Reproduction contract
(the shape of [131]): scheduling knowledge orders performance —
centralized <= hierarchical < decentralized mean slowdown — and the
decentralized deployment shows the largest load imbalance pressure.
"""

import random

from repro.datacenter import MachineSpec
from repro.reporting import render_table
from repro.scheduling import run_architecture
from repro.workload import MMPPArrivals, TaskProfile, VicissitudeMix, WorkloadGenerator


def bursty_trace(seed: int):
    generator = WorkloadGenerator(
        MMPPArrivals(quiet_rate=0.08, burst_rate=1.2, quiet_duration=50.0,
                     burst_duration=15.0, rng=random.Random(seed)),
        mix=VicissitudeMix.steady(
            (TaskProfile("mix", runtime_mean=18.0, runtime_sigma=0.9,
                         cores_choices=(1, 2, 4)),)),
        tasks_per_job=3.0, rng=random.Random(seed + 1))
    return generator.generate(horizon=400.0)


def build_e10():
    results = {}
    for architecture in ("centralized", "hierarchical", "decentralized"):
        stats = run_architecture(
            architecture, bursty_trace(seed=17), n_sites=4,
            machines_per_site=2, spec=MachineSpec(cores=8, memory=1e9),
            seed=18)
        results[architecture] = stats
    return results


def test_exp_architectures(benchmark, show):
    results = benchmark.pedantic(build_e10, rounds=1, iterations=1)
    centralized = results["centralized"]["slowdown_mean"]
    hierarchical = results["hierarchical"]["slowdown_mean"]
    decentralized = results["decentralized"]["slowdown_mean"]
    # Contract: knowledge orders performance (small tolerance on the
    # centralized/hierarchical boundary — aggregation is nearly free
    # when sites are symmetric).
    assert centralized <= hierarchical * 1.1
    assert hierarchical < decentralized
    completed = {m["completed"] for m in results.values()}
    assert len(completed) == 1  # every architecture served all work
    rows = [(name, f"{m['slowdown_mean']:.2f}", f"{m['slowdown_p95']:.2f}",
             f"{m['wait_mean']:.1f}")
            for name, m in results.items()]
    show(render_table(
        ["Architecture", "Mean slowdown", "p95 slowdown", "Mean wait [s]"],
        rows,
        title="E10. RM ARCHITECTURES ON ONE BURSTY TRACE "
              "(DGSIM-STYLE [131], EQUAL TOTAL CAPACITY)."))
