"""E5 — Darwinian vs non-Darwinian ecosystem evolution (§3.2).

Runs the replicator-dynamics model in three regimes — purely Darwinian,
non-Darwinian without lock-in, and non-Darwinian with soft lock-in —
across several seeds.  Reproduction contract: Darwinian evolution
improves quality incrementally and concentrates the market; radical
recombination reaches higher best-quality; soft lock-in produces the
paper's signature anomaly, inferior-technology market leaders.
"""

import random

from repro.evolution import EvolutionModel
from repro.reporting import render_table

SEEDS = (1, 2, 3, 4, 5)
GENERATIONS = 80


def run_regime(radical: float, lock_in: float) -> dict[str, float]:
    final_best = []
    final_mean = []
    concentration_gain = []
    lock_ins = []
    for seed in SEEDS:
        model = EvolutionModel(n_initial=8, radical_probability=radical,
                               lock_in_strength=lock_in,
                               rng=random.Random(seed))
        trace = model.run(generations=GENERATIONS)
        final_best.append(trace.best_quality[-1])
        final_mean.append(trace.mean_quality[-1])
        concentration_gain.append(trace.concentration[-1]
                                  - trace.concentration[0])
        lock_ins.append(len(trace.lock_in_events))
    n = len(SEEDS)
    return {
        "best_quality": sum(final_best) / n,
        "mean_quality": sum(final_mean) / n,
        "concentration_gain": sum(concentration_gain) / n,
        "lock_in_events": sum(lock_ins) / n,
    }


def build_e5():
    return {
        "darwinian": run_regime(radical=0.0, lock_in=0.0),
        "non-darwinian": run_regime(radical=0.3, lock_in=0.0),
        "non-darwinian+lock-in": run_regime(radical=0.3, lock_in=2.0),
    }


def test_exp_evolution(benchmark, show):
    results = benchmark.pedantic(build_e5, rounds=1, iterations=1)
    darwinian = results["darwinian"]
    radical = results["non-darwinian"]
    locked = results["non-darwinian+lock-in"]
    # Contract: Darwinian selection concentrates the market.
    assert darwinian["concentration_gain"] > 0.0
    # Contract: radical recombination reaches higher peaks.
    assert radical["best_quality"] > darwinian["best_quality"]
    # Contract: soft lock-in manufactures inferior market leaders.
    assert locked["lock_in_events"] > radical["lock_in_events"]
    assert darwinian["lock_in_events"] <= radical["lock_in_events"] + 1
    rows = [(regime,
             f"{m['best_quality']:.2f}", f"{m['mean_quality']:.2f}",
             f"{m['concentration_gain']:+.3f}",
             f"{m['lock_in_events']:.1f}")
            for regime, m in results.items()]
    show(render_table(
        ["Regime", "Best quality", "Mean quality",
         "Market concentration gain (HHI)", "Lock-in events / run"],
        rows,
        title=f"E5. EVOLUTION REGIMES (MEANS OVER {len(SEEDS)} SEEDS, "
              f"{GENERATIONS} GENERATIONS)."))
