"""E3 — correlated failures propagate (§2.2 problem 2; [26], [27], [28]).

Compares space-correlated failure bursts against independent
(time-correlated, single-machine) failures with comparable total
machine-downtime, running the same workload with retry-based recovery.
Reproduction contract: correlated bursts produce (a) a higher
correlation index, (b) a higher peak of concurrent failures — the
quantity replication must survive — and (c) more task casualties, at
similar fleet availability.
"""

import random

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.failures import (
    FailureInjector,
    SpaceCorrelatedModel,
    TimeCorrelatedModel,
    failure_correlation_index,
    fleet_availability,
    mtbf_mttr,
    peak_concurrent_failures,
)
from repro.reporting import render_table
from repro.scheduling import ClusterScheduler
from repro.selfaware import RecoveryPlanner
from repro.sim import Simulator
from repro.workload import PoissonArrivals, TaskProfile, VicissitudeMix, WorkloadGenerator


HORIZON = 2000.0
N_MACHINES = 32


def make_events(kind: str, seed: int):
    machines = [f"c-m{i}" for i in range(N_MACHINES)]
    racks = [machines[i:i + 8] for i in range(0, N_MACHINES, 8)]
    if kind == "space-correlated":
        model = SpaceCorrelatedModel(burst_rate=0.004, group_alpha=1.0,
                                     max_group=8, repair_median=120.0,
                                     rng=random.Random(seed))
        return model.generate(HORIZON, racks)
    model = TimeCorrelatedModel(base_rate=0.012, amplitude=0.8,
                                period=500.0, repair_median=120.0,
                                rng=random.Random(seed))
    return model.generate(HORIZON, machines)


def run_with_failures(kind: str, seed: int = 2) -> dict[str, float]:
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", N_MACHINES, MachineSpec(cores=4, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc)
    planner = RecoveryPlanner(scheduler, max_retries=10)
    events = make_events(kind, seed)
    injector = FailureInjector(sim, dc, events)
    generator = WorkloadGenerator(
        PoissonArrivals(0.2, rng=random.Random(seed + 1)),
        mix=VicissitudeMix.steady(
            (TaskProfile("w", runtime_mean=30.0, runtime_sigma=0.5,
                         cores_choices=(2,)),)),
        tasks_per_job=2.0, rng=random.Random(seed + 2))
    jobs = generator.generate(HORIZON * 0.8)

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim), name="feeder"))
    sim.run(until=HORIZON * 5)
    expected = sum(len(j) for j in jobs)
    assert len(scheduler.completed) == expected, (kind,
                                                  len(scheduler.completed))
    mtbf, mttr = mtbf_mttr(events, HORIZON)
    # Chaos metrics: useful work delivered, work destroyed by the
    # failures, and how long each burst's victims took to recover.
    goodput = sum(t.runtime * t.cores for t in scheduler.completed)
    recovery_times = []
    for when, _, victims in injector.event_log:
        finishes = [v.finish_time for v in victims
                    if v.finish_time is not None]
        if finishes:
            recovery_times.append(max(finishes) - when)
    return {
        "bursts": float(len(events)),
        "machine_failures": float(sum(len(e.machine_names)
                                      for e in events)),
        "correlation": failure_correlation_index(events),
        "peak_concurrent": float(peak_concurrent_failures(events)),
        "availability": fleet_availability(injector.downtime_intervals(),
                                           HORIZON),
        "victim_tasks": float(injector.victim_tasks),
        "retries": float(planner.total_retries),
        "mtbf": mtbf,
        "mttr": mttr,
        "goodput_core_seconds": goodput,
        "wasted_core_seconds": dc.wasted_core_seconds,
        "wasted_fraction": dc.wasted_core_seconds
        / (goodput + dc.wasted_core_seconds),
        "mean_recovery_time": (sum(recovery_times) / len(recovery_times)
                               if recovery_times else 0.0),
        "max_recovery_time": max(recovery_times, default=0.0),
    }


def build_e3():
    return {kind: run_with_failures(kind)
            for kind in ("space-correlated", "independent")}


def test_exp_failures(benchmark, show):
    results = benchmark.pedantic(build_e3, rounds=1, iterations=1)
    space = results["space-correlated"]
    independent = results["independent"]
    # Contract (a): bursts are correlated, singles are not.
    assert space["correlation"] > 0.3
    assert independent["correlation"] == 0.0
    # Contract (b): the replication-planning peak is higher under
    # correlated failures.
    assert space["peak_concurrent"] > independent["peak_concurrent"]
    # Contract (c): fleet availability stays comparable (within a few
    # percent) while the correlated case is operationally worse.
    assert abs(space["availability"] - independent["availability"]) < 0.2
    # Chaos metrics are populated: every run with victims wastes some
    # work and takes nonzero time to recover from its bursts.
    for metrics in results.values():
        assert metrics["goodput_core_seconds"] > 0.0
        if metrics["victim_tasks"] > 0:
            assert metrics["wasted_core_seconds"] > 0.0
            assert metrics["mean_recovery_time"] > 0.0
        assert 0.0 <= metrics["wasted_fraction"] < 1.0
    rows = [(kind,
             f"{m['machine_failures']:.0f}", f"{m['correlation']:.2f}",
             f"{m['peak_concurrent']:.0f}", f"{m['availability']:.4f}",
             f"{m['victim_tasks']:.0f}", f"{m['retries']:.0f}",
             f"{m['goodput_core_seconds']:.0f}",
             f"{m['wasted_core_seconds']:.0f}",
             f"{m['mean_recovery_time']:.0f}")
            for kind, m in results.items()]
    show(render_table(
        ["Failure model", "Machine failures", "Correlation index",
         "Peak concurrent", "Fleet availability", "Victim tasks",
         "Retries", "Goodput (core-s)", "Wasted (core-s)",
         "Mean recovery (s)"],
        rows,
        title="E3. SPACE-CORRELATED [26] VS INDEPENDENT [27] FAILURES."))
