"""E11 — the representation corner of the P-A-D triangle, for real.

Unlike the modeled platform comparison (E4), this benchmark measures
*actual wall-clock* performance of two implementations in this
repository: PageRank on dict-adjacency vs on vectorized CSR.
Reproduction contract: identical results, CSR faster — the platform
corner of Varbanescu's P-A-D triangle ([45], §3.2 footnote)
demonstrated with real code rather than a cost model.
"""

import random

import pytest

from repro.graphproc import pagerank, random_graph
from repro.graphproc.csr import CSRGraph, pagerank_csr

GRAPH = random_graph(2000, p=0.005, rng=random.Random(11))
CSR = CSRGraph(GRAPH)
ITERATIONS = 10


def test_pagerank_dict_representation(benchmark):
    ranks, _ = benchmark(pagerank, GRAPH, 0.85, ITERATIONS)
    assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)


def test_pagerank_csr_representation(benchmark, show):
    ranks, _ = benchmark(pagerank_csr, CSR, 0.85, ITERATIONS)
    assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)
    # Equivalence with the dict implementation on the same graph.
    expected, _ = pagerank(GRAPH, 0.85, ITERATIONS)
    for vertex, value in expected.items():
        assert ranks[vertex] == pytest.approx(value, abs=1e-10)
    show("E11. PageRank on 2000 vertices, 10 iterations: compare the "
         "two rows above\n(dict vs CSR) in the pytest-benchmark table — "
         "identical results, CSR faster.")
