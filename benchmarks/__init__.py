"""Benchmarks package: paper-reproduction benches and the perf harness."""
