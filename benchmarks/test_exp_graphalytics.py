"""E4 — the Graphalytics cross-platform study ([42], [45], §6.6).

Runs the full platform x algorithm x dataset matrix, the strong- and
weak-scaling curves, and the robustness (variability) analysis.
Reproduction contract (the shape of [45]'s findings): the native
engine wins everywhere, the MapReduce engine loses everywhere, strong
scaling is monotone but sub-linear (barriers), and the disk-based
engine's *relative* penalty is largest on small inputs (job overhead
dominates — the P-A-D interaction).
"""

from repro.graphproc import GraphalyticsHarness, default_workload
from repro.reporting import render_series, render_table


def build_e4():
    harness = GraphalyticsHarness(default_workload(scale=250, seed=7))
    suite = harness.run_suite()
    ranking = harness.rank_platforms(suite)
    strong = harness.strong_scaling("dataflow-engine", "pr", "uniform",
                                    worker_counts=(1, 2, 4, 8, 16))
    weak = harness.weak_scaling("dataflow-engine", "bfs", base_scale=100,
                                worker_counts=(1, 2, 4))
    variability = {
        platform: harness.variability(platform, "bfs", repetitions=8,
                                      scale=150)
        for platform in ("mapreduce-engine", "native-engine")}

    # Overhead amortization: with the iteration count fixed (PageRank),
    # growing the dataset amortizes each platform's fixed job overhead
    # into throughput (EVPS); the high-overhead disk engine gains the
    # most, relatively — the P-A-D interaction of [45].
    small = GraphalyticsHarness(default_workload(scale=60, seed=8))
    large = GraphalyticsHarness(default_workload(scale=4000, seed=8))
    gains = {}
    for platform in ("mapreduce-engine", "native-engine"):
        evps_small = small.run_one(platform, "pr", "uniform").evps
        evps_large = large.run_one(platform, "pr", "uniform").evps
        gains[platform] = evps_large / evps_small
    return suite, ranking, strong, weak, variability, gains


def test_exp_graphalytics(benchmark, show):
    (suite, ranking, strong, weak, variability,
     gains) = benchmark.pedantic(build_e4, rounds=1, iterations=1)
    assert len(suite) == 3 * 6 * 3
    # Contract: stable platform ordering.
    assert [name for name, _ in ranking] == [
        "native-engine", "dataflow-engine", "mapreduce-engine"]
    # Contract: strong scaling monotone, sub-linear at 16 workers.
    speedups = [s for _, s in strong]
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert 1.0 < speedups[-1] < 16.0
    # Contract: both platforms gain throughput at scale (overhead
    # amortizes), and the high-overhead disk engine gains the most.
    assert gains["mapreduce-engine"] > gains["native-engine"] > 1.0
    # Contract: runtime variability exists and is reported.
    assert all(v["cv"] >= 0.0 for v in variability.values())

    rank_rows = [(name, f"{gmean:.3f}") for name, gmean in ranking]
    var_rows = [(platform, f"{v['cv']:.3f}", f"{v['p95_over_median']:.2f}")
                for platform, v in variability.items()]
    show(render_table(["Platform", "Geo-mean runtime [s]"], rank_rows,
                      title="E4a. PLATFORM RANKING OVER THE FULL "
                            "GRAPHALYTICS MATRIX (54 CELLS).")
         + "\n\n"
         + render_series(strong,
                         title="E4b. STRONG SCALING, PAGERANK ON "
                               "DATAFLOW ENGINE (workers -> speedup).")
         + "\n\n"
         + render_series(weak,
                         title="E4c. WEAK SCALING EFFICIENCY, BFS "
                               "(workers -> efficiency).")
         + "\n\n"
         + render_table(["Platform", "CV", "p95/median"], var_rows,
                        title="E4d. ROBUSTNESS: RUNTIME VARIABILITY.")
         + f"\n\nOverhead amortization (EVPS gain, 60 -> 4000 vertices): "
           f"mapreduce {gains['mapreduce-engine']:.0f}x, "
           f"native {gains['native-engine']:.0f}x.")
