"""T2 — regenerate Table 2: the 10 key principles of MCS (§4)."""

from repro.core import PrincipleRegistry
from repro.reporting import render_table


def build_table2():
    registry = PrincipleRegistry()
    # Exercise the P9 corollary: a revision cycle must round-trip.
    revised = registry.revise()
    assert revised.revision == registry.revision + 1
    return registry.table_rows()


def test_table2_principles(benchmark, show):
    rows = benchmark(build_table2)
    assert len(rows) == 10
    # The paper's grouping: P1-P5 Systems, P6-P7 Peopleware, P8-P10
    # Methodology.
    assert [r[0] for r in rows] == (["Systems"] * 5 + ["Peopleware"] * 2
                                    + ["Methodology"] * 3)
    assert rows[0][2] == "The Age of Ecosystems"
    assert rows[4][2] == "super-distributed"
    assert rows[9][2] == "ethics and transparency"
    show(render_table(["Type", "Index", "Key aspects"], rows,
                      title="TABLE 2. THE 10 KEY PRINCIPLES OF MCS."))
