"""T1 — regenerate Table 1: An overview of MCS (§3.1)."""

from repro.core import MCSOverview
from repro.reporting import render_table


def build_table1() -> list[tuple[str, str, str]]:
    return MCSOverview().table_rows()


def test_table1_overview(benchmark, show):
    rows = benchmark(build_table1)
    # Reproduction contract: all four question groups, in paper order,
    # with the paper's aspect rows.
    questions = [row[0] for row in rows]
    assert questions[0] == "Who?"
    assert set(questions) == {"Who?", "What?", "How?", "Related"}
    aspects = [row[1] for row in rows]
    for expected in ("Stakeholders", "Central Paradigm", "Focus",
                     "Concerns", "Design", "Quantitative",
                     "Exper. & Sim.", "Empirical", "Instrumentation",
                     "Formal models", "Computer science",
                     "Systems/complexity", "Problem solving"):
        assert expected in aspects
    show(render_table(["Question", "Aspect", "Content"], rows,
                      title="TABLE 1. AN OVERVIEW OF MCS."))
