"""E7 — vicissitude: arbitrary workload-mix changes ([22], C3).

"V for Vicissitude": the challenge dimensions of a workload become
prominent at seemingly arbitrary moments.  This experiment runs the
same scheduler under a steady mix and under a phase-switching mix
(compute-heavy <-> short-task-heavy), with fixed policies vs. the
portfolio.  Reproduction contract: under vicissitude, the portfolio
re-selects policies and is never worse than the worst fixed policy,
while under the steady mix the fixed best policy suffices.
"""

import random

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.reporting import render_table
from repro.scheduling import FCFS, SJF, ClusterScheduler, PortfolioScheduler
from repro.sim import Simulator
from repro.workload import (
    PoissonArrivals,
    TaskProfile,
    VicissitudeMix,
    VicissitudePhase,
    WorkloadGenerator,
)

PROFILES = (
    TaskProfile("long-compute", runtime_mean=60.0, runtime_sigma=0.3,
                cores_choices=(4,)),
    TaskProfile("short-burst", runtime_mean=2.0, runtime_sigma=0.3,
                cores_choices=(1,)),
)


def make_jobs(vicissitude: bool, seed: int = 11, horizon: float = 600.0):
    if vicissitude:
        mix = VicissitudeMix(PROFILES, [
            VicissitudePhase(150.0, (1.0, 0.05)),   # compute-heavy phase
            VicissitudePhase(150.0, (0.05, 1.0)),   # short-task phase
        ])
    else:
        mix = VicissitudeMix(PROFILES, [VicissitudePhase(1.0, (0.5, 0.5))])
    generator = WorkloadGenerator(
        PoissonArrivals(0.15, rng=random.Random(seed)),
        mix=mix, tasks_per_job=3.0, rng=random.Random(seed + 1))
    return generator.generate(horizon)


def run(policy_name: str, vicissitude: bool) -> dict[str, float]:
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 3, MachineSpec(cores=8, memory=1e9))])
    if policy_name == "fcfs":
        scheduler = ClusterScheduler(sim, dc, queue_policy=FCFS())
        portfolio = None
    elif policy_name == "sjf":
        scheduler = ClusterScheduler(sim, dc, queue_policy=SJF())
        portfolio = None
    else:
        scheduler = ClusterScheduler(sim, dc)
        portfolio = PortfolioScheduler(sim, scheduler, [FCFS(), SJF()],
                                       interval=20.0)
    jobs = make_jobs(vicissitude)

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=30_000.0)
    switches = 0
    if portfolio is not None:
        switches = portfolio.switches
        portfolio.stop()
    stats = scheduler.statistics()
    assert stats["completed"] == sum(len(j) for j in jobs)
    return {"slowdown": stats["slowdown_mean"], "switches": switches}


def build_e7():
    results = {}
    for mix_name, vicissitude in (("steady", False), ("vicissitude", True)):
        for policy in ("fcfs", "sjf", "portfolio"):
            results[(mix_name, policy)] = run(policy, vicissitude)
    return results


def test_exp_vicissitude(benchmark, show):
    results = benchmark.pedantic(build_e7, rounds=1, iterations=1)
    for mix_name in ("steady", "vicissitude"):
        fixed = [results[(mix_name, p)]["slowdown"]
                 for p in ("fcfs", "sjf")]
        portfolio = results[(mix_name, "portfolio")]["slowdown"]
        # Contract: the portfolio never loses to the worst fixed policy.
        assert portfolio <= max(fixed) * 1.05, (mix_name, portfolio, fixed)
    # Contract: under vicissitude the portfolio actually re-selects.
    assert results[("vicissitude", "portfolio")]["switches"] >= 1
    rows = [(mix_name, policy, f"{m['slowdown']:.2f}",
             m["switches"] if policy == "portfolio" else "-")
            for (mix_name, policy), m in results.items()]
    show(render_table(
        ["Mix", "Policy", "Mean slowdown", "Policy switches"], rows,
        title="E7. VICISSITUDE [22]: PHASE-SWITCHING MIX VS STEADY MIX."))
