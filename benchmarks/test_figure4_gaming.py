"""F4 — regenerate Figure 4: the online-gaming architecture (§6.3).

Beyond the registry, the benchmark answers the section's headline
question — can small studios serve players with near-zero up-front
cost? — by running a simulated day on self-hosted vs. cloud hosting
and comparing up-front cost and lag-free QoS.
"""

import random

from repro.gaming import (
    GAMING_FUNCTIONS,
    CloudProvisioner,
    GamingArchitecture,
    SelfHostedProvisioner,
    VirtualWorld,
    diurnal_player_curve,
)
from repro.reporting import render_kv, render_table
from repro.sim import Simulator


def run_hosting(strategy: str) -> dict[str, float]:
    sim = Simulator()
    world = VirtualWorld(sim, n_zones=4, players_per_server=100)
    players = diurnal_player_curve(3000, period=86400.0)
    if strategy == "self-hosted":
        # A small studio can only afford 4 servers per zone up front —
        # under peak demand (3000 players need ~30 servers).
        provisioner = SelfHostedProvisioner(world, servers_per_zone=4)
    else:
        provisioner = CloudProvisioner(world, sim)

    def day(sim):
        for hour in range(24):
            world.set_population(players(hour * 3600.0),
                                 rng=random.Random(hour))
            provisioner.rebalance()
            yield sim.timeout(3600.0)

    sim.run(until=sim.process(day(sim)))
    return {
        "qos": world.qos(),
        "upfront": provisioner.upfront_cost,
        "total_cost": provisioner.total_cost(24.0),
    }


def build_figure4():
    rows = GamingArchitecture().table_rows()
    self_hosted = run_hosting("self-hosted")
    cloud = run_hosting("cloud")
    return rows, self_hosted, cloud


def test_figure4_gaming(benchmark, show):
    rows, self_hosted, cloud = benchmark(build_figure4)
    assert len(rows) == 4
    assert {name for name, _ in rows} == {f.name for f in GAMING_FUNCTIONS}
    # Reproduction contract (§6.3): cloud hosting has near-zero up-front
    # cost AND better QoS than the under-provisioned self-hosted fleet.
    assert cloud["upfront"] == 0.0
    assert self_hosted["upfront"] > 10000.0
    assert cloud["qos"] > self_hosted["qos"]
    assert cloud["qos"] > 0.95
    show(render_table(["Function", "Main topics"], rows,
                      title="FIGURE 4. FUNCTIONAL REFERENCE ARCHITECTURE "
                            "FOR ONLINE GAMING.")
         + "\n\n"
         + render_kv([
             ("self-hosted up-front cost", self_hosted["upfront"]),
             ("self-hosted QoS (lag-free)", self_hosted["qos"]),
             ("cloud up-front cost", cloud["upfront"]),
             ("cloud 24h pay-per-use cost", cloud["total_cost"]),
             ("cloud QoS (lag-free)", cloud["qos"]),
         ], title="CAN SMALL STUDIOS ENTERTAIN AT NEAR-ZERO UP-FRONT COST?"))
