"""E8 — ablations of the design choices DESIGN.md calls out.

Four sweeps: (a) EASY backfilling on/off across queue policies,
(b) the portfolio re-selection interval, (c) the soft-lock-in strength
of the evolution model, and (d) memory scavenging on/off under a
memory-pressured workload ([118]).
"""

import random

from repro.datacenter import (
    Datacenter,
    MachineSpec,
    ScavengingCoordinator,
    homogeneous_cluster,
)
from repro.evolution import EvolutionModel
from repro.reporting import render_table
from repro.scheduling import FCFS, SJF, ClusterScheduler, PortfolioScheduler
from repro.sim import Simulator
from repro.workload import PoissonArrivals, Task, TaskProfile, VicissitudeMix, WorkloadGenerator


def ablate_backfilling():
    """(a) backfilling x queue policy on a contended trace."""
    def run(queue_policy, backfilling):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 2, MachineSpec(cores=8, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc, queue_policy=queue_policy,
                                     backfilling=backfilling,
                                     strict_head=not backfilling)
        rng = random.Random(21)
        for i in range(40):
            scheduler.submit(Task(runtime=rng.uniform(5, 60),
                                  cores=rng.choice((2, 4, 8)),
                                  submit_time=0.0))
        sim.run(until=50_000.0)
        assert len(scheduler.completed) == 40
        return scheduler.makespan()

    rows = []
    for name, factory in (("fcfs", FCFS), ("sjf", SJF)):
        off = run(factory(), backfilling=False)
        on = run(factory(), backfilling=True)
        rows.append((name, f"{off:.0f}", f"{on:.0f}", f"{off / on:.2f}x"))
        assert on <= off * 1.001, (name, on, off)
    return rows


def ablate_portfolio_interval():
    """(b) portfolio interval: too-rare selection reacts too late."""
    def run(interval):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 2, MachineSpec(cores=8, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        portfolio = PortfolioScheduler(sim, scheduler, [FCFS(), SJF()],
                                       interval=interval)
        generator = WorkloadGenerator(
            PoissonArrivals(0.2, rng=random.Random(22)),
            mix=VicissitudeMix.steady(
                (TaskProfile("t", 20.0, 1.2, cores_choices=(2, 4)),)),
            tasks_per_job=3.0, rng=random.Random(23))
        jobs = generator.generate(300.0)

        def feeder(sim):
            for job in jobs:
                delay = job.submit_time - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                scheduler.submit_job(job)

        sim.run(until=sim.process(feeder(sim)))
        sim.run(until=30_000.0)
        portfolio.stop()
        assert len(scheduler.completed) == sum(len(j) for j in jobs)
        return scheduler.statistics()["slowdown_mean"]

    rows = [(f"{interval:.0f} s", f"{run(interval):.2f}")
            for interval in (10.0, 50.0, 200.0)]
    return rows


def ablate_lock_in():
    """(c) lock-in strength -> frequency of inferior market leaders.

    The sweep exposes an inverted U: without lock-in there are no
    inferior leaders; moderate lock-in keeps better newcomers alive but
    starved (many observable lock-in generations); extreme lock-in
    starves newcomers to extinction within a generation, so the anomaly
    is shorter-lived though no less real.
    """
    means = {}
    rows = []
    for strength in (0.0, 1.0, 2.0):
        events = []
        for seed in range(5):
            model = EvolutionModel(n_initial=6, radical_probability=0.3,
                                   lock_in_strength=strength,
                                   rng=random.Random(seed))
            trace = model.run(generations=80)
            events.append(len(trace.lock_in_events))
        means[strength] = sum(events) / len(events)
        rows.append((f"{strength:.1f}", f"{means[strength]:.1f}"))
    assert means[0.0] == 0.0
    assert means[1.0] > 0.0 and means[2.0] > 0.0
    return rows


def ablate_scavenging():
    """(d) memory scavenging on/off under memory pressure ([118])."""
    def run(scavenge):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 4, MachineSpec(cores=8, memory=8.0))])
        coordinator = ScavengingCoordinator(dc)
        placed, rejected = 0, 0
        # 10 GiB tasks on 8 GiB machines: impossible without borrowing.
        tasks = [Task(runtime=10.0, cores=2, memory=10.0, name=f"t{i}")
                 for i in range(6)]
        for task in tasks:
            if scavenge:
                process = coordinator.try_place(task)
            else:
                machine = next((m for m in dc.machines()
                                if m.can_fit(task)), None)
                process = dc.execute(task, machine) if machine else None
            if process is None:
                rejected += 1
            else:
                placed += 1
        sim.run(until=10_000.0)
        finished = dc.completed_tasks
        mean_runtime = (sum(t.finish_time - t.start_time
                            for t in finished) / len(finished)
                        if finished else 0.0)
        return placed, rejected, mean_runtime

    rows = []
    baseline = run(False)
    scavenged = run(True)
    rows.append(("off", baseline[0], baseline[1], f"{baseline[2]:.2f}"))
    rows.append(("on", scavenged[0], scavenged[1], f"{scavenged[2]:.2f}"))
    # Contract: scavenging places strictly more work at a modest
    # (bounded) runtime overhead.
    assert scavenged[0] > baseline[0]
    if baseline[2] > 0:
        assert scavenged[2] <= baseline[2] * 1.4
    return rows


def build_e8():
    return (ablate_backfilling(), ablate_portfolio_interval(),
            ablate_lock_in(), ablate_scavenging())


def test_exp_ablations(benchmark, show):
    backfill, interval, lock_in, scavenging = benchmark.pedantic(
        build_e8, rounds=1, iterations=1)
    show(render_table(["Queue policy", "Makespan (no BF)",
                       "Makespan (EASY BF)", "Gain"], backfill,
                      title="E8a. BACKFILLING ABLATION.")
         + "\n\n"
         + render_table(["Portfolio interval", "Mean slowdown"], interval,
                        title="E8b. PORTFOLIO RE-SELECTION INTERVAL.")
         + "\n\n"
         + render_table(["Lock-in strength", "Lock-in events / run"],
                        lock_in, title="E8c. SOFT-LOCK-IN SWEEP.")
         + "\n\n"
         + render_table(["Scavenging", "Placed", "Rejected",
                         "Mean runtime [s]"], scavenging,
                        title="E8d. MEMORY SCAVENGING [118]."))
