"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper (or one
derived experiment), asserts the reproduction contract — the *shape*
of the result: who wins, by roughly what factor, where crossovers fall
— and prints the regenerated rows.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so -s shows the regenerated rows."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
