"""F1 — regenerate Figure 1: the big-data ecosystem stack (§2.1).

The figure's two claims become executable: (a) the four-layer catalog
with the MapReduce and Pregel sub-ecosystems highlighted as minimum
execution sets, and (b) those sub-ecosystems actually *run* — both
engines execute on the same datacenter substrate.
"""

import random

from repro.bigdata import (
    BIGDATA_COMPONENTS,
    BigDataStack,
    StackLayer,
    mapreduce_job,
    pregel_job,
)
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.reporting import render_table
from repro.scheduling import ClusterScheduler, WorkflowEngine
from repro.sim import Simulator


def run_sub_ecosystem(job):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 4, MachineSpec(cores=8, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc)
    engine = WorkflowEngine(sim, scheduler)
    done = engine.submit(job)
    sim.run(until=done)
    return job.makespan


def build_figure1():
    # (a) The stack catalog, layer by layer.
    rows = []
    for layer in StackLayer:
        components = [c.name for c in BIGDATA_COMPONENTS
                      if c.layer is layer]
        rows.append((layer.value, ", ".join(components)))
    # (b) The two highlighted sub-ecosystems are execution-ready and run.
    mapreduce_stack = BigDataStack.sub_ecosystem("mapreduce")
    pregel_stack = BigDataStack.sub_ecosystem("pregel")
    assert mapreduce_stack.execution_ready()
    assert pregel_stack.execution_ready()
    mr_makespan = run_sub_ecosystem(
        mapreduce_job(n_maps=16, n_reduces=4, rng=random.Random(1)))
    pregel_makespan = run_sub_ecosystem(
        pregel_job(n_workers=8, n_supersteps=5, rng=random.Random(2)))
    return rows, mr_makespan, pregel_makespan


def test_figure1_bigdata_stack(benchmark, show):
    rows, mr_makespan, pregel_makespan = benchmark(build_figure1)
    assert len(rows) == 4
    assert mr_makespan > 0 and pregel_makespan > 0
    show(render_table(["Layer", "Components"], rows,
                      title="FIGURE 1. THE BIG-DATA ECOSYSTEM STACK.")
         + f"\nMapReduce sub-ecosystem executed: makespan "
           f"{mr_makespan:.1f} s"
         + f"\nPregel sub-ecosystem executed:    makespan "
           f"{pregel_makespan:.1f} s")
