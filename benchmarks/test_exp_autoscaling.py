"""E2 — the autoscaler comparison under workflow load ([43], C6/C7).

Runs all six autoscaler families on the same bursty workflow-derived
demand and scores them with the SPEC elasticity metrics [32].
Reproduction contract (the headline of [43]): *no single autoscaler
dominates* — different metrics crown different winners — and every
autoscaler completes all submitted work.
"""

import random

from repro.autoscaling import AUTOSCALERS, AutoscalingController
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.reporting import render_table
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import MMPPArrivals, TaskProfile, VicissitudeMix, WorkloadGenerator


def bursty_demand(seed=3, horizon=400.0):
    generator = WorkloadGenerator(
        MMPPArrivals(quiet_rate=0.05, burst_rate=0.8, quiet_duration=60.0,
                     burst_duration=20.0, rng=random.Random(seed)),
        mix=VicissitudeMix.steady(
            (TaskProfile("wf", runtime_mean=15.0, runtime_sigma=0.8,
                         cores_choices=(1, 2, 4)),)),
        tasks_per_job=4.0,
        rng=random.Random(seed + 1))
    return generator.generate(horizon)


def run_autoscaler(name: str, jobs) -> dict[str, float]:
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 16, MachineSpec(cores=4, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc)
    controller = AutoscalingController(sim, dc, scheduler,
                                       AUTOSCALERS[name](), interval=5.0)

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim), name="feeder"))
    sim.run(until=3000.0)
    controller.stop()
    expected = sum(len(j) for j in jobs)
    assert len(scheduler.completed) == expected, (name,
                                                  len(scheduler.completed))
    report = controller.elasticity(0.0, 3000.0)
    return {
        "under_acc": report.accuracy_under,
        "over_acc": report.accuracy_over,
        "under_ts": report.timeshare_under,
        "over_ts": report.timeshare_over,
        "jitter": report.jitter,
        "deviation": report.elastic_deviation(),
        "slowdown": scheduler.statistics()["slowdown_mean"],
    }


def build_e2():
    results = {}
    for name in sorted(AUTOSCALERS):
        results[name] = run_autoscaler(name, bursty_demand(seed=5))
    return results


def test_exp_autoscaling(benchmark, show):
    results = benchmark.pedantic(build_e2, rounds=1, iterations=1)
    assert len(results) == 6
    # Contract: no single autoscaler dominates — the winners of the
    # individual metrics are not all the same policy.
    winners = {
        metric: min(results, key=lambda n: results[n][metric])
        for metric in ("under_acc", "over_acc", "jitter", "slowdown")}
    assert len(set(winners.values())) >= 2, winners
    # Reactive scaling tracks demand closely: best-or-near-best
    # under-provisioning accuracy.
    react_rank = sorted(results, key=lambda n: results[n]["under_acc"])
    assert react_rank.index("react") <= 2
    rows = [(name,
             f"{m['under_acc']:.3f}", f"{m['over_acc']:.3f}",
             f"{m['under_ts']:.2f}", f"{m['over_ts']:.2f}",
             f"{m['jitter'] * 1000:.2f}", f"{m['deviation']:.3f}",
             f"{m['slowdown']:.2f}")
            for name, m in sorted(results.items(),
                                  key=lambda kv: kv[1]["deviation"])]
    show(render_table(
        ["Autoscaler", "acc_U", "acc_O", "ts_U", "ts_O",
         "jitter [mHz]", "deviation", "slowdown"],
        rows,
        title="E2. AUTOSCALER COMPARISON, SPEC ELASTICITY METRICS [32] "
              "(SORTED BY AGGREGATE DEVIATION; [43]'s RESULT: NO SINGLE "
              "WINNER)."))
