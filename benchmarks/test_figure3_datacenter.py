"""F3 — regenerate Figure 3: the datacenter reference architecture (§6.1).

Two parts: (a) the 5+1-layer registry with sub-layers, and (b) a live
datacenter run whose scheduling decisions flow through the Schopf-style
eleven-stage pipeline — the paper's envisioned "reference architecture
for scheduling in datacenters".
"""

from repro.datacenter import (
    Datacenter,
    DatacenterStack,
    LayeredComponent,
    MachineSpec,
    ReferenceArchitecture,
    homogeneous_cluster,
)
from repro.reporting import render_table
from repro.scheduling import STAGE_DESCRIPTIONS, SchedulingPipeline, SchedulingStage
from repro.sim import Simulator
from repro.workload import Task


def build_figure3():
    architecture = ReferenceArchitecture()
    rows = [(layer.number, layer.name,
             "; ".join(layer.sublayers) if layer.sublayers else "-")
            for layer in architecture.core_layers()]
    rows.append((6, "DevOps", "orthogonal: monitoring, logging, benchmarking"))

    # Assemble a complete stack against the architecture.
    stack = DatacenterStack("reference-deployment")
    stack.place(LayeredComponent("sql-console", 5,
                                 sublayer="High Level Languages"))
    stack.place(LayeredComponent("spark", 4, sublayer="Execution Engine"))
    stack.place(LayeredComponent("yarn", 3))
    stack.place(LayeredComponent("zookeeper", 2))
    stack.place(LayeredComponent("kvm", 1))
    assert stack.is_complete()

    # Drive placements through the eleven-stage scheduling pipeline.
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "dc", 8, MachineSpec(cores=8, memory=1e9))])
    pipeline = SchedulingPipeline()
    placed = 0
    for i in range(32):
        task = Task(runtime=5.0, cores=2, name=f"t{i}")
        decision = pipeline.decide(task, dc.machines(),
                                   until=SchedulingStage.CLEANUP)
        assert len(decision.stages_run) == 11
        if decision.placed:
            dc.execute(task, decision.machine)
            placed += 1
    sim.run(until=1000.0)
    assert placed == 32
    assert len(dc.completed_tasks) == 32
    return rows, placed


def test_figure3_datacenter(benchmark, show):
    rows, placed = benchmark(build_figure3)
    assert [row[1] for row in rows] == [
        "Front-end", "Back-end", "Resources", "Operations Service",
        "Infrastructure", "DevOps"]
    stage_rows = [(stage.value, stage.name.replace("_", " ").lower(),
                   STAGE_DESCRIPTIONS[stage]) for stage in SchedulingStage]
    show(render_table(["#", "Layer", "Sub-layers"], rows,
                      title="FIGURE 3. REFERENCE ARCHITECTURE FOR "
                            "DATACENTERS (2 LEVELS OF DEPTH).")
         + "\n\n"
         + render_table(["#", "Stage", "Responsibility"], stage_rows,
                        title="THE 11-STAGE SCHEDULING PIPELINE "
                              "(AFTER SCHOPF [155]).")
         + f"\n{placed} tasks placed and executed through the pipeline.")
