"""T3 — regenerate Table 3: the 20 research challenges of MCS (§5)."""

from repro.core import ChallengeRegistry, PrincipleRegistry
from repro.reporting import render_table


def build_table3():
    challenges = ChallengeRegistry()
    # The cross-table integrity check the paper's mapping implies.
    challenges.validate_against(PrincipleRegistry())
    return challenges.table_rows()


def test_table3_challenges(benchmark, show):
    rows = benchmark(build_table3)
    assert len(rows) == 20
    types = [r[0] for r in rows]
    assert types.count("Systems") == 10
    assert types.count("Peopleware") == 4
    assert types.count("Methodology") == 6
    # Spot-check the paper's principle mapping column.
    by_index = {r[1]: r for r in rows}
    assert by_index["C3"][3] == "P3, P5"
    assert by_index["C9"][3] == "P2, P3, P4, P5"
    assert by_index["C20"][3] == "P10"
    show(render_table(["Type", "Index", "Key aspects", "Princip."], rows,
                      title="TABLE 3. A SHORTLIST OF THE CHALLENGES "
                            "RAISED BY MCS."))
