"""E6 — the Ecosystem Navigation experiment (C9).

Builds a realistic service catalog (many providers per API with
heterogeneous NFR profiles, like "the tens of machine instances
provided by Amazon EC2") and compares satisficing against optimizing
selection, then resolves a full multi-tier composition.  Reproduction
contract: optimizing never returns lower utility than satisficing;
satisficing examines fewer candidates; composition yields a complete,
feasible assembly.
"""

import random

from repro.navigation import (
    ComponentCatalog,
    NFRProfile,
    Requirements,
    ServiceComponent,
    compose,
    find_replacements,
    select_optimizing,
    select_satisficing,
)
from repro.reporting import render_kv, render_table


def build_catalog(seed=1, providers_per_api=12) -> ComponentCatalog:
    rng = random.Random(seed)
    catalog = ComponentCatalog()
    apis = {
        "cache": (),
        "database": (),
        "queue": (),
        "auth": ("database",),
        "web": ("cache", "database", "auth"),
        "analytics": ("queue", "database"),
    }
    for api, requires in apis.items():
        for index in range(providers_per_api):
            catalog.add(ServiceComponent(
                name=f"{api}-{index}",
                provides=frozenset({api}),
                requires=frozenset(requires),
                profile=NFRProfile(
                    latency_ms=rng.uniform(0.5, 80.0),
                    availability=rng.uniform(0.95, 0.9999),
                    cost=rng.uniform(10.0, 400.0),
                    throughput=rng.uniform(500.0, 80000.0)),
                vendor=rng.choice(("aws", "gcp", "azure", "oss"))))
    return catalog


def build_e6():
    catalog = build_catalog()
    requirements = Requirements(max_latency_ms=40.0, min_availability=0.96,
                                max_cost=350.0)
    # Satisficing vs optimizing on every API.
    comparison = []
    for api in sorted(catalog.apis()):
        satisficed = select_satisficing(catalog, api, requirements)
        optimized = select_optimizing(catalog, api, requirements)
        assert satisficed is not None and optimized is not None
        comparison.append((api,
                           satisficed.name,
                           requirements.utility(satisficed.profile),
                           optimized.name,
                           requirements.utility(optimized.profile)))
    # Full composition of the web tier.
    assembly = compose(catalog, "web", requirements)
    # Replacement search for the chosen cache.
    cache = next(c for c in assembly if "cache" in c.provides)
    replacements = find_replacements(catalog, cache)
    return comparison, assembly, cache, replacements


def test_exp_navigation(benchmark, show):
    comparison, assembly, cache, replacements = benchmark(build_e6)
    # Contract: optimizing utility >= satisficing utility on every API.
    for api, _, sat_utility, _, opt_utility in comparison:
        assert opt_utility >= sat_utility - 1e-12, api
    # Contract: the assembly covers the whole dependency closure.
    provided = {api for c in assembly for api in c.provides}
    assert {"web", "cache", "database", "auth"} <= provided
    # Contract: replacement candidates exist and none is Pareto-
    # dominated by the incumbent.
    for candidate in replacements:
        assert not cache.profile.dominates(candidate.profile)
    rows = [(api, sat_name, f"{sat_u:.3f}", opt_name, f"{opt_u:.3f}")
            for api, sat_name, sat_u, opt_name, opt_u in comparison]
    show(render_table(
        ["API", "Satisficing pick", "Utility", "Optimizing pick",
         "Utility"], rows,
        title="E6. ECOSYSTEM NAVIGATION: SATISFICING VS OPTIMIZING "
              "SELECTION (C9).")
         + "\n\n"
         + render_kv([
             ("web-tier assembly", ", ".join(c.name for c in assembly)),
             ("replacements for " + cache.name,
              ", ".join(c.name for c in replacements[:5]) or "none"),
         ]))
