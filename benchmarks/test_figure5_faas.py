"""F5 — regenerate Figure 5: the FaaS reference architecture (§6.5).

Three parts: (a) the four-layer BL→OL registry, (b) the paper's
validation against OpenWhisk and Fission, and (c) a live run of the
canonical image-processing composition through all four layers,
sweeping the keep-alive to expose the cold-start/cost trade-off the
section identifies as the pragmatic FaaS challenge.
"""

from repro.faas import (
    CompositionEngine,
    FaaSPlatform,
    FaaSReferenceArchitecture,
    FunctionSpec,
    PLATFORM_MAPPINGS,
    parallel,
    sequence,
    step,
    validate_platform_mapping,
)
from repro.reporting import render_table
from repro.sim import Simulator


def run_pipeline(keep_alive: float, burst_gap: float = 30.0,
                 bursts: int = 10) -> dict[str, float]:
    sim = Simulator()
    platform = FaaSPlatform(sim, concurrency=32)
    for name in ("fetch", "translate", "resize", "store"):
        platform.deploy(FunctionSpec(name, mean_runtime=0.2,
                                     cold_start=0.6,
                                     keep_alive=keep_alive))
    engine = CompositionEngine(sim, platform)
    pipeline = sequence(step("fetch"),
                        parallel(step("translate"), step("resize")),
                        step("store"))

    def driver(sim):
        for _ in range(bursts):
            result = yield engine.run(pipeline)
            yield sim.timeout(burst_gap)
        return result

    sim.run(until=sim.process(driver(sim)))
    stats = platform.statistics()
    return {"cold_fraction": stats["cold_start_fraction"],
            "latency_mean": stats["latency_mean"]}


def build_figure5():
    architecture = FaaSReferenceArchitecture()
    rows = architecture.table_rows()
    for platform in PLATFORM_MAPPINGS:
        assert validate_platform_mapping(platform) == []
    correspondence = architecture.figure3_correspondence()
    short = run_pipeline(keep_alive=5.0)
    long = run_pipeline(keep_alive=120.0)
    return rows, correspondence, short, long


def test_figure5_faas(benchmark, show):
    rows, correspondence, short, long = benchmark(build_figure5)
    assert [row[0] for row in rows] == [4, 3, 2, 1]
    assert correspondence == {4: 5, 3: 4, 2: 3, 1: 1}
    # Reproduction contract: longer keep-alive slashes cold starts and
    # thus mean invocation latency (the isolation/performance trade-off).
    assert long["cold_fraction"] < short["cold_fraction"]
    assert long["latency_mean"] < short["latency_mean"]
    sweep_rows = [
        ("keep-alive 5 s", f"{short['cold_fraction']:.2f}",
         f"{short['latency_mean'] * 1000:.0f} ms"),
        ("keep-alive 120 s", f"{long['cold_fraction']:.2f}",
         f"{long['latency_mean'] * 1000:.0f} ms"),
    ]
    show(render_table(["#", "Layer", "Responsibility"], rows,
                      title="FIGURE 5. FAAS REFERENCE ARCHITECTURE "
                            "(BL TO OL).")
         + "\n\n"
         + render_table(["Configuration", "Cold-start fraction",
                         "Mean latency"], sweep_rows,
                        title="COLD-START TRADE-OFF ON THE IMAGE "
                              "PIPELINE."))
