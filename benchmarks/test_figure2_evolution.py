"""F2 — regenerate Figure 2: the technology lineage leading to MCS."""

from repro.evolution import TechnologyTimeline
from repro.reporting import render_table


def build_figure2():
    timeline = TechnologyTimeline()
    # Figure 2's structural claims.
    assert timeline.mcs_inputs() == {"Distributed Systems",
                                     "Software Engineering",
                                     "Performance Engineering"}
    ancestors = timeline.ancestors("Massivizing Computer Systems")
    assert "Computer Systems" in ancestors  # lineage reaches the root
    assert "Grid Computing" in ancestors
    return timeline.table_rows()


def test_figure2_evolution(benchmark, show):
    rows = benchmark(build_figure2)
    assert rows[-1][2] == "Massivizing Computer Systems"
    assert rows[-1][0] == "late-2010s"
    decades = [row[0] for row in rows]
    assert decades[0] == "1960s"
    show(render_table(["Decade", "Field", "Technology"], rows,
                      title="FIGURE 2. MAIN TECHNOLOGIES LEADING TO MCS."))
