#!/usr/bin/env python3
"""CI smoke check for the sharding determinism contract.

Runs the committed three-region gallery spec
(``examples/specs/planet_scale.json``) twice — all shards in one
process, then spread over two worker processes — with federated
observation armed both times, and demands:

* the merged ``ScenarioResult`` digests are byte-identical;
* the merged fleet ``TelemetrySnapshot`` digests are byte-identical;
* observation did not change the result bytes (a plain serial run
  must produce the same digest as the observed one);
* real cross-shard traffic flowed (the spec's ``ap`` region offloads
  functions to ``us``), so the epoch barrier and message path were
  actually exercised, not skipped.

Exit status 0 on success, 1 on any violation — one readable line per
check either way.  See docs/ARCHITECTURE.md ("Sharding") for the
contract this pins.

Usage:
    PYTHONPATH=src python tools/shard_smoke.py [spec.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SPEC = REPO_ROOT / "examples" / "specs" / "planet_scale.json"


def main(arguments: list[str]) -> int:
    """Run the smoke check; return a process exit code."""
    from repro.observability.federation import fleet_digest
    from repro.scenario import ScenarioSpec
    from repro.sim.sharding import run_sharded

    spec_path = Path(arguments[0]) if arguments else DEFAULT_SPEC
    spec = ScenarioSpec.from_json(spec_path.read_text(encoding="utf-8"))
    print(f"spec {spec_path.name}: {spec.name!r}, "
          f"{len(spec.shards.shards)} shards, "
          f"fingerprint {spec.fingerprint()}")

    plain = run_sharded(spec, workers=1)
    serial = run_sharded(spec, workers=1, observe=True)
    spread = run_sharded(spec, workers=2, observe=True)
    failures = []

    def check(label: str, ok: bool, detail: str) -> None:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}: {detail}")
        if not ok:
            failures.append(label)

    check("result digest (1 vs 2 workers)",
          serial.result.digest() == spread.result.digest(),
          serial.result.digest()[:16])
    check("fleet telemetry digest (1 vs 2 workers)",
          fleet_digest(serial.telemetry) == fleet_digest(spread.telemetry),
          fleet_digest(serial.telemetry)[:16])
    check("observation leaves result bytes unchanged",
          plain.result.to_json() == serial.result.to_json(),
          plain.result.digest()[:16])
    coupling = serial.result.shards["coupling"]
    check("cross-shard traffic flowed",
          coupling["offloaded"] > 0
          and coupling["acked"] == coupling["offloaded"],
          f"{coupling['offloaded']} offloaded over {coupling['epochs']} "
          f"epochs at lookahead {coupling['lookahead']}s")
    if failures:
        print(f"shard smoke FAILED: {failures}")
        return 1
    print("shard smoke passed: one loop or two processes, "
          "byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
