#!/usr/bin/env python3
"""Markdown link checker for the documentation set.

Scans the given markdown files (plus everything under docs/ when a
directory is passed) and verifies that every *relative* link target
exists on disk.  External http(s)/mailto links are skipped — CI runs
offline — and pure anchors (``#section``) are checked only for having
a non-empty name.

Exit status is the number of broken links, so CI fails on any.

Usage:
    python tools/check_md_links.py README.md docs docs/TUTORIAL.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links [text](target) and reference definitions [id]: target.
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_REFDEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_targets(text: str):
    """Yield every link target found in a markdown document."""
    yield from _INLINE.findall(text)
    yield from _REFDEF.findall(text)


def check_file(path: Path, repo_root: Path) -> list[str]:
    """Return human-readable messages for each broken link in ``path``."""
    broken = []
    for target in iter_targets(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_SCHEMES):
            continue
        if target.startswith("#"):
            if len(target) == 1:
                broken.append(f"{path}: empty anchor link")
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        base = repo_root if plain.startswith("/") else path.parent
        resolved = (base / plain.lstrip("/")).resolve()
        if not resolved.exists():
            broken.append(f"{path}: broken link -> {target}")
    return broken


def collect(arguments: list[str]) -> list[Path]:
    """Expand CLI arguments into a sorted, de-duplicated file list."""
    files: set[Path] = set()
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        else:
            files.add(path)
    return sorted(files)


def main(arguments: list[str]) -> int:
    """Check every file; print findings; return the broken-link count."""
    files = collect(arguments or ["README.md", "docs"])
    repo_root = Path(__file__).resolve().parent.parent
    broken: list[str] = []
    for path in files:
        if not path.exists():
            broken.append(f"{path}: file does not exist")
            continue
        broken.extend(check_file(path, repo_root))
    for message in broken:
        print(message)
    print(f"checked {len(files)} files: "
          f"{'all links OK' if not broken else f'{len(broken)} broken'}")
    return len(broken)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
