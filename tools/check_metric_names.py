"""Lint metric names against the ``subsystem.noun_unit`` convention.

Every instrument the codebase registers — ``.counter("...")``,
``.gauge("...")``, ``.histogram("...")`` — must use a dotted
lowercase name: at least two segments, each ``[a-z][a-z0-9_]*``,
joined with ``.`` (docs/OBSERVABILITY.md).  The convention is what
makes the OpenMetrics mapping (dots → underscores under the
``repro_`` prefix) collision-free and the fleet merge keys stable.

The check walks the AST rather than grepping, so names in docstrings
and comments never trip it, and f-string names (``f"service.{name}"``)
are validated on their static parts: the literal prefix must already
satisfy the convention's charset and carry the ``subsystem.`` dot.

Usage::

    python tools/check_metric_names.py src/repro [more paths...]

Exits 1 listing each offending ``file:line: name`` when any
registered metric name violates the convention.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

INSTRUMENTS = {"counter", "gauge", "histogram"}
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
#: Charset of any literal fragment of an f-string metric name.
FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")


def literal_name(node: ast.expr) -> tuple[str | None, bool]:
    """``(static_text, is_partial)`` for a metric-name argument.

    A plain string constant comes back whole; an f-string comes back
    as its literal fragments only (``is_partial=True``), with ``*``
    standing in for each interpolated hole; anything else is
    ``(None, False)`` — not statically checkable.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("*")
        return "".join(parts), True
    return None, False


def fstring_ok(text: str) -> bool:
    """A partial (f-string) name passes when its static skeleton does.

    The literal prefix before the first hole must already name the
    subsystem (``service.`` …), and every literal fragment must stay
    inside the convention's charset.
    """
    prefix = text.split("*", 1)[0]
    if not re.match(r"^[a-z][a-z0-9_]*\.", prefix):
        return False
    return all(FRAGMENT_RE.match(fragment)
               for fragment in text.split("*"))


def check_file(path: Path) -> list[str]:
    """Violations in one source file, as ``file:line: message`` rows."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: unparseable ({exc.msg})"]
    violations = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in INSTRUMENTS
                and node.args):
            continue
        text, partial = literal_name(node.args[0])
        if text is None:
            continue
        ok = fstring_ok(text) if partial else bool(NAME_RE.match(text))
        if not ok:
            violations.append(
                f"{path}:{node.lineno}: metric name {text!r} violates "
                f"subsystem.noun_unit naming")
    return violations


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src/repro")]
    files: list[Path] = []
    for root in roots:
        files.extend(sorted(root.rglob("*.py"))
                     if root.is_dir() else [root])
    violations = []
    for path in files:
        violations.extend(check_file(path))
    for violation in violations:
        print(violation, file=sys.stderr)
    if violations:
        print(f"{len(violations)} metric naming violation(s)",
              file=sys.stderr)
        return 1
    print(f"metric names OK across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
