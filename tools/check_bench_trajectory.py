#!/usr/bin/env python3
"""Sanity-check committed BENCH_*.json perf-trajectory records.

A BENCH record (written by ``benchmarks.perf.run_benchmarks --output``)
is the repository's claim about its own performance trajectory: a
"before" capture, the "current" capture, the speedup ratios between
them, and the determinism digests proving both captures computed the
same thing.  This checker validates the *structure and internal
consistency* of those claims without re-running any benchmark, so CI
can catch a hand-edited or truncated record in milliseconds.

Checks per record:

* schema is ``bench-sim-core/v1`` at the top and in each capture;
* the before/current/smoke captures and the speedups section exist;
* every speedup is a finite, positive ratio and agrees (within slack)
  with before/current elapsed times recomputed from the captures;
* every digest entry carries a non-empty ``sha``;
* a digest entry's optional ``fingerprint`` (the 16-hex-char
  :meth:`ScenarioSpec.fingerprint` identity of the spec that produced
  the run) is well-formed and identical across captures — two
  captures claiming the same digest name must have run the same spec;
* digest names match between the before and current captures;
* digest *shas* match between the before and current captures — the
  record's claim is "same results, faster", so a drifted sha fails
  with a per-field diff of the digest summaries to make the divergence
  readable;
* ``calibrated_cost`` is monotonically non-regressing from before to
  current for every scenario tracked by both captures (a perf
  trajectory may not silently give back its wins).

Exit status is the number of failed records, so CI fails on any.

Usage:
    python tools/check_bench_trajectory.py BENCH_sim_core.json
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

SCHEMA = "bench-sim-core/v1"
# Sharding records compare a monolithic spec against a sharded one —
# two different fingerprints by construction — so they carry their own
# schema with its own invariants (see _check_shard_record).
SHARD_SCHEMA = "bench-shard/v1"
# The sharding trajectory claim committed with the record: at least one
# sharded configuration beats the monolith by this factor.
SHARD_MIN_SPEEDUP = 2.0
SHARD_MIN_SHARDS = 4
# Speedups are recomputed from the captured elapsed times; allow for
# rounding in the committed record.
RATIO_SLACK = 0.05
# ScenarioSpec.fingerprint() identities are 16 lowercase hex chars.
FINGERPRINT_HEX = set("0123456789abcdef")
FINGERPRINT_LENGTH = 16
# calibrated_cost divides elapsed time by the host calibration unit, so
# before/current are comparable across machines; the slack absorbs the
# residual run-to-run noise of the calibration itself.
COST_REGRESSION_SLACK = 0.15
# A digest-drift diff prints at most this many per-field lines.
DRIFT_DIFF_LIMIT = 12


def _valid_fingerprint(value: object) -> bool:
    """True when ``value`` is a well-formed spec fingerprint."""
    return (isinstance(value, str) and len(value) == FINGERPRINT_LENGTH
            and set(value) <= FINGERPRINT_HEX)


def _check_capture(name: str, capture: object) -> list[str]:
    """Validate one capture section (before/current/smoke)."""
    problems = []
    if not isinstance(capture, dict):
        return [f"'{name}' section is not an object"]
    if capture.get("schema") != SCHEMA:
        problems.append(f"'{name}' capture schema is {capture.get('schema')!r},"
                        f" expected {SCHEMA!r}")
    metrics = capture.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append(f"'{name}' capture has no metrics")
        metrics = {}
    for scenario, record in metrics.items():
        elapsed = record.get("elapsed_s")
        if not isinstance(elapsed, (int, float)) or not elapsed > 0:
            problems.append(f"'{name}' metric {scenario} has bad "
                            f"elapsed_s: {elapsed!r}")
    digests = capture.get("digests")
    if not isinstance(digests, dict) or not digests:
        problems.append(f"'{name}' capture has no determinism digests")
        digests = {}
    for scenario, record in digests.items():
        sha = record.get("sha") if isinstance(record, dict) else None
        if not isinstance(sha, str) or len(sha) != 64:
            problems.append(f"'{name}' digest {scenario} lacks a sha-256")
        if isinstance(record, dict) and "fingerprint" in record \
                and not _valid_fingerprint(record["fingerprint"]):
            problems.append(f"'{name}' digest {scenario} has a malformed "
                            f"spec fingerprint: {record['fingerprint']!r}")
    return problems


def _flatten_digest(entry: dict) -> dict:
    """Digest entry as dotted-path leaves, minus the hash fields.

    Digest shapes vary per scenario (flat statistics, a nested
    ``summary``/``statistics`` dict, or both); one level of flattening
    makes them diffable field by field.
    """
    flat = {}
    for key, value in entry.items():
        if key == "sha" or key == "fingerprint":
            continue
        if isinstance(value, dict):
            for subkey, subvalue in value.items():
                flat[f"{key}.{subkey}"] = subvalue
        else:
            flat[key] = value
    return flat


def _digest_drift_diff(scenario: str, before_entry: dict,
                       current_entry: dict) -> list[str]:
    """Readable messages for a digest whose sha drifted between captures.

    The sha alone says "something changed"; the summary diff says
    *what*: every statistic that differs is printed as its own line, so
    a determinism break reads like a failing assertion, not a hash.
    """
    problems = [f"digest {scenario} sha drifted between captures: "
                f"{before_entry['sha'][:12]}... != "
                f"{current_entry['sha'][:12]}... (the trajectory claim is "
                f"'same results, faster')"]
    before_flat = _flatten_digest(before_entry)
    current_flat = _flatten_digest(current_entry)
    lines = []
    for key in sorted(set(before_flat) | set(current_flat)):
        old = before_flat.get(key, "<absent>")
        new = current_flat.get(key, "<absent>")
        if old != new:
            lines.append(f"digest {scenario} {key}: {old!r} -> {new!r}")
    if not lines:
        lines.append(f"digest {scenario} statistics agree — the drift is "
                     f"in the event trace; diff the captured goldens "
                     f"(tests/perf/goldens)")
    overflow = len(lines) - DRIFT_DIFF_LIMIT
    if overflow > 0:
        lines = lines[:DRIFT_DIFF_LIMIT]
        lines.append(f"digest {scenario}: ... and {overflow} more "
                     f"differing summary fields")
    return problems + lines


def _check_shard_record(record: dict) -> list[str]:
    """Validate a ``bench-shard/v1`` record (monolith vs sharded).

    The record's claim is different from a sim-core trajectory: the
    monolith and the sharded runs are *different specs* (one declares
    ``shards``), so their fingerprints and digests legitimately
    differ.  What must hold instead:

    * both sides carry well-formed fingerprints, positive timings, and
      sha-256 digests;
    * every sharded worker-count configuration produced the identical
      digest (the conservative-coupling determinism contract);
    * every committed speedup agrees with the captured timings;
    * the sharded plan has at least ``SHARD_MIN_SHARDS`` shards and at
      least one configuration reaches ``SHARD_MIN_SPEEDUP`` over the
      monolith — the record exists to pin that trajectory claim.
    """
    problems = []
    for key in ("generated_with", "monolith", "sharded", "speedups"):
        if key not in record:
            problems.append(f"missing top-level section '{key}'")
    monolith = record.get("monolith", {})
    sharded = record.get("sharded", {})
    if not isinstance(monolith, dict) or not isinstance(sharded, dict):
        return problems + ["'monolith'/'sharded' sections must be objects"]
    for name, section in (("monolith", monolith), ("sharded", sharded)):
        if not _valid_fingerprint(section.get("fingerprint")):
            problems.append(f"'{name}' has a malformed spec fingerprint: "
                            f"{section.get('fingerprint')!r}")
    elapsed = monolith.get("elapsed_s")
    if not isinstance(elapsed, (int, float)) or not elapsed > 0:
        problems.append(f"monolith has bad elapsed_s: {elapsed!r}")
    sha = monolith.get("digest")
    if not isinstance(sha, str) or len(sha) != 64:
        problems.append("monolith digest lacks a sha-256")
    shards = sharded.get("shards")
    if not isinstance(shards, int) or shards < SHARD_MIN_SHARDS:
        problems.append(f"sharded plan has {shards!r} shards; the record "
                        f"must demonstrate {SHARD_MIN_SHARDS}+")
    configs = sharded.get("configs")
    if not isinstance(configs, dict) or not configs:
        return problems + ["sharded section has no worker configs"]
    digests = set()
    for workers, entry in configs.items():
        if not isinstance(entry, dict):
            problems.append(f"sharded config {workers} is not an object")
            continue
        config_elapsed = entry.get("elapsed_s")
        if not isinstance(config_elapsed, (int, float)) \
                or not config_elapsed > 0:
            problems.append(f"sharded config {workers} has bad "
                            f"elapsed_s: {config_elapsed!r}")
        config_sha = entry.get("digest")
        if not isinstance(config_sha, str) or len(config_sha) != 64:
            problems.append(f"sharded config {workers} lacks a sha-256")
        else:
            digests.add(config_sha)
    if len(digests) > 1:
        problems.append(f"sharded digests differ across worker counts "
                        f"({sorted(d[:12] for d in digests)}); the "
                        f"determinism contract demands byte-identity")
    speedups = record.get("speedups", {})
    if not isinstance(speedups, dict) or not speedups:
        return problems + ["speedups section is empty"]
    best = 0.0
    for workers, ratio in speedups.items():
        if not isinstance(ratio, (int, float)) or not math.isfinite(ratio) \
                or ratio <= 0:
            problems.append(f"speedup {workers} is not a positive finite "
                            f"ratio: {ratio!r}")
            continue
        best = max(best, ratio)
        entry = configs.get(workers)
        if not isinstance(entry, dict) or not isinstance(
                entry.get("elapsed_s"), (int, float)):
            problems.append(f"speedup {workers} has no matching sharded "
                            f"timing")
            continue
        if not isinstance(elapsed, (int, float)) or not elapsed > 0:
            continue
        expected = elapsed / entry["elapsed_s"]
        if abs(ratio - expected) > RATIO_SLACK * expected:
            problems.append(f"speedup {workers} ({ratio:.2f}x) disagrees "
                            f"with captured timings ({expected:.2f}x)")
    if best and best < SHARD_MIN_SPEEDUP:
        problems.append(f"best sharded speedup is {best:.2f}x; the record "
                        f"claims the partitioned loop beats the monolith "
                        f"by {SHARD_MIN_SPEEDUP:.0f}x+")
    return problems


def check_record(path: Path) -> list[str]:
    """Return human-readable messages for every problem in ``path``."""
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable: {error}"]
    if record.get("schema") == SHARD_SCHEMA:
        return _check_shard_record(record)
    problems = []
    if record.get("schema") != SCHEMA:
        problems.append(f"top-level schema is {record.get('schema')!r}, "
                        f"expected {SCHEMA!r}")
    for key in ("before", "current", "smoke", "speedups", "generated_with"):
        if key not in record:
            problems.append(f"missing top-level section '{key}'")
    for name in ("before", "current", "smoke"):
        if name in record:
            problems.extend(_check_capture(name, record[name]))

    before = record.get("before", {})
    current = record.get("current", {})
    speedups = record.get("speedups", {})
    if not isinstance(speedups, dict) or not speedups:
        problems.append("speedups section is empty")
        speedups = {}
    for scenario, ratio in speedups.items():
        if not isinstance(ratio, (int, float)) or not math.isfinite(ratio) \
                or ratio <= 0:
            problems.append(f"speedup {scenario} is not a positive finite "
                            f"ratio: {ratio!r}")
            continue
        try:
            expected = (before["metrics"][scenario]["elapsed_s"]
                        / current["metrics"][scenario]["elapsed_s"])
        except (KeyError, TypeError, ZeroDivisionError):
            problems.append(f"speedup {scenario} has no matching "
                            f"before/current timings")
            continue
        if abs(ratio - expected) > RATIO_SLACK * expected:
            problems.append(f"speedup {scenario} ({ratio:.2f}x) disagrees "
                            f"with captured timings ({expected:.2f}x)")

    before_digests = before.get("digests", {}) or {}
    current_digests = current.get("digests", {}) or {}
    missing = set(before_digests) - set(current_digests)
    if missing:
        problems.append(f"current capture dropped digests: {sorted(missing)}")
    for scenario in set(before_digests) & set(current_digests):
        entries = (before_digests[scenario], current_digests[scenario])
        if not all(isinstance(entry, dict) for entry in entries):
            continue
        fingerprints = [entry.get("fingerprint") for entry in entries
                        if "fingerprint" in entry]
        if len(fingerprints) == 2 and fingerprints[0] != fingerprints[1]:
            problems.append(f"digest {scenario} fingerprint changed between "
                            f"captures: {fingerprints[0]!r} != "
                            f"{fingerprints[1]!r} (different spec, not a "
                            f"comparable trajectory)")
            continue
        shas = [entry.get("sha") for entry in entries]
        if all(isinstance(sha, str) and len(sha) == 64 for sha in shas) \
                and shas[0] != shas[1]:
            problems.extend(_digest_drift_diff(scenario, *entries))

    before_metrics = before.get("metrics") if isinstance(before, dict) else {}
    current_metrics = (current.get("metrics")
                       if isinstance(current, dict) else {})
    if isinstance(before_metrics, dict) and isinstance(current_metrics, dict):
        for scenario in sorted(set(before_metrics) & set(current_metrics)):
            entries = (before_metrics[scenario], current_metrics[scenario])
            if not all(isinstance(entry, dict) for entry in entries):
                continue
            old = entries[0].get("calibrated_cost")
            new = entries[1].get("calibrated_cost")
            if not isinstance(old, (int, float)):
                continue
            if not isinstance(new, (int, float)):
                problems.append(f"metric {scenario} dropped calibrated_cost "
                                f"from the current capture")
            elif new > old * (1 + COST_REGRESSION_SLACK):
                problems.append(
                    f"calibrated_cost regressed for {scenario}: "
                    f"{old:.1f} -> {new:.1f} "
                    f"({new / old:.2f}x; current must stay <= before — a "
                    f"perf trajectory may not give back its wins)")
    return problems


def main(arguments: list[str]) -> int:
    """Check every record; print a summary; return the failure count."""
    paths = [Path(argument) for argument in arguments]
    if not paths:
        paths = sorted(Path(".").glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json records found")
        return 1
    failed = 0
    for path in paths:
        problems = check_record(path)
        if problems:
            failed += 1
            for message in problems:
                print(f"FAIL {path}: {message}")
            continue
        record = json.loads(path.read_text(encoding="utf-8"))
        ratios = ", ".join(f"{name} {ratio:.2f}x" for name, ratio
                           in sorted(record["speedups"].items()))
        print(f"OK {path}: {ratios}")
    print(f"checked {len(paths)} records: "
          f"{'all OK' if not failed else f'{failed} failed'}")
    return failed


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
