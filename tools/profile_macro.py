#!/usr/bin/env python3
"""Profile the scheduling macro benchmark with the SubsystemProfiler.

"Profile ourselves before optimizing ourselves": this helper runs the
same scheduling scenario the perf harness times
(``benchmarks.perf.scenarios``), but under an attached
:class:`~repro.observability.observer.Observer` with profiling on, and
prints the per-subsystem attribution table — event counts, simulated
time, and (non-deterministic) wall time per subsystem.  Future perf
PRs start here: the table says which layer owns the wall clock before
anyone touches code.

The profiled run is *slower* than the benchmark run (profiling is the
one observability feature with per-event overhead), so the numbers are
for attribution, not for the BENCH record.  The unprofiled wall time
is measured separately first and printed alongside for scale.

Usage::

    PYTHONPATH=src python tools/profile_macro.py              # smoke size
    PYTHONPATH=src python tools/profile_macro.py --size full
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf.scenarios import SIZES, scheduling_spec  # noqa: E402
from repro.observability.observer import Observer  # noqa: E402
from repro.reporting import render_profile  # noqa: E402


def profile_scheduling(size: str) -> str:
    """Run the scheduling macro scenario profiled; return the table."""
    params = SIZES[size]
    n_tasks = params["sched_tasks"]
    n_machines = params["sched_machines"]

    # Pass 1 — unprofiled, for the headline number the BENCH record
    # tracks.
    runtime = scheduling_spec(n_tasks, n_machines).build()
    start = time.perf_counter()
    runtime.sim.run()
    plain_elapsed = time.perf_counter() - start
    events = runtime.sim.events_processed
    runtime.finalize()

    # Pass 2 — same spec, observer attached, profiler on.
    observer = Observer(profiling=True)
    runtime = scheduling_spec(n_tasks, n_machines).build(observer=observer)
    start = time.perf_counter()
    runtime.sim.run()
    profiled_elapsed = time.perf_counter() - start
    runtime.finalize()

    assert observer.profiler is not None
    lines = [
        f"scheduling macro scenario, size={size!r}: "
        f"{n_tasks} tasks / {n_machines} machines",
        f"unprofiled: {plain_elapsed:.3f}s wall, {events} events "
        f"({events / plain_elapsed:,.0f} events/sec)",
        f"profiled:   {profiled_elapsed:.3f}s wall "
        "(profiling overhead included — attribution only)",
        "",
        render_profile(observer.profiler.report(),
                       wall=observer.profiler.wall_report(),
                       title="Per-subsystem attribution"),
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", choices=sorted(SIZES),
                        default="smoke",
                        help="scenario size from benchmarks.perf.scenarios")
    args = parser.parse_args(argv)
    print(profile_scheduling(args.size))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
