"""CI smoke test for ``python -m repro serve``.

Boots the real server in a subprocess (inline executor — no process
pool inside CI's container), submits the bundled
``examples/specs/chaos_baseline.json`` spec over HTTP, polls it to
completion, re-submits it and requires a *cached* response carrying
the identical result digest (the provable-cache contract from
docs/SERVICE.md), checks the health and SLO endpoints, scrapes
``/v1/metrics?format=openmetrics`` and validates every line against
the exposition grammar (requiring both the service and the federated
fleet plane — the server runs with ``--observe``), then shuts the
server down cleanly with SIGTERM and requires exit code 0.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SPEC_PATH = REPO_ROOT / "examples" / "specs" / "chaos_baseline.json"
BOOT_DEADLINE = 30.0
RUN_DEADLINE = 120.0

#: The OpenMetrics sample grammar: ``name{labels} value`` (labels
#: optional, values numeric).  Comment lines are checked separately.
SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
    r'[0-9eE.+-]+(in)?f?$')


def check_openmetrics(text: str) -> int:
    """Strict line-format check of one exposition; returns sample count."""
    assert text.endswith("# EOF\n"), "exposition must end with '# EOF'"
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    samples = 0
    for line in lines[:-1]:
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert SAMPLE_LINE.match(line), f"bad OpenMetrics line: {line!r}"
        samples += 1
    assert samples, "exposition carried no samples"
    return samples


def free_port() -> int:
    """A currently-free loopback port for the server to bind."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_boot(process: subprocess.Popen) -> str:
    """Block until the server prints its listening line; returns it."""
    deadline = time.monotonic() + BOOT_DEADLINE
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "listening on" in line:
            return line.strip()
        if process.poll() is not None:
            raise SystemExit(f"server died during boot "
                             f"(exit {process.returncode})")
    raise SystemExit("server did not boot within deadline")


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    from repro.service import ServiceClient

    port = free_port()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--inline",
         "--observe", "--port", str(port)],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        print(wait_for_boot(process))
        client = ServiceClient(f"http://127.0.0.1:{port}",
                               tenant="ci-smoke")
        spec_json = SPEC_PATH.read_text(encoding="utf-8")

        outcome = client.submit(spec_json)
        assert outcome["status"] == 202, outcome
        job_id = outcome["job_id"]
        print(f"submitted {SPEC_PATH.name} as {job_id}")

        digest, result_json = client.wait(job_id, timeout=RUN_DEADLINE)
        assert digest and result_json, "empty result"
        print(f"completed with digest {digest}")

        again = client.submit(spec_json)
        assert again["status"] == 200, again
        assert again.get("cached") is True, again
        assert again["result_digest"] == digest, (
            f"cached digest {again['result_digest']} != first-run "
            f"digest {digest}")
        print("re-submit served from cache with identical digest")

        assert client.result_by_digest(digest) == result_json
        health = client.health()
        assert health["status"] == "ok", health
        slo = client.slo()
        assert slo["slo"]["service-availability"]["ok"] == 1.0, slo
        print("health ok, availability SLO green")

        exposition = client.metrics_openmetrics()
        samples = check_openmetrics(exposition)
        assert 'plane="service"' in exposition, "service plane missing"
        assert 'plane="fleet"' in exposition, (
            "fleet plane missing — did the observed run federate?")
        _, telemetry_json = client.run_telemetry(job_id)
        assert telemetry_json, "observed run has no telemetry snapshot"
        print(f"openmetrics scrape valid ({samples} samples, both "
              f"planes present)")
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            process.kill()
            raise SystemExit("server did not exit on SIGTERM")
    if process.returncode != 0:
        raise SystemExit(f"server exited {process.returncode}")
    print("clean shutdown (exit 0) — service smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
