"""CI smoke test for ``python -m repro serve``.

Boots the real server in a subprocess (inline executor — no process
pool inside CI's container), submits the bundled
``examples/specs/chaos_baseline.json`` spec over HTTP, polls it to
completion, re-submits it and requires a *cached* response carrying
the identical result digest (the provable-cache contract from
docs/SERVICE.md), checks the health and SLO endpoints, then shuts the
server down cleanly with SIGTERM and requires exit code 0.

Usage::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SPEC_PATH = REPO_ROOT / "examples" / "specs" / "chaos_baseline.json"
BOOT_DEADLINE = 30.0
RUN_DEADLINE = 120.0


def free_port() -> int:
    """A currently-free loopback port for the server to bind."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_boot(process: subprocess.Popen) -> str:
    """Block until the server prints its listening line; returns it."""
    deadline = time.monotonic() + BOOT_DEADLINE
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "listening on" in line:
            return line.strip()
        if process.poll() is not None:
            raise SystemExit(f"server died during boot "
                             f"(exit {process.returncode})")
    raise SystemExit("server did not boot within deadline")


def main() -> int:
    """Run the smoke sequence; returns a process exit code."""
    from repro.service import ServiceClient

    port = free_port()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--inline",
         "--port", str(port)],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        print(wait_for_boot(process))
        client = ServiceClient(f"http://127.0.0.1:{port}",
                               tenant="ci-smoke")
        spec_json = SPEC_PATH.read_text(encoding="utf-8")

        outcome = client.submit(spec_json)
        assert outcome["status"] == 202, outcome
        job_id = outcome["job_id"]
        print(f"submitted {SPEC_PATH.name} as {job_id}")

        digest, result_json = client.wait(job_id, timeout=RUN_DEADLINE)
        assert digest and result_json, "empty result"
        print(f"completed with digest {digest}")

        again = client.submit(spec_json)
        assert again["status"] == 200, again
        assert again.get("cached") is True, again
        assert again["result_digest"] == digest, (
            f"cached digest {again['result_digest']} != first-run "
            f"digest {digest}")
        print("re-submit served from cache with identical digest")

        assert client.result_by_digest(digest) == result_json
        health = client.health()
        assert health["status"] == "ok", health
        slo = client.slo()
        assert slo["slo"]["service-availability"]["ok"] == 1.0, slo
        print("health ok, availability SLO green")
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            process.kill()
            raise SystemExit("server did not exit on SIGTERM")
    if process.returncode != 0:
        raise SystemExit(f"server exited {process.returncode}")
    print("clean shutdown (exit 0) — service smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
