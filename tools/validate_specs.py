#!/usr/bin/env python3
"""Validator for the committed spec gallery (examples/specs).

Every ``*.json`` under the given directories must be one of the two
committed document kinds, and each is fully exercised:

- **ScenarioSpec** (``"schema": "scenario-spec/v1"``): parsed with
  :meth:`ScenarioSpec.from_dict`, fingerprinted, and composed into a
  live runtime (topology, workload, policies all resolve).
- **WfFormat** (top-level ``"workflow"`` section): loaded with
  :func:`load_wfformat`, compiled with :func:`wfformat_workflow`,
  DAG-validated, and fingerprinted over its canonical JSON form.

Exit status is the number of invalid documents, so CI fails on any.

Usage:
    PYTHONPATH=src python tools/validate_specs.py examples/specs
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path


def validate_scenario_spec(path: Path, data: dict) -> str:
    """Parse, fingerprint, and compose one scenario spec."""
    from repro.scenario import ScenarioSpec

    spec = ScenarioSpec.from_dict(data)
    runtime = spec.build()
    runtime.finalize()
    return (f"scenario-spec  {path.name}: {len(runtime.tasks)} tasks, "
            f"fingerprint {spec.fingerprint()}")


def validate_wfformat(path: Path, data: dict) -> str:
    """Load, compile, and fingerprint one WfFormat instance."""
    from repro.workload import load_wfformat, wfformat_workflow

    document = load_wfformat(data)
    workflow = wfformat_workflow(document)
    workflow.validate()
    canonical = json.dumps(document, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    fingerprint = hashlib.sha256(canonical).hexdigest()[:16]
    return (f"wfformat       {path.name}: {len(workflow)} tasks, "
            f"fingerprint {fingerprint}")


def validate(path: Path) -> str:
    """Dispatch one gallery document to its validator."""
    data = json.loads(path.read_text())
    if isinstance(data, dict) and "workflow" in data:
        return validate_wfformat(path, data)
    if isinstance(data, dict) and data.get("schema") == "scenario-spec/v1":
        return validate_scenario_spec(path, data)
    raise ValueError("neither a scenario spec nor a WfFormat document")


def main(argv: list[str]) -> int:
    """Validate every gallery JSON; return the failure count."""
    roots = [Path(a) for a in argv] or [Path("examples/specs")]
    paths = sorted(p for root in roots
                   for p in (root.rglob("*.json") if root.is_dir()
                             else [root]))
    if not paths:
        print("no spec documents found", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        try:
            print(validate(path))
        except Exception as exc:  # noqa: BLE001 - report and count
            failures += 1
            print(f"INVALID        {path}: {exc}", file=sys.stderr)
    print(f"{len(paths) - failures}/{len(paths)} gallery documents valid")
    return failures


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
