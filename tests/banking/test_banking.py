"""Unit tests for the PSD2 banking substrate."""

import pytest

from repro.banking import (
    ClearingSystem,
    ComplianceChecker,
    OpenBankingEcosystem,
    Participant,
    ParticipantKind,
    Payment,
    PaymentStatus,
    edf_order,
    fcfs_order,
)
from repro.sim import Simulator


def make_market():
    market = OpenBankingEcosystem()
    market.join(Participant("ing", ParticipantKind.BANK,
                            applications=10, legacy_fraction=0.5))
    market.join(Participant("rabo", ParticipantKind.BANK, applications=5))
    market.join(Participant("adyen", ParticipantKind.FINTECH,
                            applications=3))
    market.join(Participant("google", ParticipantKind.CONSUMER_BRAND,
                            applications=2))
    return market


class TestMarket:
    def test_join_and_lookup(self):
        market = make_market()
        assert market.get("ing").kind is ParticipantKind.BANK
        with pytest.raises(KeyError):
            market.get("monzo")
        with pytest.raises(ValueError):
            market.join(Participant("ing", ParticipantKind.BANK))

    def test_participant_validation(self):
        with pytest.raises(ValueError):
            Participant("x", ParticipantKind.BANK, applications=-1)
        with pytest.raises(ValueError):
            Participant("x", ParticipantKind.BANK, legacy_fraction=1.5)

    def test_kind_filter(self):
        market = make_market()
        banks = market.participants(ParticipantKind.BANK)
        assert {b.name for b in banks} == {"ing", "rabo"}

    def test_only_banks_provide_apis(self):
        market = make_market()
        with pytest.raises(ValueError):
            market.grant_api_access("adyen", "google")

    def test_grant_and_compliance_lists(self):
        market = make_market()
        market.grant_api_access("ing", "adyen")
        assert market.has_access("ing", "adyen")
        assert not market.has_access("rabo", "adyen")
        assert market.psd2_compliant_grants() == ["ing"]
        assert market.non_compliant_banks() == ["rabo"]

    def test_market_qualifies_as_ecosystem(self):
        market = make_market()
        eco = market.as_ecosystem()
        assert eco.is_ecosystem(), eco.disqualifications()
        assert eco.is_super_distributed()
        # Legacy apps present but not all-legacy, so no disqualification.
        legacy = [s for s in eco.walk() if s.legacy]
        assert len(legacy) == 5  # half of ing's 10 applications


class TestPayments:
    def test_validation(self):
        with pytest.raises(ValueError):
            Payment(amount=0.0, submit_time=0.0, deadline=10.0)
        with pytest.raises(ValueError):
            Payment(amount=1.0, submit_time=10.0, deadline=5.0)

    def test_clearing_meets_deadline_under_light_load(self):
        sim = Simulator()
        clearing = ClearingSystem(sim, capacity=2, service_time=1.0)
        payments = [Payment(100.0, submit_time=0.0, deadline=5.0)
                    for _ in range(2)]
        for payment in payments:
            clearing.submit(payment)
        sim.run(until=10.0)
        clearing.stop()
        assert all(p.status is PaymentStatus.CLEARED for p in payments)
        assert clearing.deadline_compliance() == 1.0
        assert clearing.mean_clearing_latency() == pytest.approx(1.0)

    def test_overload_misses_deadlines(self):
        sim = Simulator()
        clearing = ClearingSystem(sim, capacity=1, service_time=1.0)
        payments = [Payment(10.0, submit_time=0.0, deadline=2.0)
                    for _ in range(5)]
        for payment in payments:
            clearing.submit(payment)
        sim.run(until=20.0)
        clearing.stop()
        assert clearing.deadline_compliance() < 1.0

    def test_edf_beats_fcfs_on_mixed_deadlines(self):
        def run(order):
            sim = Simulator()
            clearing = ClearingSystem(sim, capacity=1, service_time=1.0,
                                      order=order)
            # Relaxed payments are created (and thus FCFS-ordered) first.
            relaxed = [Payment(1.0, 0.0, deadline=100.0) for _ in range(3)]
            urgent = [Payment(1.0, 0.0, deadline=3.0) for _ in range(2)]
            for payment in relaxed + urgent:
                clearing.submit(payment)
            sim.run(until=50.0)
            clearing.stop()
            return clearing.deadline_compliance()

        assert run(edf_order) > run(fcfs_order)

    def test_double_submission_rejected(self):
        sim = Simulator()
        clearing = ClearingSystem(sim, capacity=1)
        payment = Payment(1.0, 0.0, deadline=10.0)
        clearing.submit(payment)
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            clearing.submit(payment)

    def test_refund_reenters_pipeline(self):
        sim = Simulator()
        clearing = ClearingSystem(sim, capacity=1, service_time=1.0)
        original = Payment(50.0, 0.0, deadline=10.0, initiator="adyen",
                           provider="ing")
        clearing.submit(original)
        sim.run(until=5.0)
        refund = clearing.refund(original)
        sim.run(until=20.0)
        clearing.stop()
        assert original.status is PaymentStatus.REFUNDED
        assert refund.status is PaymentStatus.CLEARED
        assert refund.refund_of == original.payment_id
        assert refund.initiator == "ing"  # direction reversed
        assert refund.provider == "adyen"

    def test_refund_requires_cleared_payment(self):
        sim = Simulator()
        clearing = ClearingSystem(sim, capacity=1)
        payment = Payment(1.0, 0.0, deadline=10.0)
        with pytest.raises(ValueError):
            clearing.refund(payment)

    def test_clearing_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ClearingSystem(sim, capacity=0)
        with pytest.raises(ValueError):
            ClearingSystem(sim, service_time=0.0)


class TestCompliance:
    def test_checker_validation(self):
        with pytest.raises(ValueError):
            ComplianceChecker(deadline_target=0.0)

    def test_open_api_audit(self):
        market = make_market()
        market.grant_api_access("ing", "adyen")
        report = ComplianceChecker().audit(market)
        assert not report.compliant
        psd2 = report.by_regulation("PSD2")
        assert len(psd2) == 1
        assert psd2[0].subject == "rabo"

    def test_deadline_audit_flags_overloaded_bank(self):
        sim = Simulator()
        clearing = ClearingSystem(sim, capacity=1, service_time=1.0)
        for _ in range(5):
            clearing.submit(Payment(1.0, 0.0, deadline=2.0))
        sim.run(until=20.0)
        clearing.stop()
        market = make_market()
        market.grant_api_access("ing", "adyen")
        market.grant_api_access("rabo", "adyen")
        report = ComplianceChecker(deadline_target=0.99).audit(
            market, [("ing", clearing)])
        subjects = {v.subject for v in report.by_regulation("PSD2")}
        assert "ing" in subjects

    def test_gdpr_minimization(self):
        violations = ComplianceChecker.gdpr_data_minimization(
            [], ["amount", "account_holder_address"])
        assert len(violations) == 1
        assert violations[0].regulation == "GDPR"
        assert "account_holder_address" in violations[0].description

    def test_stress_capacity(self):
        lanes = ComplianceChecker.stress_capacity_needed(
            surge_rate=10.0, service_time=1.0, deadline_slack=2.0)
        assert lanes >= 10  # stability bound
        with pytest.raises(ValueError):
            ComplianceChecker.stress_capacity_needed(0.0, 1.0, 1.0)

    def test_fully_compliant_market(self):
        sim = Simulator()
        clearing = ClearingSystem(sim, capacity=4, service_time=0.5)
        for _ in range(4):
            clearing.submit(Payment(1.0, 0.0, deadline=10.0))
        sim.run(until=5.0)
        clearing.stop()
        market = make_market()
        market.grant_api_access("ing", "adyen")
        market.grant_api_access("rabo", "google")
        report = ComplianceChecker().audit(market, [("ing", clearing)])
        assert report.compliant
        assert report.checks_run == 3
