"""Unit tests for the service-tier admission controller."""

import pytest

from repro.service import ServiceAdmission


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ServiceAdmission(max_queue=0)
        with pytest.raises(ValueError):
            ServiceAdmission(tenant_quota=0)
        with pytest.raises(ValueError):
            ServiceAdmission(retry_after=0.0)

    def test_rejects_bad_slot_counts(self):
        admission = ServiceAdmission()
        with pytest.raises(ValueError):
            admission.admit("a", slots=0)
        with pytest.raises(ValueError):
            admission.release("a", slots=0)


class TestAdmission:
    def test_admits_within_bounds(self):
        admission = ServiceAdmission(max_queue=4, tenant_quota=2)
        decision = admission.admit("acme")
        assert decision.admitted
        assert decision.reason == "ok"
        assert decision.retry_after == 0.0
        assert admission.tenant_occupancy("acme") == 1

    def test_tenant_quota_shed(self):
        admission = ServiceAdmission(max_queue=10, tenant_quota=2,
                                     retry_after=7.0)
        assert admission.admit("acme").admitted
        assert admission.admit("acme").admitted
        decision = admission.admit("acme")
        assert not decision.admitted
        assert decision.reason == "tenant-quota"
        assert decision.retry_after == 7.0
        # Another tenant is unaffected — that is the isolation.
        assert admission.admit("beta").admitted

    def test_queue_full_shed(self):
        admission = ServiceAdmission(max_queue=2, tenant_quota=10)
        assert admission.admit("a").admitted
        assert admission.admit("b").admitted
        decision = admission.admit("c")
        assert not decision.admitted
        assert decision.reason == "queue-full"

    def test_multi_slot_is_all_or_nothing(self):
        admission = ServiceAdmission(max_queue=4, tenant_quota=4)
        assert admission.admit("a", slots=3).admitted
        denied = admission.admit("b", slots=2)
        assert not denied.admitted
        assert denied.reason == "queue-full"
        # Nothing was partially reserved for the denied request.
        assert admission.tenant_occupancy("b") == 0
        assert admission.admit("b", slots=1).admitted

    def test_release_frees_slots(self):
        admission = ServiceAdmission(max_queue=2, tenant_quota=2)
        admission.admit("a", slots=2)
        assert not admission.admit("a").admitted
        admission.release("a")
        assert admission.admit("a").admitted
        admission.release("a", slots=2)
        assert admission.tenant_occupancy("a") == 0

    def test_over_release_raises(self):
        admission = ServiceAdmission()
        admission.admit("a")
        with pytest.raises(ValueError):
            admission.release("a", slots=2)
        with pytest.raises(ValueError):
            admission.release("ghost")


class TestStatistics:
    def test_statistics_shape_and_accounting(self):
        admission = ServiceAdmission(max_queue=2, tenant_quota=1)
        admission.admit("a")
        admission.admit("a")          # tenant quota shed
        admission.admit("b")
        admission.admit("c")          # queue full shed
        stats = admission.statistics()
        assert stats == {
            "offered": 4.0,
            "admitted": 2.0,
            "shed": 2.0,
            "shed_queue_full": 1.0,
            "shed_tenant_quota": 1.0,
            "shed_fraction": 0.5,
            "occupancy": 2.0,
        }

    def test_statistics_empty(self):
        stats = ServiceAdmission().statistics()
        assert stats["offered"] == 0.0
        assert stats["shed_fraction"] == 0.0
