"""The service's federated telemetry plane: store, events, core wiring."""

import json

import pytest

from repro.observability.federation import TelemetrySnapshot
from repro.service import ServiceEventLog, TelemetryStore

from .conftest import inline_service, service_spec


def snapshot_json(run_id: str) -> str:
    return json.dumps({
        "schema": "telemetry-snapshot/v1", "run_id": run_id,
        "fingerprint": "f", "seed": 0,
        "metrics": {"counters": {"s.jobs": 1.0}, "gauges": {},
                    "histograms": {}},
        "profile": None, "spans": {"total": 0, "census": {}}})


class TestTelemetryStore:
    def test_put_get_and_digest_index(self):
        store = TelemetryStore(capacity=4)
        digest = store.put("run-1", snapshot_json("t/run-1"))
        assert store.get("run-1") == (snapshot_json("t/run-1"), digest)
        assert store.by_digest(digest) == snapshot_json("t/run-1")
        assert "run-1" in store and len(store) == 1

    def test_lru_eviction_drops_digest_index(self):
        store = TelemetryStore(capacity=2)
        first = store.put("run-1", snapshot_json("t/run-1"))
        store.put("run-2", snapshot_json("t/run-2"))
        store.put("run-3", snapshot_json("t/run-3"))
        assert store.get("run-1") is None
        assert store.by_digest(first) is None
        assert store.evictions == 1
        assert store.statistics()["size"] == 2.0

    def test_fleet_merges_retained_snapshots(self):
        store = TelemetryStore()
        assert store.fleet() is None
        store.put("run-2", snapshot_json("t/run-2"))
        store.put("run-1", snapshot_json("t/run-1"))
        fleet = store.fleet()
        assert fleet["runs"] == ["t/run-1", "t/run-2"]
        assert fleet["metrics"]["counters"] == {"s.jobs": 2.0}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TelemetryStore(capacity=0)


class TestServiceEventLog:
    def test_emit_sequences_and_drops_none_ids(self):
        log = ServiceEventLog()
        log.emit("job-admitted", 1.0, tenant="a", job_id="run-1",
                 sweep_id=None)
        log.emit("job-done", 2.0, tenant="a", job_id="run-1")
        records = log.records()
        assert [record["seq"] for record in records] == [0, 1]
        assert "sweep_id" not in records[0]

    def test_bounded_retention_keeps_sequence(self):
        log = ServiceEventLog(capacity=2)
        for index in range(5):
            log.emit("tick", float(index))
        records = log.records()
        assert len(records) == 2
        assert [record["seq"] for record in records] == [3, 4]

    def test_jsonl_rendering_is_deterministic(self):
        log = ServiceEventLog()
        log.emit("job-admitted", 0.0, tenant="a", job_id="run-1")
        lines = log.to_jsonl().splitlines()
        assert lines == ['{"job_id":"run-1","kind":"job-admitted",'
                         '"seq":0,"tenant":"a","time":0.0}']


class TestObservedService:
    def run_one(self, service, spec):
        outcome = service.submit(spec.to_json(), tenant="acme")
        assert outcome.status == 202
        service.pump()
        return outcome.job_id

    def test_telemetry_captured_under_causal_run_id(self):
        service = inline_service(observe=True)
        job_id = self.run_one(service, service_spec())
        outcome = service.run_telemetry(job_id)
        assert outcome.status == 200
        snapshot = TelemetrySnapshot.from_json(outcome.result_json)
        assert snapshot.run_id == f"acme/{job_id}"
        assert service.telemetry_by_digest(
            outcome.result_digest).status == 200
        assert service.metrics_snapshot()["counters"][
            "service.telemetry_captured"] == 1.0

    def test_result_bytes_unchanged_by_observation(self):
        spec = service_spec()
        observed = inline_service(observe=True)
        plain = inline_service()
        first = self.run_one(observed, spec)
        second = self.run_one(plain, spec)
        assert (observed.job_result(first).result_digest
                == plain.job_result(second).result_digest)

    def test_unobserved_service_has_no_telemetry(self):
        service = inline_service()
        job_id = self.run_one(service, service_spec())
        outcome = service.run_telemetry(job_id)
        assert outcome.status == 404
        assert service.fleet_telemetry() is None

    def test_pending_job_telemetry_is_409(self):
        service = inline_service(observe=True)
        outcome = service.submit(service_spec().to_json())
        assert service.run_telemetry(outcome.job_id).status == 409
        assert service.run_telemetry("ghost").status == 404

    def test_cache_hit_job_has_no_telemetry(self):
        """A cache-served submission never executed: nothing to observe."""
        service = inline_service(observe=True)
        spec = service_spec()
        self.run_one(service, spec)
        again = service.submit(spec.to_json(), tenant="acme")
        assert again.status == 200 and again.cached

    def test_openmetrics_covers_both_planes(self):
        service = inline_service(observe=True)
        self.run_one(service, service_spec())
        text = service.metrics_openmetrics()
        assert text.endswith("# EOF\n")
        assert 'plane="service"' in text
        assert 'plane="fleet"' in text
        assert "repro_service_telemetry_captured_total" in text
        assert "repro_scheduler_tasks_completed_total" in text

    def test_event_log_threads_causal_ids(self):
        service = inline_service(observe=True)
        job_id = self.run_one(service, service_spec())
        records = [json.loads(line)
                   for line in service.events_jsonl().splitlines()]
        kinds = [record["kind"] for record in records]
        assert kinds == ["job-admitted", "run-observed", "job-done"]
        assert all(record["job_id"] == job_id for record in records)
        assert all(record["tenant"] == "acme" for record in records)
        assert records[1]["run_id"] == f"acme/{job_id}"
        digest = service.run_telemetry(job_id).result_digest
        assert records[1]["telemetry_digest"] == digest

    def test_sweep_children_federate_into_fleet(self):
        service = inline_service(observe=True)
        outcome = service.submit_sweep(service_spec().to_json(),
                                       {"seeds": [1, 2]}, tenant="acme")
        assert outcome.status == 202
        service.pump()
        fleet = service.fleet_telemetry()
        assert fleet is not None
        assert len(fleet["runs"]) == 2
        assert all(run_id.startswith("acme/run-")
                   for run_id in fleet["runs"])
        status = service.sweep_status(outcome.sweep_id)
        assert status["done"]
