"""Unit tests for the fingerprint-keyed result cache."""

import pytest

from repro.service import ResultCache


class TestResultCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("fp") is None
        cache.put("fp", '{"r": 1}', "d1")
        assert cache.get("fp") == '{"r": 1}'
        assert "fp" in cache
        assert len(cache) == 1
        stats = cache.statistics()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["hit_fraction"] == 0.5

    def test_by_digest(self):
        cache = ResultCache()
        cache.put("fp", '{"r": 1}', "d1")
        assert cache.by_digest("d1") == '{"r": 1}'
        assert cache.by_digest("ghost") is None

    def test_put_is_idempotent(self):
        cache = ResultCache()
        cache.put("fp", '{"r": 1}', "d1")
        cache.put("fp", '{"r": 1}', "d1")
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", "ra", "da")
        cache.put("b", "rb", "db")
        assert cache.get("a") == "ra"   # refresh a; b is now LRU
        cache.put("c", "rc", "dc")
        assert "b" not in cache
        assert cache.get("a") == "ra"
        assert cache.get("c") == "rc"
        assert cache.by_digest("db") is None
        assert cache.statistics()["evictions"] == 1.0
