"""The service core: lifecycle, resilience path, and determinism."""

import json

import pytest

from repro.resilience import BreakerState
from repro.scenario import SweepRunner
from repro.service import (JobState, ScenarioService, ServiceClock,
                           ServiceConfig)

from .conftest import inline_service, service_spec


class TestServiceClock:
    def test_advances_monotonically(self):
        clock = ServiceClock()
        assert clock.now == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestSubmitLifecycle:
    def test_submit_pump_complete(self, service, spec):
        outcome = service.submit(spec.to_json(), tenant="acme")
        assert outcome.status == 202
        assert outcome.job_id == "run-000001"
        assert outcome.fingerprint == spec.fingerprint()
        assert service.queue_depth == 1
        service.pump()
        result = service.job_result(outcome.job_id)
        assert result.status == 200
        # The served digest is byte-identical to a direct serial run —
        # the determinism contract that makes the cache provably right.
        assert result.result_digest == spec.run().digest()
        status = service.job_status(outcome.job_id)
        assert status["state"] == "done"
        assert [state for _, state in status["transitions"]] == [
            "queued", "running", "done"]

    def test_resubmit_is_cache_hit(self, service, spec):
        first = service.submit(spec.to_json())
        service.pump()
        digest = service.job_result(first.job_id).result_digest
        again = service.submit(spec.to_json())
        assert again.status == 200
        assert again.cached
        assert again.result_digest == digest
        assert service.cache.statistics()["hits"] == 1.0
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["service.cache_hits"] == 1.0

    def test_result_by_digest(self, service, spec):
        service.submit(spec.to_json())
        service.pump()
        digest = service.job_result("run-000001").result_digest
        fetched = service.result_by_digest(digest)
        assert fetched.status == 200
        assert fetched.result_json is not None
        assert service.result_by_digest("nope").status == 404

    def test_invalid_spec_rejected(self, service):
        outcome = service.submit("{not json")
        assert outcome.status == 400
        assert "invalid scenario spec" in (outcome.error or "")
        assert service.submit('{"valid": "json"}').status == 400
        snapshot = service.metrics_snapshot()
        assert (snapshot["counters"]["service.rejected_invalid"]
                == 2.0)

    def test_unknown_ids(self, service):
        assert service.job_status("ghost") is None
        assert service.job_result("ghost").status == 404
        assert service.sweep_status("ghost") is None
        assert service.sweep_result("ghost").status == 404

    def test_pending_result_says_retry(self, service, spec):
        outcome = service.submit(spec.to_json())
        pending = service.job_result(outcome.job_id)
        assert pending.status == 409
        assert pending.retry_after > 0


class TestShedding:
    def test_tenant_quota_shed(self):
        service = inline_service(max_queue=10, tenant_quota=1)
        first = service.submit(service_spec(seed=1).to_json(),
                               tenant="acme")
        assert first.status == 202
        shed = service.submit(service_spec(seed=2).to_json(),
                              tenant="acme")
        assert shed.status == 429
        assert shed.reason == "tenant-quota"
        assert shed.retry_after > 0
        # Isolation: another tenant still gets in.
        assert service.submit(service_spec(seed=3).to_json(),
                              tenant="beta").status == 202

    def test_queue_full_shed_and_recovery(self):
        service = inline_service(max_queue=2, tenant_quota=2)
        assert service.submit(service_spec(seed=1).to_json()).status == 202
        assert service.submit(service_spec(seed=2).to_json()).status == 202
        shed = service.submit(service_spec(seed=3).to_json())
        assert shed.status == 429
        assert shed.reason == "queue-full"
        service.pump()  # drain; slots released at terminal states
        assert service.submit(service_spec(seed=3).to_json()).status == 202


class TestRetriesAndBreaker:
    def test_crash_is_retried_to_identical_digest(self, spec):
        service = inline_service(crash_plan={spec.fingerprint(): 1})
        outcome = service.submit(spec.to_json())
        service.pump()
        result = service.job_result(outcome.job_id)
        assert result.status == 200
        assert result.result_digest == spec.run().digest()
        job = service.jobs.get(outcome.job_id)
        assert job.attempts == 2
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["service.retries"] == 1.0
        assert (snapshot["counters"]["service.worker_failures"]
                == 1.0)

    def test_attempts_exhausted_fails_gracefully(self, spec):
        service = inline_service(max_attempts=2,
                                 crash_plan={spec.fingerprint(): 5})
        outcome = service.submit(spec.to_json())
        service.pump()
        job = service.jobs.get(outcome.job_id)
        assert job.state is JobState.FAILED
        assert "attempts exhausted" in job.error
        result = service.job_result(outcome.job_id)
        assert result.status == 410
        snapshot = service.metrics_snapshot()
        assert (snapshot["counters"]["service.requests_failed"]
                == 1.0)

    def test_retry_budget_exhaustion_denies_retry(self, spec):
        service = inline_service(retry_budget_initial=0.0,
                                 retry_budget_ratio=0.0,
                                 crash_plan={spec.fingerprint(): 1})
        outcome = service.submit(spec.to_json())
        service.pump()
        job = service.jobs.get(outcome.job_id)
        assert job.state is JobState.FAILED
        assert "retry budget exhausted" in job.error
        snapshot = service.metrics_snapshot()
        assert (snapshot["counters"]["service.retries_denied"]
                == 1.0)
        stats = service.tenant_stats("public")
        assert stats["retry_budget"]["denied"] == 1

    def test_breaker_transitions_are_seed_pinned(self):
        """CLOSED -> OPEN -> HALF_OPEN -> CLOSED on the service clock.

        Spec-driven and seed-pinned: three seed-variant specs, the
        first two with one injected crash each, trip a threshold-2
        breaker; the exact transition times are asserted, which only
        works because every clock step is deterministic.
        """
        specs = [service_spec(seed=seed) for seed in (1, 2, 3)]
        service = inline_service(
            breaker_threshold=2, breaker_recovery=3.0,
            crash_plan={specs[0].fingerprint(): 1,
                        specs[1].fingerprint(): 1})
        for spec in specs:
            assert service.submit(spec.to_json()).status == 202
        service.pump_once()          # t=0: crash #1
        service.pump_once()          # t=1: crash #2 -> breaker opens
        rejected = service.submit(service_spec(seed=9).to_json())
        assert rejected.status == 503
        assert rejected.reason == "breaker-open"
        assert rejected.retry_after > 0
        service.pump()               # waits out recovery, then drains
        assert [(time, state.value) for time, state in
                service.breaker.transitions] == [
            (1.0, "open"), (4.0, "half-open"), (4.0, "closed")]
        assert service.breaker.state is BreakerState.CLOSED
        for index in range(3):
            job = service.jobs.get(f"run-{index + 1:06d}")
            assert job.state is JobState.DONE
            assert job.result_digest == specs[index].run().digest()

    def test_deadline_expires_stale_jobs(self):
        service = inline_service(queue_deadline=2.0)
        for seed in range(1, 6):
            service.submit(service_spec(seed=seed).to_json())
        service.pump()
        states = [service.jobs.get(f"run-{i:06d}").state
                  for i in range(1, 6)]
        assert states == [JobState.DONE, JobState.DONE, JobState.DONE,
                          JobState.EXPIRED, JobState.EXPIRED]
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"]["service.expired"] == 2.0
        expired = service.job_result("run-000004")
        assert expired.status == 410
        assert expired.reason == "expired"


class TestSweeps:
    def test_sweep_digest_matches_offline_runner(self, spec):
        service = inline_service()
        outcome = service.submit_sweep(spec.to_json(),
                                       {"seeds": [1, 2]})
        assert outcome.status == 202
        assert outcome.extra["points"] == 2
        service.pump()
        status = service.sweep_status(outcome.sweep_id)
        assert status["done"]
        assert status["states"]["done"] == 2
        result = service.sweep_result(outcome.sweep_id)
        assert result.status == 200
        assert result.extra["complete"]
        offline = SweepRunner(spec).sweep(seeds=[1, 2])
        assert result.result_digest == offline.digest()

    def test_sweep_children_ride_the_cache(self, spec):
        service = inline_service()
        single = service.submit(spec.override({"seed": 1}).to_json())
        service.pump()
        assert service.job_result(single.job_id).status == 200
        outcome = service.submit_sweep(spec.to_json(), {"seeds": [1, 2]})
        cached_child = service.jobs.get(
            service.sweep_status(outcome.sweep_id)["children"][0])
        assert cached_child.state is JobState.DONE
        assert cached_child.cached
        service.pump()
        result = service.sweep_result(outcome.sweep_id)
        offline = SweepRunner(spec).sweep(seeds=[1, 2])
        assert result.result_digest == offline.digest()

    def test_sweep_gap_accounting(self, spec):
        crashed = spec.override({"seed": 2})
        service = inline_service(
            max_attempts=1, crash_plan={crashed.fingerprint(): 5})
        outcome = service.submit_sweep(spec.to_json(), {"seeds": [1, 2]})
        service.pump()
        result = service.sweep_result(outcome.sweep_id)
        assert result.status == 200
        assert not result.extra["complete"]
        assert result.extra["failed_points"] == 1
        report = json.loads(result.result_json)
        assert [entry["index"] for entry in report["failed"]] == [1]
        assert "crash" in report["failed"][0]["error"]
        # Slots were released for failed children too.
        assert service.admission.statistics()["occupancy"] == 0.0

    def test_sweep_admission_is_atomic(self, spec):
        service = inline_service(max_queue=3)
        shed = service.submit_sweep(spec.to_json(),
                                    {"seeds": [1, 2, 3, 4]})
        assert shed.status == 429
        assert service.queue_depth == 0
        assert service.admission.statistics()["occupancy"] == 0.0

    def test_sweep_pending_result(self, spec):
        service = inline_service()
        outcome = service.submit_sweep(spec.to_json(), {"seeds": [1]})
        pending = service.sweep_result(outcome.sweep_id)
        assert pending.status == 409
        assert pending.retry_after > 0


class TestIntrospection:
    def test_health_document(self, service, spec):
        service.submit(spec.to_json())
        health = service.health()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 1
        assert health["breaker"] == "closed"
        assert health["jobs"]["queued"] == 1
        service.pump()
        assert service.health()["jobs"]["done"] == 1

    def test_slo_report_green_after_clean_run(self, service, spec):
        service.submit(spec.to_json())
        service.pump()
        report = service.slo_report()
        availability = report["slo"]["service-availability"]
        assert availability["ok"] == 1.0
        assert availability["bad"] == 0.0
        assert report["alerts"] == []

    def test_metrics_snapshot_has_service_namespace(self, service):
        counters = service.metrics_snapshot()["counters"]
        for name in ("service.submissions", "service.requests_ok",
                     "service.requests_failed", "service.retries",
                     "service.expired"):
            assert name in counters

    def test_default_executor_is_pooled(self):
        service = ScenarioService(ServiceConfig(workers=1))
        try:
            assert service.executor.workers == 1
        finally:
            service.close()
