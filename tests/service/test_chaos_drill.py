"""The acceptance drill: the service survives its own chaos script.

This is the PR's acceptance criterion as a test: under a deterministic
overload burst plus injected worker crashes, the service sheds load
politely (429/503 with ``Retry-After``), completes every admitted run
with a digest byte-identical to serial execution, and keeps its
availability SLO within budget with no alert left firing.
"""

import pytest

from repro.service import DrillReport, ServiceChaosDrill

from .conftest import service_spec


@pytest.fixture(scope="module", name="report")
def report_fixture() -> DrillReport:
    return ServiceChaosDrill(service_spec()).run()


class TestChaosDrill:
    def test_overload_sheds_with_retry_after(self, report):
        assert report.shed_429 > 0
        assert report.retry_after_violations == 0

    def test_breaker_rejects_during_open_window(self, report):
        assert report.breaker_503 >= 1

    def test_crashes_were_injected_and_retried(self, report):
        assert report.injected_crashes >= 3
        assert report.retries >= report.injected_crashes

    def test_every_admitted_run_completed(self, report):
        assert report.admitted > 0
        assert report.completed == report.admitted
        assert report.failed == 0

    def test_digests_byte_identical_to_serial_runs(self, report):
        assert report.digest_mismatches == []

    def test_post_storm_cache_hit(self, report):
        assert report.cache_hit_ok

    def test_availability_slo_within_budget(self, report):
        assert report.slo_ok
        assert report.availability["bad"] == 0.0
        assert report.availability["budget_consumed"] <= 1.0
        assert report.alerts_active == 0

    def test_overall_verdict(self, report):
        assert report.passed
        assert report.to_dict()["passed"] is True

    def test_drill_is_deterministic(self, report):
        again = ServiceChaosDrill(service_spec()).run()
        assert again.to_dict() == report.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceChaosDrill(service_spec(), tenants=())
        with pytest.raises(ValueError):
            ServiceChaosDrill(service_spec(), crash_points=0)
