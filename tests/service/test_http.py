"""HTTP transport round trips against an in-process server.

Every server here uses the inline executor (no process churn), a
loopback socket on an ephemeral port, and the stdlib client wrapper —
the same path ``python -m repro serve --inline`` exercises.
"""

import json
import time

import pytest

from repro.service import (InlineExecutor, ScenarioService, ServiceClient,
                           ServiceConfig, ServiceError, ServiceHTTPServer)

from .conftest import service_spec


@pytest.fixture(name="server")
def server_fixture():
    service = ScenarioService(ServiceConfig(),
                              executor=InlineExecutor())
    server = ServiceHTTPServer(service).start()
    yield server
    server.stop()


@pytest.fixture(name="client")
def client_fixture(server) -> ServiceClient:
    return ServiceClient(server.address, tenant="pytest")


class TestRunLifecycle:
    def test_submit_wait_result(self, client):
        spec = service_spec()
        outcome = client.submit(spec.to_json())
        assert outcome["status"] == 202
        digest, result_json = client.wait(outcome["job_id"], timeout=60)
        assert digest == spec.run().digest()
        assert json.loads(result_json)["name"] == "service-unit"
        events = client.events(outcome["job_id"])
        assert [state for _, state in events["transitions"]] == [
            "queued", "running", "done"]

    def test_cached_resubmit_identical_digest(self, client):
        spec = service_spec()
        first = client.submit(spec.to_json())
        digest, _ = client.wait(first["job_id"], timeout=60)
        again = client.submit(spec.to_json())
        assert again["status"] == 200
        assert again["cached"] is True
        assert again["result_digest"] == digest
        assert client.result_by_digest(digest) != ""

    def test_invalid_spec_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("{not json")
        assert excinfo.value.status == 400
        assert excinfo.value.retry_after == 0.0

    def test_unknown_routes_and_ids(self, client):
        for call in (lambda: client.status("ghost"),
                     lambda: client.result("ghost"),
                     lambda: client.sweep_status("ghost"),
                     lambda: client.result_by_digest("ghost")):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_introspection_endpoints(self, client):
        health = client.health()
        assert health["status"] == "ok"
        metrics = client.metrics()
        assert "service.submissions" in metrics["counters"]
        slo = client.slo()
        assert "service-availability" in slo["slo"]
        stats = client.tenant_stats()
        assert stats["tenant"] == "pytest"


class TestSweepLifecycle:
    def test_sweep_round_trip(self, client):
        spec = service_spec()
        outcome = client.submit_sweep(spec.to_json(), {"seeds": [1, 2]})
        assert outcome["status"] == 202
        digest = None
        for _ in range(600):
            status = client.sweep_status(outcome["sweep_id"])
            if status["done"]:
                digest, report_json = client.sweep_result(
                    outcome["sweep_id"])
                break
            time.sleep(0.01)
        assert digest, "sweep did not finish"
        report = json.loads(report_json)
        assert len(report["runs"]) == 2
        assert "failed" not in report


class TestMetricsNegotiation:
    def test_default_format_is_json(self, client):
        metrics = client.metrics()
        assert "service.submissions" in metrics["counters"]

    def test_openmetrics_format_and_content_type(self, client):
        headers, text = client._call(
            "GET", "/v1/metrics?format=openmetrics")
        assert headers["Content-Type"].startswith(
            "application/openmetrics-text")
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_service_submissions counter" in text

    def test_unknown_format_is_406_with_json_body(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._call("GET", "/v1/metrics?format=xml")
        assert excinfo.value.status == 406
        assert excinfo.value.body["supported"] == ["json", "openmetrics"]
        assert "xml" in excinfo.value.body["error"]


class TestTelemetryRoutes:
    @pytest.fixture(name="observed")
    def observed_fixture(self):
        service = ScenarioService(ServiceConfig(observe=True),
                                  executor=InlineExecutor())
        server = ServiceHTTPServer(service).start()
        try:
            yield ServiceClient(server.address, tenant="pytest")
        finally:
            server.stop()

    def test_run_telemetry_round_trip(self, observed):
        outcome = observed.submit(service_spec().to_json())
        observed.wait(outcome["job_id"], timeout=60)
        digest, telemetry_json = observed.run_telemetry(
            outcome["job_id"])
        snapshot = json.loads(telemetry_json)
        assert snapshot["run_id"] == f"pytest/{outcome['job_id']}"
        assert observed.telemetry_by_digest(digest) == telemetry_json
        events = observed.service_events()
        assert [e["kind"] for e in events] == [
            "job-admitted", "run-observed", "job-done"]
        assert events[1]["telemetry_digest"] == digest

    def test_unobserved_server_has_no_telemetry(self, client):
        outcome = client.submit(service_spec().to_json())
        client.wait(outcome["job_id"], timeout=60)
        with pytest.raises(ServiceError) as excinfo:
            client.run_telemetry(outcome["job_id"])
        assert excinfo.value.status == 404

    def test_openmetrics_exposes_fleet_plane(self, observed):
        outcome = observed.submit(service_spec().to_json())
        observed.wait(outcome["job_id"], timeout=60)
        text = observed.metrics_openmetrics()
        assert 'plane="fleet"' in text
        assert "repro_scheduler_tasks_completed_total" in text


class TestDegradation:
    def test_429_carries_retry_after_header(self):
        """Deterministic shed: no dispatcher, so the queue stays full."""
        service = ScenarioService(
            ServiceConfig(max_queue=8, tenant_quota=1),
            executor=InlineExecutor())
        server = ServiceHTTPServer(service).start(dispatch=False)
        try:
            client = ServiceClient(server.address, tenant="greedy")
            assert client.submit(
                service_spec(seed=1).to_json())["status"] == 202
            with pytest.raises(ServiceError) as excinfo:
                client.submit(service_spec(seed=2).to_json())
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "tenant-quota"
            assert excinfo.value.retry_after > 0
        finally:
            server.stop()
