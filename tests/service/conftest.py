"""Shared service fixtures: a fast spec and inline-executor services."""

import pytest

from repro.scenario import (ClusterSpec, ScenarioSpec, TopologySpec,
                            WorkloadSpec)
from repro.service import InlineExecutor, ScenarioService, ServiceConfig


def service_spec(seed: int = 5) -> ScenarioSpec:
    """A small, failure-free spec that runs in well under a second."""
    return ScenarioSpec(
        name="service-unit",
        seed=seed,
        topology=TopologySpec(
            clusters=(ClusterSpec("s", 4, cores=2, machines_per_rack=2),)),
        workload=WorkloadSpec("uniform-tasks", {
            "n_tasks": 8, "runtime": [5.0, 15.0], "cores": 1,
            "submit": [0.0, 10.0], "prefix": "w"}),
        horizon=150.0)


def inline_service(**overrides) -> ScenarioService:
    """A deterministic service on the inline executor (no processes)."""
    crash_plan = overrides.pop("crash_plan", None)
    config = ServiceConfig(**overrides)
    return ScenarioService(config, executor=InlineExecutor(crash_plan))


@pytest.fixture(name="spec")
def spec_fixture() -> ScenarioSpec:
    return service_spec()


@pytest.fixture(name="service")
def service_fixture() -> ScenarioService:
    return inline_service()
