"""Unit tests for job records and the job table."""

import pytest

from repro.service import Job, JobState, JobTable


def make_job(table: JobTable | None = None) -> Job:
    table = table if table is not None else JobTable()
    return table.add(Job(table.new_id(), "acme", "{}", "fp",
                         "unit", submitted_at=0.0))


class TestJob:
    def test_lifecycle_records_history(self):
        job = make_job()
        assert job.state is JobState.QUEUED
        job.transition(JobState.RUNNING, 1.0)
        assert job.started_at == 1.0
        job.transition(JobState.DONE, 3.0)
        assert job.finished_at == 3.0
        assert job.transitions == [(0.0, "queued"), (1.0, "running"),
                                   (3.0, "done")]

    def test_requeue_keeps_first_start(self):
        job = make_job()
        job.transition(JobState.RUNNING, 1.0)
        job.transition(JobState.QUEUED, 2.0)
        job.transition(JobState.RUNNING, 4.0)
        assert job.started_at == 1.0

    def test_terminal_states_are_final(self):
        job = make_job()
        job.transition(JobState.FAILED, 1.0)
        with pytest.raises(RuntimeError):
            job.transition(JobState.RUNNING, 2.0)

    def test_terminal_property(self):
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.EXPIRED.terminal
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal

    def test_status_document(self):
        job = make_job()
        status = job.status()
        assert status["job_id"] == job.job_id
        assert status["state"] == "queued"
        assert status["transitions"] == [[0.0, "queued"]]


class TestJobTable:
    def test_ids_are_sequential_per_table(self):
        table = JobTable()
        assert table.new_id() == "run-000001"
        assert table.new_id("sweep") == "sweep-000002"

    def test_duplicate_ids_rejected(self):
        table = JobTable()
        job = make_job(table)
        with pytest.raises(ValueError):
            table.add(Job(job.job_id, "b", "{}", "fp", "dup",
                          submitted_at=0.0))

    def test_lookup_and_counts(self):
        table = JobTable()
        job = make_job(table)
        assert table.get(job.job_id) is job
        assert table.get("ghost") is None
        assert len(table) == 1
        job.transition(JobState.DONE, 1.0)
        assert table.counts()["done"] == 1
        assert table.counts()["queued"] == 0
