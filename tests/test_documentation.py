"""Meta-tests: the documentation contract of deliverable (e).

Every public module, class, function, and method in :mod:`repro` must
carry a docstring, and every package must re-export a coherent
``__all__``.  These tests make the "doc comments on every public item"
requirement mechanical rather than aspirational.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
EXAMPLES_DIR = REPO_ROOT / "examples"


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def public_objects(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_public_objects_have_docstrings(module):
    undocumented = [name for name, obj in public_objects(module)
                    if not (obj.__doc__ and obj.__doc__.strip())]
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_public_methods_have_docstrings(module):
    undocumented = []
    for class_name, cls in public_objects(module):
        if not inspect.isclass(cls):
            continue
        for method_name, member in inspect.getmembers(cls):
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(member)
                    or isinstance(member, property)):
                continue
            owner = getattr(member, "__module__", None) or getattr(
                getattr(member, "fget", None), "__module__", None)
            if not (owner or "").startswith("repro"):
                continue
            doc = (member.__doc__ if not isinstance(member, property)
                   else (member.fget.__doc__ if member.fget else None))
            if not (doc and doc.strip()):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")


@pytest.mark.parametrize("module", [m for m in MODULES
                                    if hasattr(m, "__all__")],
                         ids=lambda m: m.__name__)
def test_all_entries_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), (
            f"{module.__name__}.__all__ lists missing name {name!r}")


# ---------------------------------------------------------------------------
# Doc-coverage contract: the handbook must stay connected.  Every page
# under docs/ is reachable from the README, and every example script is
# mentioned in at least one document, so neither can silently rot.
# ---------------------------------------------------------------------------


def doc_pages():
    return sorted(DOCS_DIR.glob("*.md"))


def example_scripts():
    return sorted(p for p in EXAMPLES_DIR.glob("*.py")
                  if p.name != "__init__.py")


@pytest.mark.parametrize("page", doc_pages(), ids=lambda p: p.name)
def test_readme_links_every_doc_page(page):
    readme = (REPO_ROOT / "README.md").read_text()
    assert f"docs/{page.name}" in readme, (
        f"docs/{page.name} is not linked from README.md — add it to the"
        " documentation index")


@pytest.mark.parametrize("script", example_scripts(),
                         ids=lambda p: p.name)
def test_every_example_is_mentioned_in_a_doc(script):
    corpus = (REPO_ROOT / "README.md").read_text()
    for page in doc_pages():
        corpus += page.read_text()
    assert script.name in corpus, (
        f"examples/{script.name} is not mentioned in README.md or any"
        " docs/*.md page")


def test_readme_relative_links_resolve():
    """Every relative markdown link in the README points at a real file."""
    readme = (REPO_ROOT / "README.md").read_text()
    broken = []
    for target in re.findall(r"\]\(([^)#]+)(?:#[^)]*)?\)", readme):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (REPO_ROOT / target).exists():
            broken.append(target)
    assert not broken, f"README.md links to missing files: {broken}"
