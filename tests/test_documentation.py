"""Meta-tests: the documentation contract of deliverable (e).

Every public module, class, function, and method in :mod:`repro` must
carry a docstring, and every package must re-export a coherent
``__all__``.  These tests make the "doc comments on every public item"
requirement mechanical rather than aspirational.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def public_objects(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_public_objects_have_docstrings(module):
    undocumented = [name for name, obj in public_objects(module)
                    if not (obj.__doc__ and obj.__doc__.strip())]
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_public_methods_have_docstrings(module):
    undocumented = []
    for class_name, cls in public_objects(module):
        if not inspect.isclass(cls):
            continue
        for method_name, member in inspect.getmembers(cls):
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(member)
                    or isinstance(member, property)):
                continue
            owner = getattr(member, "__module__", None) or getattr(
                getattr(member, "fget", None), "__module__", None)
            if not (owner or "").startswith("repro"):
                continue
            doc = (member.__doc__ if not isinstance(member, property)
                   else (member.fget.__doc__ if member.fget else None))
            if not (doc and doc.strip()):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}")


@pytest.mark.parametrize("module", [m for m in MODULES
                                    if hasattr(m, "__all__")],
                         ids=lambda m: m.__name__)
def test_all_entries_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), (
            f"{module.__name__}.__all__ lists missing name {name!r}")
