"""Unit tests: counters, gauges, and fixed-bucket histogram edge cases."""

import math

import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_and_rejects_negative():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(4.0)
    gauge.add(-6.0)
    assert gauge.value == -2.0


def test_histogram_boundary_hit_is_upper_inclusive():
    """A value exactly on a boundary counts in the bucket it bounds."""
    histogram = Histogram("h", boundaries=(1.0, 2.0, 4.0))
    histogram.observe(1.0)   # == first boundary
    histogram.observe(2.0)   # == second boundary
    histogram.observe(1.5)
    assert histogram.counts == [1, 2, 0, 0]


def test_histogram_overflow_and_underflow_buckets():
    histogram = Histogram("h", boundaries=(1.0, 2.0))
    histogram.observe(-5.0)      # below every boundary: first bucket
    histogram.observe(1e12)      # beyond the last: overflow bucket
    assert histogram.counts == [1, 0, 1]
    assert histogram.count == 2
    assert histogram.sum == pytest.approx(1e12 - 5.0)


def test_histogram_rejects_bad_boundaries_and_nan():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=())
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(2.0, 1.0))
    histogram = Histogram("h", boundaries=(1.0,))
    with pytest.raises(ValueError):
        histogram.observe(float("nan"))


def test_histogram_quantile_estimates():
    histogram = Histogram("h", boundaries=(1.0, 10.0, 100.0))
    for value in (0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    assert histogram.quantile(0.5) == 1.0
    assert histogram.quantile(1.0) == 100.0
    assert histogram.quantile(0.0) == 1.0
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
    assert math.isnan(Histogram("e", boundaries=(1.0,)).quantile(0.5))


def test_histogram_quantile_overflow_reports_max_seen():
    histogram = Histogram("h", boundaries=(1.0,))
    histogram.observe(7.0)
    assert histogram.quantile(0.9) == 7.0


def test_registry_get_or_create_shares_instruments():
    registry = MetricsRegistry()
    a = registry.counter("x")
    b = registry.counter("x")
    assert a is b
    assert len(registry) == 1
    assert "x" in registry


def test_registry_kind_collision_is_an_error():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_is_sorted_and_json_able():
    import json

    registry = MetricsRegistry()
    registry.counter("z.total").inc(3)
    registry.gauge("a.level").set(1.5)
    registry.histogram("m.lat", boundaries=(1.0, 2.0)).observe(1.2)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["counters", "gauges", "histograms"]
    assert snapshot["counters"] == {"z.total": 3.0}
    assert snapshot["gauges"] == {"a.level": 1.5}
    entry = snapshot["histograms"]["m.lat"]
    assert entry["counts"] == [0, 1, 0]
    assert entry["min"] == entry["max"] == 1.2
    json.dumps(snapshot)  # must not raise


def test_empty_histogram_snapshot_has_no_nonfinite_fields():
    registry = MetricsRegistry()
    registry.histogram("empty", boundaries=(1.0,))
    entry = registry.snapshot()["histograms"]["empty"]
    assert "min" not in entry and "max" not in entry
    assert entry["count"] == 0


def test_default_buckets_are_strictly_increasing():
    assert all(b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))
