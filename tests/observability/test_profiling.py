"""Profiler tests: classification rules and run-loop attribution."""

from repro.observability import Observer, SubsystemProfiler
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import Task


def test_default_classification_rules():
    profiler = SubsystemProfiler()
    assert profiler.classify("exec-t1") == "datacenter"
    assert profiler.classify("scheduler-loop") == "scheduling"
    assert profiler.classify("hedge-watch-t1") == "scheduling"
    assert profiler.classify("faas-resize") == "faas"
    assert profiler.classify("guarded-resize") == "faas"
    assert profiler.classify("autoscaler-react") == "autoscaling"
    assert profiler.classify("failure-injector") == "resilience"
    assert profiler.classify("repair@60") == "resilience"
    assert profiler.classify("arrivals") == "workload"
    assert profiler.classify("") == "kernel"
    assert profiler.classify("mystery-process") == "other"


def test_custom_rules_override():
    profiler = SubsystemProfiler(rules=(("my-", "mine"),))
    assert profiler.classify("my-thing") == "mine"
    assert profiler.classify("exec-t1") == "other"


def _run_scenario(profiling: bool):
    sim = Simulator()
    observer = Observer(profiling=profiling)
    observer.attach(sim)
    datacenter = Datacenter(sim, [homogeneous_cluster(
        "c", 4, MachineSpec(cores=8))])
    scheduler = ClusterScheduler(sim, datacenter)
    for i in range(12):
        scheduler.submit(Task(runtime=10.0, cores=2, name=f"t{i}"))
    sim.run(until=10_000.0)
    return sim, scheduler, observer


def test_profiled_run_attributes_events_and_sim_time():
    sim, scheduler, observer = _run_scenario(profiling=True)
    profiler = observer.profiler
    report = profiler.report()
    assert set(report) >= {"datacenter", "scheduling"}
    total_events = sum(entry["events"] for entry in report.values())
    assert total_events == sim.events_processed
    # All clock advances are attributed somewhere, so per-subsystem
    # sim-time sums to the time of the last processed event.
    assert sum(e["sim_time"] for e in report.values()) <= 10_000.0
    assert profiler.run_wall_time > 0.0
    wall = profiler.wall_report()
    assert set(wall) == set(report)
    assert all(v >= 0.0 for v in wall.values())


def test_profiled_report_is_deterministic_across_runs():
    _, _, first = _run_scenario(profiling=True)
    _, _, second = _run_scenario(profiling=True)
    assert first.profiler.report() == second.profiler.report()


def test_profiled_run_matches_unprofiled_outcome():
    """The instrumented loop must not change simulation results."""
    _, profiled, _ = _run_scenario(profiling=True)
    _, plain, _ = _run_scenario(profiling=False)
    assert profiled.statistics() == plain.statistics()
    assert profiled.makespan() == plain.makespan()


def test_step_dispatches_to_profiler():
    sim = Simulator()
    observer = Observer()
    observer.attach(sim)

    def ticker(sim):
        for _ in range(3):
            yield sim.timeout(1.0)

    sim.process(ticker(sim), name="exec-tick")
    while sim.peek() != float("inf"):
        sim.step()
    report = observer.profiler.report()
    assert report["datacenter"]["events"] >= 3.0
    assert sim.now == 3.0
