"""Trace analytics: critical paths, breakdowns, census diffs."""

import pytest

from repro.observability import Tracer
from repro.observability.traceanalysis import (PathSegment, census_diff,
                                               critical_path, span_census,
                                               subsystem_breakdown)


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _tracer():
    clock = _Clock()
    tracer = Tracer(clock=clock)
    return clock, tracer


def _span(tracer, clock, name, start, end, parent=None, category=""):
    clock.now = start
    span = tracer.begin(name, parent=parent, category=category)
    clock.now = end
    tracer.end(span)
    return span


# ----------------------------------------------------------------------
# critical_path
# ----------------------------------------------------------------------
def test_childless_root_is_its_own_path():
    clock, tracer = _tracer()
    root = _span(tracer, clock, "job", 0.0, 10.0)
    path = critical_path(tracer, root)
    assert path == [PathSegment("job", "", 0.0, 10.0, "span")]
    assert path[0].duration == 10.0


def test_chain_with_gap_inserts_wait_segments():
    clock, tracer = _tracer()
    clock.now = 0.0
    root = tracer.begin("workflow")
    _span(tracer, clock, "a", 0.0, 4.0, parent=root)
    _span(tracer, clock, "b", 6.0, 10.0, parent=root)  # 2s idle gap
    clock.now = 10.0
    tracer.end(root)
    path = critical_path(tracer, root)
    assert [(s.name, s.kind) for s in path] == \
        [("a", "span"), ("(wait)", "wait"), ("b", "span")]
    assert path[1].start == 4.0 and path[1].end == 6.0
    # The path tiles the root exactly.
    assert path[0].start == root.start
    assert path[-1].end == root.end
    assert sum(s.duration for s in path) == pytest.approx(10.0)


def test_parallel_children_pick_the_late_finisher():
    clock, tracer = _tracer()
    clock.now = 0.0
    root = tracer.begin("workflow")
    _span(tracer, clock, "fast", 0.0, 3.0, parent=root)
    _span(tracer, clock, "slow", 0.0, 9.0, parent=root)
    clock.now = 9.0
    tracer.end(root)
    path = critical_path(tracer, root)
    assert [s.name for s in path] == ["slow"]


def test_expansion_recurses_into_grandchildren():
    clock, tracer = _tracer()
    clock.now = 0.0
    root = tracer.begin("workflow")
    clock.now = 0.0
    task = tracer.begin("task t1", parent=root)
    _span(tracer, clock, "exec attempt1", 0.0, 4.0, parent=task)
    _span(tracer, clock, "exec attempt2", 5.0, 8.0, parent=task)
    clock.now = 8.0
    tracer.end(task)
    tracer.end(root)
    expanded = critical_path(tracer, root)
    assert [s.name for s in expanded] == \
        ["exec attempt1", "(wait)", "exec attempt2"]
    flat = critical_path(tracer, root, expand=False)
    assert [s.name for s in flat] == ["task t1"]


def test_instant_markers_cannot_carry_the_path():
    clock, tracer = _tracer()
    clock.now = 0.0
    root = tracer.begin("workflow")
    _span(tracer, clock, "work", 0.0, 6.0, parent=root)
    clock.now = 6.0
    tracer.instant("marker", parent=root)
    tracer.end(root)
    path = critical_path(tracer, root)
    assert [s.name for s in path] == ["work"]


def test_root_resolution_by_name():
    clock, tracer = _tracer()
    _span(tracer, clock, "solo", 0.0, 2.0)
    path = critical_path(tracer, "solo")
    assert path[0].name == "solo"
    with pytest.raises(ValueError):
        critical_path(tracer, "missing")
    _span(tracer, clock, "solo", 3.0, 4.0)
    with pytest.raises(ValueError):
        critical_path(tracer, "solo")  # ambiguous now


def test_open_root_is_rejected():
    clock, tracer = _tracer()
    clock.now = 0.0
    root = tracer.begin("open")
    with pytest.raises(ValueError):
        critical_path(tracer, root)


def test_segments_serialize():
    segment = PathSegment("x", "scheduling", 1.0, 3.0, "span")
    assert segment.to_dict() == {"name": "x", "category": "scheduling",
                                 "start": 1.0, "end": 3.0, "kind": "span"}


# ----------------------------------------------------------------------
# subsystem_breakdown
# ----------------------------------------------------------------------
def test_breakdown_shares_sum_to_one():
    clock, tracer = _tracer()
    _span(tracer, clock, "a", 0.0, 6.0, category="scheduling")
    _span(tracer, clock, "b", 0.0, 2.0, category="datacenter")
    _span(tracer, clock, "c", 2.0, 4.0, category="datacenter")
    breakdown = subsystem_breakdown(tracer)
    assert list(breakdown) == ["datacenter", "scheduling"]  # sorted
    assert breakdown["datacenter"]["spans"] == 2
    assert breakdown["datacenter"]["total_time"] == pytest.approx(4.0)
    assert breakdown["datacenter"]["mean_time"] == pytest.approx(2.0)
    assert sum(e["share"] for e in breakdown.values()) == pytest.approx(1.0)


def test_breakdown_ignores_open_spans():
    clock, tracer = _tracer()
    _span(tracer, clock, "closed", 0.0, 2.0, category="x")
    tracer.begin("still-open", category="y")
    assert list(subsystem_breakdown(tracer)) == ["x"]


# ----------------------------------------------------------------------
# span_census / census_diff
# ----------------------------------------------------------------------
def test_census_groups_by_first_word():
    clock, tracer = _tracer()
    _span(tracer, clock, "task t1", 0.0, 1.0)
    _span(tracer, clock, "task t2", 0.0, 1.0)
    _span(tracer, clock, "exec t1 on m0", 0.0, 1.0)
    tracer.instant("failure-burst")
    assert span_census(tracer) == {"exec": 1, "failure-burst": 1, "task": 2}


def test_census_diff_covers_the_union():
    before = {"task": 4, "exec": 4}
    after = {"task": 4, "exec": 7, "hedge": 2}
    diff = census_diff(before, after)
    assert diff == {"exec": (4, 7, 3), "hedge": (0, 2, 2),
                    "task": (4, 4, 0)}
    assert list(diff) == sorted(diff)
