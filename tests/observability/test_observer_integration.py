"""Integration: the Observer woven through scheduler/datacenter/chaos.

The two contracts under test, straight from docs/OBSERVABILITY.md:

1. observability never perturbs a simulation (same seed → same
   outcome, observer or not);
2. with a fixed seed, the exported trace and metrics snapshot are
   byte-identical across runs.
"""

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent
from repro.faas import FaaSPlatform, FunctionSpec
from repro.observability import Observer
from repro.resilience import ChaosExperiment, ExponentialBackoff
from repro.scheduling import ClusterScheduler, WorkflowEngine
from repro.sim import Simulator
from repro.workload import Task, chain_workflow


def make_experiment():
    def workload(streams):
        rng = streams.stream("workload")
        return [Task(runtime=rng.uniform(20.0, 60.0), cores=2,
                     submit_time=rng.uniform(0.0, 30.0), name=f"t{i}")
                for i in range(30)]

    def failures(streams, racks, horizon):
        rng = streams.stream("failures")
        names = [name for rack in racks for name in rack]
        victims = tuple(sorted(rng.sample(names, k=4)))
        return [FailureEvent(time=40.0, machine_names=victims,
                             duration=25.0)]

    return ChaosExperiment(
        cluster=lambda: homogeneous_cluster("c", 8, MachineSpec(cores=4),
                                            machines_per_rack=4),
        workload=workload, failures=failures, seed=11, horizon=300.0,
        retry_policy=ExponentialBackoff(max_attempts=6, base=1.0, cap=30.0))


def test_observer_does_not_perturb_chaos_outcome():
    plain = make_experiment().run()
    observed = make_experiment().run(observer=Observer())
    assert observed.summary() == plain.summary()


def test_chaos_run_with_observer_collects_everything():
    observer = Observer()
    report = make_experiment().run(observer=observer)
    metrics = observer.metrics.snapshot()
    counters = metrics["counters"]
    # The registry mirrors the report's census exactly.
    assert counters["failures.bursts"] == 1.0
    assert counters["failures.victim_tasks"] == report.victim_tasks
    assert counters["scheduler.tasks_completed"] == report.tasks_finished
    assert metrics["gauges"]["chaos.tasks_finished"] == report.tasks_finished
    assert metrics["gauges"]["chaos.seed"] == 11.0
    # Causal trace: every task span has at least one exec child.
    spans = observer.tracer.spans
    task_spans = [s for s in spans if s.name.startswith("task ")]
    exec_spans = [s for s in spans if s.name.startswith("exec ")]
    assert len(task_spans) >= 30
    parents = {s.parent_id for s in exec_spans}
    assert parents & {s.span_id for s in task_spans}
    burst = [s for s in spans if s.name == "failure-burst"]
    assert len(burst) == 1 and burst[0].attrs["victims"] == report.victim_tasks
    # Interrupted executions are visible as exec spans marked so.
    interrupted = [s for s in exec_spans
                   if s.attrs.get("outcome") == "interrupted"]
    assert len(interrupted) == report.victim_tasks
    # The chaos harness detaches its private simulator afterwards.
    assert observer.sim is None


def test_observer_attach_detach_contract():
    sim = Simulator()
    observer = Observer()
    observer.attach(sim)
    with pytest.raises(RuntimeError):
        Observer().attach(sim)
    with pytest.raises(RuntimeError):
        observer.attach(Simulator())
    observer.detach()
    assert sim.observer is None
    Observer().attach(sim)  # slot is free again


def test_workflow_engine_emits_workflow_spans():
    sim = Simulator()
    observer = Observer()
    observer.attach(sim)
    datacenter = Datacenter(sim, [homogeneous_cluster(
        "c", 2, MachineSpec(cores=4))])
    scheduler = ClusterScheduler(sim, datacenter)
    engine = WorkflowEngine(sim, scheduler)
    done = engine.submit(chain_workflow(length=3, runtime=5.0))
    sim.run(until=done)
    counters = observer.metrics.snapshot()["counters"]
    assert counters["workflow.submitted"] == 1.0
    assert counters["workflow.completed"] == 1.0
    workflow_spans = [s for s in observer.tracer.spans
                      if s.name.startswith("workflow ")]
    assert len(workflow_spans) == 1
    span = workflow_spans[0]
    assert span.attrs["outcome"] == "finished"
    assert span.duration == pytest.approx(15.0)


def test_faas_platform_metrics_and_spans():
    sim = Simulator()
    observer = Observer()
    observer.attach(sim)
    platform = FaaSPlatform(sim, concurrency=2)
    platform.deploy(FunctionSpec("f", mean_runtime=0.2, cold_start=0.3))
    calls = [platform.invoke("f") for _ in range(3)]
    for call in calls:
        sim.run(until=call)
    counters = observer.metrics.snapshot()["counters"]
    assert counters["faas.invocations"] == 3.0
    assert counters["faas.cold_starts"] >= 1.0
    histogram = observer.metrics.histogram("faas.latency")
    assert histogram.count == 3
    invoke_spans = [s for s in observer.tracer.spans
                    if s.name == "invoke f"]
    assert len(invoke_spans) == 3
    assert all(not s.is_open for s in invoke_spans)
    cold = [s for s in invoke_spans if s.attrs["cold"]]
    assert len(cold) >= 1
