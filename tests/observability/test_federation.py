"""Federated telemetry: snapshot capture, merge rules, determinism."""

import json
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.observability import (
    MetricsRegistry,
    Observer,
    TelemetryMerge,
    TelemetryMergeError,
    TelemetrySnapshot,
    fleet_digest,
    merge_histogram_entries,
    merge_snapshots,
)
from repro.sim import Simulator

BOUNDARIES = (1.0, 5.0, 10.0, 50.0)


def hist_entry(values, boundaries=BOUNDARIES) -> dict:
    """One histogram snapshot entry fed ``values``."""
    registry = MetricsRegistry()
    histogram = registry.histogram("t.latency_s", boundaries=boundaries)
    for value in values:
        histogram.observe(value)
    return registry.snapshot()["histograms"]["t.latency_s"]


def snap(run_id, counters=None, gauges=None, hists=None, profile=None,
         census=None) -> dict:
    """A hand-built snapshot dict for merge-rule tests."""
    census = dict(census or {})
    return {
        "schema": "telemetry-snapshot/v1",
        "run_id": run_id,
        "fingerprint": "f",
        "seed": 0,
        "metrics": {"counters": dict(counters or {}),
                    "gauges": dict(gauges or {}),
                    "histograms": dict(hists or {})},
        "profile": profile,
        "spans": {"total": sum(census.values()), "census": census},
    }


class TestMergeRules:
    def test_counters_sum_across_runs(self):
        fleet = merge_snapshots([
            snap("a", counters={"s.jobs": 2.0}),
            snap("b", counters={"s.jobs": 3.0, "s.errors": 1.0}),
        ])
        assert fleet["metrics"]["counters"] == {"s.errors": 1.0,
                                                "s.jobs": 5.0}

    def test_gauges_resolve_by_run_id_order_not_arrival(self):
        """Last writer is the greatest run id, whatever order they arrive."""
        first = snap("run-1", gauges={"s.depth": 7.0})
        last = snap("run-2", gauges={"s.depth": 3.0})
        for ordering in ([first, last], [last, first]):
            fleet = merge_snapshots(ordering)
            assert fleet["metrics"]["gauges"] == {"s.depth": 3.0}

    def test_profile_sums_events_and_sim_time(self):
        fleet = merge_snapshots([
            snap("a", profile={"sched": {"events": 2, "sim_time": 1.5}}),
            snap("b", profile={"sched": {"events": 3, "sim_time": 0.5},
                               "dc": {"events": 1, "sim_time": 1.0}}),
        ])
        assert fleet["profile"] == {
            "dc": {"events": 1, "sim_time": 1.0},
            "sched": {"events": 5, "sim_time": 2.0}}

    def test_span_censuses_concatenate_under_run_ids(self):
        fleet = merge_snapshots([
            snap("a", census={"task": 2}),
            snap("b", census={"task": 1, "exec": 4}),
        ])
        assert fleet["spans"] == {
            "total": 7,
            "census": {"exec": 4, "task": 3},
            "by_run": {"a": {"task": 2}, "b": {"exec": 4, "task": 1}}}

    def test_duplicate_run_ids_rejected(self):
        with pytest.raises(TelemetryMergeError, match="duplicate"):
            merge_snapshots([snap("a"), snap("a")])

    def test_empty_merge_rejected(self):
        with pytest.raises(TelemetryMergeError):
            merge_snapshots([])

    def test_merge_is_order_independent_byte_for_byte(self):
        snapshots = [
            snap(f"point-{i:05d}", counters={"s.jobs": float(i)},
                 gauges={"s.depth": float(i)},
                 hists={"t.latency_s": hist_entry([i + 0.5])},
                 census={"task": i + 1})
            for i in range(6)]
        baseline = fleet_digest(merge_snapshots(snapshots))
        rng = random.Random(13)
        for _ in range(5):
            shuffled = list(snapshots)
            rng.shuffle(shuffled)
            assert fleet_digest(merge_snapshots(shuffled)) == baseline


class TestHistogramMerge:
    def test_matches_single_histogram_over_concatenation(self):
        groups = [[0.5, 2.0, 7.0], [30.0, 200.0], [4.0]]
        merged = merge_histogram_entries(
            "t.latency_s", [hist_entry(g) for g in groups])
        combined = hist_entry([v for g in groups for v in g])
        assert merged["counts"] == combined["counts"]
        assert merged["count"] == combined["count"]
        for key in ("min", "max", "p50", "p95", "p99"):
            assert merged[key] == combined[key]
        assert merged["sum"] == pytest.approx(combined["sum"])

    def test_mismatched_edges_are_a_hard_error(self):
        with pytest.raises(TelemetryMergeError, match="boundaries"):
            merge_histogram_entries("t.latency_s", [
                hist_entry([1.0], boundaries=(1.0, 2.0)),
                hist_entry([1.0], boundaries=(1.0, 4.0))])

    def test_empty_runs_do_not_poison_min_max(self):
        merged = merge_histogram_entries("t.latency_s", [
            hist_entry([]), hist_entry([3.0])])
        assert merged["min"] == 3.0
        assert merged["max"] == 3.0
        assert merged["count"] == 1

    def test_all_empty_merges_to_empty_entry(self):
        merged = merge_histogram_entries("t.latency_s",
                                         [hist_entry([]), hist_entry([])])
        assert merged["count"] == 0
        assert "min" not in merged and "p99" not in merged

    @given(st.lists(
        st.lists(st.floats(min_value=0.0, max_value=100.0,
                           allow_nan=False, width=32),
                 min_size=0, max_size=25),
        min_size=2, max_size=5).filter(
            lambda groups: any(groups)))
    def test_merged_quantiles_equal_concatenated_recomputation(self, groups):
        """The satellite property: merged pXX == one histogram fed all."""
        merged = merge_histogram_entries(
            "t.latency_s", [hist_entry(g) for g in groups])
        combined = hist_entry([v for g in groups for v in g])
        assert merged["counts"] == combined["counts"]
        assert merged["p50"] == combined["p50"]
        assert merged["p95"] == combined["p95"]
        assert merged["p99"] == combined["p99"]
        assert merged["min"] == combined["min"]
        assert merged["max"] == combined["max"]


class TestSnapshot:
    def observed_snapshot(self, run_id="r1") -> TelemetrySnapshot:
        sim = Simulator()
        observer = Observer()
        observer.attach(sim)
        observer.metrics.counter("demo.ticks").inc(3)
        span = observer.tracer.begin("demo tick")
        observer.tracer.end(span)
        observer.detach()
        return TelemetrySnapshot.capture(observer, run_id=run_id,
                                         fingerprint="abc", seed=7)

    def test_roundtrip_preserves_bytes(self):
        snapshot = self.observed_snapshot()
        clone = TelemetrySnapshot.from_json(snapshot.to_json())
        assert clone == snapshot
        assert clone.digest() == snapshot.digest()

    def test_capture_carries_metrics_and_census(self):
        snapshot = self.observed_snapshot()
        assert snapshot.metrics["counters"]["demo.ticks"] == 3.0
        assert snapshot.spans["census"] == {"demo": 1}
        assert snapshot.run_id == "r1"

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            TelemetrySnapshot.from_dict({"schema": "nope/v9",
                                         "run_id": "x", "metrics": {}})


class TestTelemetryMergeAccumulator:
    def test_incremental_equals_batch(self):
        snapshots = [snap("b", counters={"s.jobs": 1.0}),
                     snap("a", counters={"s.jobs": 2.0})]
        merge = TelemetryMerge()
        for snapshot in snapshots:
            merge.add(snapshot)
        assert merge.fleet() == merge_snapshots(snapshots)
        assert merge.run_ids() == ["a", "b"]
        assert len(merge) == 2

    def test_add_json_and_duplicate_rejection(self):
        merge = TelemetryMerge()
        merge.add_json(json.dumps(snap("a")))
        with pytest.raises(TelemetryMergeError, match="'a'"):
            merge.add(snap("a"))
