"""Streaming telemetry: windows, ticks, aggregates, determinism."""

import pytest

from repro.observability import MetricsRegistry
from repro.observability.streaming import (StreamingPipeline, Window,
                                           watch_all)
from repro.sim import Simulator


def _pipeline(interval=1.0):
    sim = Simulator()
    metrics = MetricsRegistry()
    return sim, metrics, StreamingPipeline(sim, metrics, interval=interval)


# ----------------------------------------------------------------------
# Window specification
# ----------------------------------------------------------------------
def test_default_window_is_tumbling():
    window = Window(4.0)
    assert window.tumbling
    assert window.stride == window.width == 4.0


def test_sliding_window():
    window = Window(4.0, stride=2.0)
    assert not window.tumbling


@pytest.mark.parametrize("width,stride", [(0.0, None), (-1.0, None),
                                          (4.0, 0.0), (4.0, -2.0)])
def test_window_rejects_non_positive(width, stride):
    with pytest.raises(ValueError):
        Window(width, stride)


def test_window_rejects_stride_beyond_width():
    with pytest.raises(ValueError):
        Window(2.0, stride=3.0)


def test_watch_rejects_window_off_the_tick_grid():
    _, _, pipeline = _pipeline(interval=2.0)
    with pytest.raises(ValueError):
        pipeline.watch("x", Window(3.0))
    with pytest.raises(ValueError):
        pipeline.watch("x", Window(4.0, stride=1.0))


def test_watch_rejects_duplicates():
    _, _, pipeline = _pipeline()
    pipeline.watch("x")
    with pytest.raises(ValueError):
        pipeline.watch("x")


def test_pipeline_rejects_non_positive_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        StreamingPipeline(sim, MetricsRegistry(), interval=0.0)


# ----------------------------------------------------------------------
# Scheduled ticks (attach)
# ----------------------------------------------------------------------
def test_attached_ticks_fire_on_the_grid_and_stop_at_until():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    counter = metrics.counter("events")
    series = pipeline.watch("events")

    def load(sim):
        for _ in range(10):
            yield sim.timeout(0.5)
            counter.inc()

    sim.process(load(sim))
    pipeline.attach(until=3.0)
    sim.run()
    # The run drains at t=5 (workload), but ticks stopped at 3.0.
    assert pipeline.ticks == 3
    assert [time for time, _ in series.points] == [1.0, 2.0, 3.0]
    assert sim.now == 5.0


def test_attach_twice_is_an_error():
    _, _, pipeline = _pipeline()
    pipeline.attach(until=1.0)
    with pytest.raises(RuntimeError):
        pipeline.attach(until=1.0)


def test_counter_window_delta_and_rate():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    counter = metrics.counter("events")
    series = pipeline.watch("events", Window(2.0))

    def load(sim):
        for _ in range(8):
            yield sim.timeout(0.5)
            counter.inc()

    sim.process(load(sim))
    pipeline.attach(until=4.0)
    sim.run()
    # Tumbling 2s windows ending at t=2 and t=4.  The tick's timeout at
    # each whole second was enqueued before the half-phase increment
    # landing at the same instant (FIFO tie-breaking), so the t=2 tick
    # sees the increments at 0.5/1.0/1.5 only — deterministically.
    assert [time for time, _ in series.points] == [2.0, 4.0]
    assert series.values("delta") == [3.0, 4.0]
    assert series.values("rate") == [pytest.approx(1.5), pytest.approx(2.0)]
    assert series.latest()["total"] == 7.0


def test_sliding_window_overlaps():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    counter = metrics.counter("events")
    series = pipeline.watch("events", Window(2.0, stride=1.0))

    def load(sim):
        for _ in range(4):
            yield sim.timeout(1.0)
            counter.inc()

    sim.process(load(sim))
    pipeline.attach(until=4.0)
    sim.run()
    # Emitted every 1s over the trailing 2s.  An increment lands at the
    # same timestamp as the tick but is scheduled earlier, so the tick
    # at t observes it.
    assert [time for time, _ in series.points] == [1.0, 2.0, 3.0, 4.0]
    assert series.values("delta") == [1.0, 2.0, 2.0, 2.0]


def test_gauge_window_summary_uses_the_monitor_path():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    gauge = metrics.gauge("queue")
    series = pipeline.watch("queue", Window(3.0))

    def load(sim):
        for value in (2.0, 4.0, 6.0):
            gauge.set(value)
            yield sim.timeout(1.0)

    sim.process(load(sim))
    pipeline.attach(until=3.0)
    sim.run()
    [(time, aggs)] = series.points
    assert time == 3.0
    # Ticks at 1, 2, 3 saw 4, 6, 6 (each tick observes the state the
    # events before it left behind).
    assert aggs["count"] == 3
    assert aggs["mean"] == pytest.approx((4.0 + 6.0 + 6.0) / 3)
    assert aggs["min"] == 4.0
    assert aggs["max"] == 6.0
    assert aggs["last"] == 6.0
    assert "p95" in aggs


def test_histogram_window_percentiles_are_window_local():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    histogram = metrics.histogram("latency", boundaries=(1.0, 5.0, 10.0))
    series = pipeline.watch("latency", Window(1.0))

    def load(sim):
        yield sim.timeout(0.5)
        for _ in range(4):
            histogram.observe(0.5)
        yield sim.timeout(1.0)
        for _ in range(4):
            histogram.observe(8.0)

    sim.process(load(sim))
    pipeline.attach(until=2.0)
    sim.run()
    first, second = (aggs for _, aggs in series.points)
    assert first["count"] == 4.0
    assert first["p50"] == 1.0       # all in the <=1.0 bucket
    assert second["count"] == 4.0
    assert second["p50"] == 10.0     # the second burst alone, not mixed
    assert second["mean"] == pytest.approx(8.0)


def test_missing_instrument_emits_nothing_until_it_appears():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    series = pipeline.watch("late.counter")

    def load(sim):
        yield sim.timeout(2.5)
        metrics.counter("late.counter").inc(7.0)

    sim.process(load(sim))
    pipeline.attach(until=4.0)
    sim.run()
    # Ticks at 1 and 2 found no instrument; at 3 and 4 it exists.
    assert [time for time, _ in series.points] == [3.0, 4.0]
    assert series.points[0][1]["total"] == 7.0
    assert series.points[0][1]["delta"] == 7.0


def test_watch_all_shares_one_window():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    metrics.counter("a")
    metrics.counter("b")
    series = watch_all(pipeline, ["a", "b"], Window(2.0))
    assert set(series) == {"a", "b"}
    assert pipeline.series["a"] is series["a"]


# ----------------------------------------------------------------------
# Externally-driven ticks (advance)
# ----------------------------------------------------------------------
def test_advance_matches_attached_ticks():
    def run(driven):
        sim = Simulator()
        metrics = MetricsRegistry()
        pipeline = StreamingPipeline(sim, metrics, interval=1.0)
        counter = metrics.counter("events")
        pipeline.watch("events", Window(2.0))

        def load(sim):
            for _ in range(6):
                yield sim.timeout(0.7)
                counter.inc()

        sim.process(load(sim))
        if driven:
            while sim.peek() <= 6.0:
                pipeline.advance(sim.peek())
                sim.step()
            pipeline.advance(4.0)
        else:
            pipeline.attach(until=4.0)
            sim.run()
        return pipeline.series_json()

    assert run(driven=True) == run(driven=False)


def test_advance_does_not_keep_a_drained_simulation_alive():
    sim, metrics, pipeline = _pipeline(interval=1.0)
    metrics.counter("x")
    pipeline.watch("x")

    def load(sim):
        yield sim.timeout(0.5)

    sim.process(load(sim))
    while sim.peek() < float("inf"):
        pipeline.advance(sim.peek())
        sim.step()
    # The queue is empty: no telemetry event was ever enqueued.
    assert sim.peek() == float("inf")
    assert pipeline.ticks == 0  # no tick was due by t=0.5


def test_series_json_is_deterministic():
    def run():
        sim, metrics, pipeline = _pipeline(interval=1.0)
        counter = metrics.counter("events")
        gauge = metrics.gauge("level")
        pipeline.watch("events", Window(2.0))
        pipeline.watch("level", Window(2.0, stride=1.0))

        def load(sim):
            for i in range(6):
                yield sim.timeout(0.5)
                counter.inc()
                gauge.set(float(i))

        sim.process(load(sim))
        pipeline.attach(until=3.0)
        sim.run()
        return pipeline.series_json()

    assert run() == run()
