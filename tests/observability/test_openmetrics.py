"""OpenMetrics text exposition: name mapping, line grammar, planes."""

import re

import pytest

from repro.observability import (
    MetricsRegistry,
    openmetrics_name,
    render_openmetrics,
)

#: The strict per-line grammar tools/service_smoke.py also enforces:
#: comments, or ``name{labels} value`` samples.
SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? '
    r'[0-9eE.+-]+(in)?f?$')


def assert_valid_exposition(text: str) -> list[str]:
    """Every line is a comment or a grammatical sample; ends # EOF."""
    assert text.endswith("# EOF\n")
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    for line in lines[:-1]:
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert SAMPLE_LINE.match(line), f"bad sample line: {line!r}"
    return lines


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("service.requests_ok").inc(5)
    registry.gauge("service.queue_depth").set(2)
    histogram = registry.histogram("service.queue_wait",
                                   boundaries=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestNameMapping:
    def test_dots_map_to_underscores_under_prefix(self):
        assert openmetrics_name("scheduler.wait_time") == \
            "repro_scheduler_wait_time"
        assert openmetrics_name("a.b.c-d") == "repro_a_b_c_d"

    def test_unmappable_name_rejected(self):
        with pytest.raises(ValueError, match="cannot be exposed"):
            openmetrics_name("bad name with spaces")


class TestRendering:
    def test_counter_gauge_histogram_lines(self):
        text = render_openmetrics(
            [({"plane": "service"}, populated_registry().snapshot())])
        lines = assert_valid_exposition(text)
        assert ('repro_service_requests_ok_total{plane="service"} 5'
                in lines)
        assert 'repro_service_queue_depth{plane="service"} 2' in lines
        # Cumulative buckets: 1 at le=1, 2 at le=10, 3 total.
        assert ('repro_service_queue_wait_bucket'
                '{le="1",plane="service"} 1' in lines)
        assert ('repro_service_queue_wait_bucket'
                '{le="10",plane="service"} 2' in lines)
        assert ('repro_service_queue_wait_bucket'
                '{le="+Inf",plane="service"} 3' in lines)
        assert ('repro_service_queue_wait_count{plane="service"} 3'
                in lines)
        assert any(line.startswith("repro_service_queue_wait_sum")
                   for line in lines)

    def test_type_declarations(self):
        text = render_openmetrics([({}, populated_registry().snapshot())])
        assert "# TYPE repro_service_requests_ok counter" in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "# TYPE repro_service_queue_wait histogram" in text

    def test_two_planes_group_under_one_type_line(self):
        snapshot = populated_registry().snapshot()
        text = render_openmetrics([({"plane": "service"}, snapshot),
                                   ({"plane": "fleet"}, snapshot)])
        lines = assert_valid_exposition(text)
        type_lines = [line for line in lines if line.startswith(
            "# TYPE repro_service_requests_ok ")]
        assert len(type_lines) == 1
        samples = [line for line in lines if line.startswith(
            "repro_service_requests_ok_total")]
        assert len(samples) == 2
        assert any('plane="fleet"' in line for line in samples)

    def test_kind_conflict_across_planes_is_an_error(self):
        with pytest.raises(ValueError, match="rename"):
            render_openmetrics([
                ({"plane": "a"}, {"counters": {"s.depth": 1.0}}),
                ({"plane": "b"}, {"gauges": {"s.depth": 2.0}})])

    def test_deterministic_output(self):
        planes = [({"plane": "service"}, populated_registry().snapshot())]
        assert render_openmetrics(planes) == render_openmetrics(planes)

    def test_label_values_escaped(self):
        text = render_openmetrics(
            [({"tenant": 'he said "hi"\n'},
              {"counters": {"s.jobs": 1.0}})])
        assert '\\"hi\\"' in text
        assert "\\n" in text
