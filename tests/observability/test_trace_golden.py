"""Golden determinism: fixed-seed traces are byte-identical across runs.

This pins the acceptance criterion from the observability contract
(docs/OBSERVABILITY.md): with the observer enabled, two runs of the
same fixed-seed scenario must export byte-for-byte identical Chrome
traces and metrics snapshots.

The workload names its tasks explicitly (``t0`` .. ``tN``) — task ids
come from a process-global counter and therefore differ between runs
inside one interpreter, so exports key on names, never ids.
"""

import hashlib

from repro.datacenter import MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent
from repro.observability import Observer
from repro.resilience import ChaosExperiment, ExponentialBackoff
from repro.workload import Task


def _observed_run():
    def workload(streams):
        rng = streams.stream("workload")
        return [Task(runtime=rng.uniform(10.0, 40.0), cores=2,
                     submit_time=rng.uniform(0.0, 20.0), name=f"t{i}")
                for i in range(24)]

    def failures(streams, racks, horizon):
        rng = streams.stream("failures")
        names = [name for rack in racks for name in rack]
        victims = tuple(sorted(rng.sample(names, k=3)))
        return [FailureEvent(time=30.0, machine_names=victims,
                             duration=20.0)]

    experiment = ChaosExperiment(
        cluster=lambda: homogeneous_cluster("c", 8, MachineSpec(cores=4),
                                            machines_per_rack=4),
        workload=workload, failures=failures, seed=23, horizon=250.0,
        retry_policy=ExponentialBackoff(max_attempts=6, base=1.0, cap=20.0))
    observer = Observer()
    report = experiment.run(observer=observer)
    return observer, report


def test_fixed_seed_exports_are_byte_identical():
    first, report_a = _observed_run()
    second, report_b = _observed_run()
    assert report_a.summary() == report_b.summary()
    trace_a = first.trace_chrome_json().encode()
    trace_b = second.trace_chrome_json().encode()
    assert hashlib.sha256(trace_a).hexdigest() == \
        hashlib.sha256(trace_b).hexdigest()
    assert first.metrics_json().encode() == second.metrics_json().encode()
    # The deterministic half of the full snapshot also matches; the
    # wall-clock half is intentionally excluded from snapshot().
    assert first.snapshot() == second.snapshot()


def test_trace_export_is_repeatable_within_one_observer():
    observer, _ = _observed_run()
    assert observer.trace_chrome_json() == observer.trace_chrome_json()
    assert observer.metrics_json() == observer.metrics_json()
