"""SLO engine: objectives, error budgets, burn-rate alerting."""

import pytest

from repro.observability import MetricsRegistry
from repro.observability.slo import (DEFAULT_BURN_RULES, AlertLog,
                                     AvailabilityObjective, BurnRateRule,
                                     GoodputObjective, LatencyObjective,
                                     QueueWaitObjective, ServiceObjective,
                                     SLOEngine)
from repro.observability.streaming import StreamingPipeline
from repro.sim import Simulator


def _rig(objectives, rules=None, interval=1.0):
    sim = Simulator()
    metrics = MetricsRegistry()
    pipeline = StreamingPipeline(sim, metrics, interval=interval)
    rules = rules or (BurnRateRule("fast", long_window=4.0,
                                   short_window=2.0, threshold=2.0),)
    engine = SLOEngine(pipeline, objectives, rules=rules)
    return sim, metrics, pipeline, engine


# ----------------------------------------------------------------------
# Objective declarations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target", [0.0, 1.0, -0.1, 1.5])
def test_targets_must_be_strictly_inside_unit_interval(target):
    with pytest.raises(ValueError):
        AvailabilityObjective("x", good="g", bad="b", target=target)


def test_error_budget_is_one_minus_target():
    objective = AvailabilityObjective("x", good="g", bad="b", target=0.99)
    assert objective.error_budget == pytest.approx(0.01)


def test_base_objective_is_abstract():
    objective = ServiceObjective("x", target=0.9)
    with pytest.raises(NotImplementedError):
        objective.good_bad(MetricsRegistry(), 0.0)


def test_availability_objective_reads_counter_pair():
    metrics = MetricsRegistry()
    metrics.counter("ok").inc(9.0)
    metrics.counter("err").inc(1.0)
    objective = AvailabilityObjective("x", good="ok", bad="err", target=0.9)
    assert objective.good_bad(metrics, 10.0) == (9.0, 1.0)
    # Missing instruments count as zero, not as errors.
    absent = AvailabilityObjective("y", good="nope", bad="also", target=0.9)
    assert absent.good_bad(metrics, 10.0) == (0.0, 0.0)


def test_latency_objective_splits_at_threshold_bucket():
    metrics = MetricsRegistry()
    histogram = metrics.histogram("lat", boundaries=(1.0, 5.0, 10.0))
    for value in (0.5, 0.7, 4.0, 9.0):
        histogram.observe(value)
    objective = LatencyObjective("x", histogram="lat", threshold=5.0,
                                 target=0.9)
    good, bad = objective.good_bad(metrics, 0.0)
    assert (good, bad) == (3.0, 1.0)


def test_latency_objective_requires_positive_threshold():
    with pytest.raises(ValueError):
        LatencyObjective("x", histogram="lat", threshold=0.0)


def test_queue_wait_objective_targets_scheduler_wait_time():
    objective = QueueWaitObjective("x", threshold=10.0)
    assert objective.histogram == "scheduler.wait_time"


def test_goodput_objective_measures_shortfall():
    metrics = MetricsRegistry()
    metrics.counter("work").inc(30.0)
    objective = GoodputObjective("x", counter="work", target_rate=4.0,
                                 target=0.9)
    good, bad = objective.good_bad(metrics, 10.0)  # demand = 40
    assert (good, bad) == (30.0, 10.0)
    # Over-delivery is capped, not credited.
    good, bad = objective.good_bad(metrics, 5.0)   # demand = 20
    assert (good, bad) == (20.0, 0.0)


# ----------------------------------------------------------------------
# Burn-rate rules
# ----------------------------------------------------------------------
def test_rule_validation():
    with pytest.raises(ValueError):
        BurnRateRule("x", long_window=0.0, short_window=1.0, threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("x", long_window=10.0, short_window=20.0, threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("x", long_window=10.0, short_window=5.0, threshold=0.0)


def test_default_rules_are_the_sre_pair():
    fast, slow = DEFAULT_BURN_RULES
    assert fast.threshold > slow.threshold
    assert fast.long_window < slow.long_window


# ----------------------------------------------------------------------
# Engine: evaluation, alert lifecycle, report
# ----------------------------------------------------------------------
def test_engine_rejects_degenerate_configs():
    sim = Simulator()
    pipeline = StreamingPipeline(sim, MetricsRegistry(), interval=1.0)
    objective = AvailabilityObjective("x", good="g", bad="b", target=0.9)
    with pytest.raises(ValueError):
        SLOEngine(pipeline, [])
    with pytest.raises(ValueError):
        SLOEngine(pipeline, [objective], rules=())
    with pytest.raises(ValueError):
        SLOEngine(pipeline, [objective, objective])  # duplicate name


def _error_burst_run(error_ticks, total_ticks=10):
    """Drive a good/bad counter pair: 1 good/tick, plus errors on some."""
    objective = AvailabilityObjective("avail", good="ok", bad="err",
                                      target=0.9)
    sim, metrics, pipeline, engine = _rig([objective])
    good, bad = metrics.counter("ok"), metrics.counter("err")

    def load(sim):
        for tick in range(total_ticks):
            yield sim.timeout(1.0)
            good.inc()
            if tick in error_ticks:
                bad.inc(3.0)

    sim.process(load(sim))
    pipeline.attach(until=float(total_ticks))
    sim.run()
    return engine


def test_quiet_run_raises_no_alerts():
    engine = _error_burst_run(error_ticks=())
    assert len(engine.alerts) == 0
    report = engine.report()["avail"]
    assert report["ok"] == 1.0
    assert report["compliance"] == 1.0
    assert engine.violations() == []


def test_burst_fires_then_resolves():
    engine = _error_burst_run(error_ticks={2, 3})
    fires = engine.alerts.fires()
    resolves = engine.alerts.resolves()
    assert len(fires) == 1
    assert len(resolves) == 1
    assert fires[0].time < resolves[0].time
    assert fires[0].burn_short >= 2.0
    assert fires[0].burn_long >= 2.0
    assert engine.alerts.active() == set()


def test_fire_requires_both_windows_over_threshold():
    # A single isolated error spikes the short window but not enough
    # budget burn over the long window at threshold 30x.
    objective = AvailabilityObjective("avail", good="ok", bad="err",
                                      target=0.9)
    rules = (BurnRateRule("strict", long_window=8.0, short_window=2.0,
                          threshold=8.0),)
    sim, metrics, pipeline, engine = _rig([objective], rules=rules)
    good, bad = metrics.counter("ok"), metrics.counter("err")

    def load(sim):
        for tick in range(10):
            yield sim.timeout(1.0)
            good.inc(9.0)
            if tick == 4:
                bad.inc(9.0)  # one-tick 50% error rate

    sim.process(load(sim))
    pipeline.attach(until=10.0)
    sim.run()
    # Short-window burn spikes to 5x budget over threshold... but the
    # long window dilutes it below 8x, so nothing fires.
    assert len(engine.alerts) == 0


def test_alert_log_json_is_deterministic_and_ordered():
    a = _error_burst_run(error_ticks={2, 3, 7}).alerts
    b = _error_burst_run(error_ticks={2, 3, 7}).alerts
    assert isinstance(a, AlertLog)
    assert a.json() == b.json()
    times = [event.time for event in a]
    assert times == sorted(times)


def test_on_alert_subscribers_see_every_transition():
    received = []
    objective = AvailabilityObjective("avail", good="ok", bad="err",
                                      target=0.9)
    sim, metrics, pipeline, engine = _rig([objective])
    engine.on_alert.append(received.append)
    good, bad = metrics.counter("ok"), metrics.counter("err")

    def load(sim):
        for tick in range(10):
            yield sim.timeout(1.0)
            good.inc()
            if tick in (2, 3):
                bad.inc(3.0)

    sim.process(load(sim))
    pipeline.attach(until=10.0)
    sim.run()
    assert [event.kind for event in received] == \
        [event.kind for event in engine.alerts]
    assert len(received) == len(engine.alerts) > 0


def test_report_flags_blown_budget():
    engine = _error_burst_run(error_ticks={1, 2, 3, 4})
    entry = engine.report()["avail"]
    assert entry["budget_consumed"] > 1.0
    assert entry["ok"] == 0.0
    violations = engine.violations()
    assert len(violations) == 1
    assert "avail" in violations[0]


def test_report_json_is_deterministic():
    a = _error_burst_run(error_ticks={2, 5})
    b = _error_burst_run(error_ticks={2, 5})
    assert a.report_json() == b.report_json()
