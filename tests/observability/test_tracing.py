"""Unit tests: span lifecycle, causal parentage, and export shape."""

import pytest

from repro.observability import Span, Tracer, chrome_trace, dumps_deterministic


class FakeClock:
    """A settable clock standing in for a simulator's ``now``."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracer(clock):
    return Tracer(clock)


def test_span_lifecycle_and_duration(tracer, clock):
    span = tracer.begin("work", category="test")
    assert span.is_open and span.duration == 0.0
    clock.now = 5.0
    tracer.end(span, attrs={"outcome": "ok"})
    assert not span.is_open
    assert span.duration == 5.0
    assert span.attrs["outcome"] == "ok"


def test_double_end_is_an_error(tracer):
    span = tracer.begin("once")
    tracer.end(span)
    with pytest.raises(RuntimeError):
        tracer.end(span)


def test_unbound_tracer_refuses_to_trace():
    with pytest.raises(RuntimeError):
        Tracer().begin("no-clock")


def test_span_ids_are_monotonic_and_parentage_links(tracer):
    parent = tracer.begin("parent")
    child = tracer.begin("child", parent=parent)
    assert child.span_id == parent.span_id + 1
    assert child.parent_id == parent.span_id
    assert parent.parent_id is None


def test_key_registry_replaces_and_pops(tracer):
    first = tracer.begin("attempt", key="task")
    assert tracer.active("task") is first
    second = tracer.begin("attempt", key="task")  # retry replaces
    assert tracer.active("task") is second
    ended = tracer.end_key("task")
    assert ended is second and not second.is_open
    assert tracer.active("task") is None
    assert tracer.end_key("task") is None  # no-op on absent key
    assert first.is_open  # the replaced span was left untouched


def test_instant_spans_have_zero_duration(tracer, clock):
    clock.now = 3.0
    span = tracer.instant("marker", attrs={"k": 1})
    assert span.start == span.end == 3.0
    assert not span.is_open


def test_close_all_marks_incomplete(tracer, clock):
    tracer.begin("a", key="a")
    done = tracer.begin("b")
    tracer.end(done)
    clock.now = 9.0
    assert tracer.close_all() == 1
    assert not tracer.open_spans()
    incomplete = [s for s in tracer.spans if s.attrs.get("incomplete")]
    assert len(incomplete) == 1 and incomplete[0].end == 9.0
    assert tracer.active("a") is None


def test_to_json_orders_by_start_then_id(tracer, clock):
    clock.now = 2.0
    late = tracer.begin("late")
    clock.now = 1.0
    early = tracer.begin("early")
    exported = tracer.to_json()
    assert [e["name"] for e in exported] == ["early", "late"]
    assert exported[0]["span_id"] == early.span_id
    assert exported[1]["span_id"] == late.span_id


def test_chrome_trace_shape(tracer, clock):
    span = tracer.begin("work", category="scheduling")
    clock.now = 0.5
    tracer.end(span)
    tracer.instant("mark", category="resilience")
    open_span = tracer.begin("pending", category="scheduling")
    trace = chrome_trace(tracer)
    events = trace["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert [m["args"]["name"] for m in metadata] == ["resilience",
                                                     "scheduling"]
    complete = next(e for e in events if e["ph"] == "X")
    assert complete["name"] == "work" and complete["dur"] == 0.5 * 1e6
    instants = [e for e in events if e["ph"] == "i"]
    names = {e["name"] for e in instants}
    assert names == {"mark", "pending"}
    pending = next(e for e in instants if e["name"] == "pending")
    assert pending["args"]["incomplete"] is True
    assert open_span.is_open  # export must not mutate the span
    dumps_deterministic(trace)  # serializable with stable bytes


def test_dumps_deterministic_sorts_keys_and_rejects_nan():
    assert dumps_deterministic({"b": 1, "a": 2}) == '{"a":2,"b":1}'
    with pytest.raises(ValueError):
        dumps_deterministic({"x": float("inf")})


def test_span_to_dict_sorts_attrs():
    span = Span(1, "s", 0.0, attrs={"z": 1, "a": 2})
    assert list(span.to_dict()["attrs"]) == ["a", "z"]
