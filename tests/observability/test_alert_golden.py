"""Golden determinism: fixed-seed SLO grading is byte-identical.

The tentpole contract for streaming telemetry and alerting extends the
observability contract of docs/OBSERVABILITY.md: with the observer
enabled and SLOs declared, two runs of the same fixed-seed chaos
experiment must produce byte-for-byte identical alert logs and SLO
reports — and declaring the SLOs must not perturb the simulation
itself.
"""

import hashlib

from repro.datacenter import MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent
from repro.observability import (AvailabilityObjective, BurnRateRule,
                                 Observer, QueueWaitObjective)
from repro.resilience import ChaosExperiment, ExponentialBackoff
from repro.workload import Task


def _experiment(graded=True):
    def workload(streams):
        rng = streams.stream("workload")
        return [Task(runtime=rng.uniform(10.0, 40.0), cores=2,
                     submit_time=rng.uniform(0.0, 20.0), name=f"t{i}")
                for i in range(24)]

    def failures(streams, racks, horizon):
        rng = streams.stream("failures")
        names = [name for rack in racks for name in rack]
        victims = tuple(sorted(rng.sample(names, k=3)))
        return [FailureEvent(time=30.0, machine_names=victims,
                             duration=20.0)]

    kwargs = {}
    if graded:
        kwargs["slos"] = [
            AvailabilityObjective(
                "exec-success", good="datacenter.executions_finished",
                bad="datacenter.executions_interrupted", target=0.95),
            QueueWaitObjective("fast-start", threshold=25.0, target=0.9),
        ]
        kwargs["slo_rules"] = (
            BurnRateRule("fast", long_window=60.0, short_window=15.0,
                         threshold=2.0),)
        kwargs["telemetry_interval"] = 5.0
    return ChaosExperiment(
        cluster=lambda: homogeneous_cluster("c", 8, MachineSpec(cores=4),
                                            machines_per_rack=4),
        workload=workload, failures=failures, seed=23, horizon=250.0,
        retry_policy=ExponentialBackoff(max_attempts=6, base=1.0, cap=20.0),
        **kwargs)


def _graded_run():
    observer = Observer()
    report = _experiment().run(observer=observer)
    return observer, report


def test_alert_log_and_slo_report_are_byte_identical():
    _, report_a = _graded_run()
    _, report_b = _graded_run()
    bytes_a = report_a.alert_log.json().encode()
    bytes_b = report_b.alert_log.json().encode()
    assert hashlib.sha256(bytes_a).hexdigest() == \
        hashlib.sha256(bytes_b).hexdigest()
    assert report_a.slo_report == report_b.slo_report
    assert report_a.summary() == report_b.summary()
    # The scenario is tuned to actually alert — an empty log would make
    # this test vacuous.
    assert len(report_a.alert_log.fires()) > 0


def test_slo_grading_does_not_perturb_the_simulation():
    plain = _experiment(graded=False).run(observer=Observer())
    graded_observer = Observer()
    graded = _experiment().run(observer=graded_observer)
    plain_summary = plain.summary()
    graded_summary = graded.summary()
    # Every simulation-outcome field matches; only the violations count
    # may differ (SLO verdicts are appended as violations by design).
    drifted = {key for key in plain_summary
               if plain_summary[key] != graded_summary[key]}
    assert drifted <= {"violations"}
    # And the trace the observer collected is byte-identical too.
    control = Observer()
    _experiment(graded=False).run(observer=control)
    assert control.trace_chrome_json() == graded_observer.trace_chrome_json()


def test_slo_violations_land_in_the_report():
    _, report = _graded_run()
    assert report.slo_report is not None
    assert set(report.slo_report) == {"exec-success", "fast-start"}
    slo_lines = [line for line in report.violations
                 if line.startswith("SLO ")]
    blown = [name for name, entry in report.slo_report.items()
             if not entry["ok"]]
    assert len(slo_lines) == len(blown)


def test_declaring_slos_without_observer_is_an_error():
    import pytest
    with pytest.raises(ValueError):
        _experiment().run()
