"""Integration: burn-rate alerts drive autoscaling and MAPE-K adaptation.

The tentpole acceptance criterion for the SLO layer: a fired alert
must demonstrably *cause* an adaptation — the paper's monitoring →
analysis → action loop (P4) closed end-to-end inside one simulation.
"""

import pytest

from repro.autoscaling import AutoscalingController
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.observability import (BurnRateRule, Observer,
                                 QueueWaitObjective, SLOEngine,
                                 StreamingPipeline)
from repro.scheduling import ClusterScheduler
from repro.selfaware import AlertDrivenAdaptation, MAPEKLoop
from repro.sim import Simulator
from repro.workload import Task


class _PinnedAutoscaler:
    """Pathological policy: always one machine, whatever the demand."""

    name = "pinned"

    def decide(self, snapshot):
        return 1


def _overloaded_rig():
    """One leased machine, thirty queued tasks: the queue-wait SLO burns."""
    sim = Simulator()
    observer = Observer()
    observer.attach(sim)
    cluster = homogeneous_cluster("adapt", 6, MachineSpec(cores=2),
                                  machines_per_rack=3)
    datacenter = Datacenter(sim, [cluster], name="adapt-dc")
    scheduler = ClusterScheduler(sim, datacenter)
    controller = AutoscalingController(sim, datacenter, scheduler,
                                       _PinnedAutoscaler(), interval=1000.0)
    pipeline = StreamingPipeline(sim, observer.metrics, interval=1.0)
    engine = SLOEngine(
        pipeline,
        objectives=[QueueWaitObjective("fast-start", threshold=5.0,
                                       target=0.9)],
        rules=(BurnRateRule("fast", long_window=8.0, short_window=2.0,
                            threshold=2.0),))

    def arrivals(sim):
        yield sim.timeout(0.5)  # after the t=0 scale-down to one machine
        for i in range(30):
            scheduler.submit(Task(runtime=4.0, cores=1, submit_time=sim.now,
                                  name=f"load{i}"))

    sim.process(arrivals(sim))
    pipeline.attach(until=120.0)
    return sim, observer, scheduler, controller, engine


def test_burn_rate_alert_triggers_an_autoscaling_boost():
    sim, observer, scheduler, controller, engine = _overloaded_rig()
    controller.respond_to_alerts(engine, boost=3)
    assert controller.leased_machines == 6  # nothing scaled down yet
    sim.run(until=120.0)
    scheduler.stop()
    # The SLO burned, an alert fired, and the boost leased machines the
    # pinned policy never would have.
    assert len(engine.alerts.fires()) >= 1
    assert controller.alert_boosts >= 1
    assert controller.leased_machines > 1
    metrics = observer.metrics.snapshot()
    assert metrics["counters"]["autoscaling.alert_boosts"] == \
        controller.alert_boosts
    boosts = [span for span in observer.tracer.spans
              if span.name == "alert-boost"]
    assert len(boosts) == controller.alert_boosts
    first_fire = engine.alerts.fires()[0].time
    assert boosts[0].start == first_fire  # same event, same sim instant


def test_boost_is_causal_not_coincidental():
    # Control run: identical scenario, nobody subscribed to alerts.
    sim, _, scheduler, controller, engine = _overloaded_rig()
    sim.run(until=120.0)
    scheduler.stop()
    assert len(engine.alerts.fires()) >= 1  # the alert still fires...
    assert controller.alert_boosts == 0     # ...but nothing reacts
    assert controller.leased_machines == 1  # pinned policy holds


def test_alert_fires_a_mapek_iteration_out_of_cadence():
    sim, observer, scheduler, controller, engine = _overloaded_rig()
    actions_taken = []
    loop = MAPEKLoop(
        sim,
        sensor=lambda: {"queue": float(len(scheduler.queue))},
        analyze=lambda knowledge, obs: {"pressure": obs["queue"]},
        plan=lambda knowledge, symptoms: (
            {"boost": 1.0} if symptoms["pressure"] > 5 else {}),
        execute=actions_taken.append,
        interval=500.0)  # periodic cadence far beyond the run horizon
    bridge = AlertDrivenAdaptation(engine, loop=loop)
    sim.run(until=120.0)
    scheduler.stop()
    fires = engine.alerts.fires()
    assert len(fires) >= 1
    assert bridge.triggered  # every transition was seen
    # One periodic iteration at t=0 plus one per alert fire: the alert
    # demonstrably drove extra M-A-P-E iterations.
    assert loop.iterations == 1 + len(fires)
    # The alert-driven iteration sensed real overload and planned a boost.
    assert any(action.get("boost") for action in actions_taken)
    alert_snapshots = loop.knowledge.history[1:]
    assert alert_snapshots[0][0] == fires[0].time


def test_handler_receives_resolves_too():
    sim, observer, scheduler, controller, engine = _overloaded_rig()
    controller.respond_to_alerts(engine, boost=5)  # recover quickly
    seen = []
    AlertDrivenAdaptation(engine, handler=seen.append)
    sim.run(until=120.0)
    scheduler.stop()
    kinds = {event.kind for event in seen}
    assert kinds == {"fire", "resolve"}
    assert seen == list(engine.alerts)


def test_bridge_requires_a_reaction():
    sim, _, _, _, engine = _overloaded_rig()
    with pytest.raises(ValueError):
        AlertDrivenAdaptation(engine)


def test_boost_must_be_positive():
    _, _, _, controller, engine = _overloaded_rig()
    with pytest.raises(ValueError):
        controller.respond_to_alerts(engine, boost=0)
