"""Integration: detecting emergent behavior (P9, §3.2, C6).

The paper's example of functional emergence is exaptation — "changing
the function of a design" (footnote: DNS tunneling turned web lookup
infrastructure into an arbitrary transport).  This test reproduces the
phenomenon on the FaaS substrate: a function deployed for occasional
thumbnailing is exapted by users into a bulk transport, and the
monitoring side (C6's anomaly detectors over P9's "constantly
monitoring for evolutionary and emergent behavior") catches the shift.
"""


from repro.faas import FaaSPlatform, FunctionSpec
from repro.selfaware import ThresholdDetector, ZScoreDetector
from repro.sim import Simulator


def test_exaptation_shows_up_in_the_invocation_stream():
    sim = Simulator()
    platform = FaaSPlatform(sim, concurrency=64)
    platform.deploy(FunctionSpec("thumbnail", mean_runtime=0.2,
                                 cold_start=0.1, keep_alive=300.0))
    # Rate: the designed pattern peaks at ~2 calls per 10 s interval;
    # 5+ is emergent. Duration: z-score over the (slightly jittered)
    # designed service times.
    rate_detector = ThresholdDetector(high=5.0)
    duration_detector = ZScoreDetector(window=100, threshold=4.0,
                                       min_samples=10)
    anomalies_at: list[float] = []

    def designed_use(sim):
        # Phase 1: the designed function — occasional small thumbnails.
        for index in range(30):
            jitter = 0.02 * ((index % 5) - 2)
            yield platform.invoke("thumbnail", runtime=0.2 + jitter)
            yield sim.timeout(10.0)

    def exapted_use(sim):
        # Phase 2: users discover the function moves bytes — long
        # invocations in rapid-fire bursts (the DNS-tunneling pattern).
        yield sim.timeout(320.0)
        for _ in range(30):
            # Fire-and-forget: the tunnelers do not wait for completion.
            platform.invoke("thumbnail", runtime=3.0)
            yield sim.timeout(0.5)

    def monitor(sim):
        # P9's continuous monitoring: sample the per-interval call rate
        # and each invocation's duration.
        seen = 0
        while True:
            yield sim.timeout(10.0)
            current = len(platform.invocations)
            rate = current - seen
            seen = current
            if rate_detector.observe(float(rate)):
                anomalies_at.append(sim.now)
            for invocation in platform.invocations[
                    current - rate:current]:
                duration = invocation.finish_time - invocation.start_time
                if duration_detector.observe(duration):
                    anomalies_at.append(sim.now)

    sim.process(designed_use(sim))
    sim.process(exapted_use(sim))
    sim.process(monitor(sim))
    sim.run(until=700.0)

    # During the designed phase nothing is anomalous...
    assert all(t > 320.0 for t in anomalies_at)
    # ...but the exapted phase trips both detectors.
    assert anomalies_at, "rate shift was never detected"
    assert duration_detector.anomalies, "duration shift was never detected"
    assert rate_detector.anomalies, "rate shift was never detected"
    assert min(anomalies_at) < 700.0
    # The emergent load is real: most invocations now violate the
    # designed duration envelope.
    long_calls = [i for i in platform.invocations
                  if i.finish_time - i.start_time > 1.0]
    assert len(long_calls) == 30
