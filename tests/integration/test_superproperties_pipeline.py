"""Integration: the P5 super-scalability index from real measurements.

Super-scalability "combines the properties of closed systems (e.g.,
weak and strong scalability) and of open systems (e.g., the many faces
of elasticity)".  This test computes the index end-to-end: strong- and
weak-scaling efficiencies come from a Graphalytics run, the elasticity
deviation from an autoscaled datacenter run — no hand-picked scores.
"""


from repro.autoscaling import AutoscalingController, ReactAutoscaler
from repro.core import super_scalability
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.graphproc import GraphalyticsHarness, default_workload
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import Task


def measured_scaling_efficiencies():
    harness = GraphalyticsHarness(default_workload(scale=150, seed=9))
    strong = harness.strong_scaling("dataflow-engine", "pr", "uniform",
                                    worker_counts=(1, 8))
    strong_efficiency = strong[-1][1] / strong[-1][0]  # speedup / workers
    weak = harness.weak_scaling("dataflow-engine", "bfs", base_scale=80,
                                worker_counts=(1, 4))
    weak_efficiency = min(1.0, weak[-1][1])
    return strong_efficiency, weak_efficiency


def measured_elastic_deviation():
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 8, MachineSpec(cores=4, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc)
    controller = AutoscalingController(sim, dc, scheduler,
                                       ReactAutoscaler(), interval=5.0)
    for burst_start in (0.0, 100.0, 200.0):
        for i in range(6):
            task = Task(runtime=20.0, cores=4,
                        submit_time=burst_start + i * 1.0)

            def submit_later(sim, task=task):
                delay = task.submit_time - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                scheduler.submit(task)

            sim.process(submit_later(sim))
    sim.run(until=400.0)
    controller.stop()
    assert len(scheduler.completed) == 18
    return controller.elasticity(0.0, 400.0).elastic_deviation()


def test_super_scalability_from_real_runs():
    strong_efficiency, weak_efficiency = measured_scaling_efficiencies()
    deviation = measured_elastic_deviation()

    assert 0.0 < strong_efficiency <= 1.0
    assert 0.0 < weak_efficiency <= 1.0
    assert deviation >= 0.0

    index = super_scalability(strong_efficiency, weak_efficiency,
                              deviation)
    assert 0.0 < index < 1.0  # real systems are never perfect

    # The index genuinely couples both sides: degrading either the
    # closed-system side or the open-system side lowers it.
    worse_scaling = super_scalability(strong_efficiency / 2,
                                      weak_efficiency / 2, deviation)
    worse_elasticity = super_scalability(strong_efficiency,
                                         weak_efficiency,
                                         deviation + 5.0)
    assert worse_scaling < index
    assert worse_elasticity < index
