"""Integration: the C13 transparency pipeline fed from a real run."""

import random

import pytest

from repro.core import SLA, SLO, Direction, NFRKind, Requirement
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent, FailureInjector
from repro.reporting import OperationalSnapshot, TransparencyReporter
from repro.scheduling import ClusterScheduler
from repro.selfaware import RecoveryPlanner
from repro.sim import Simulator
from repro.workload import Task


def run_quarter(seed: int, with_failures: bool):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 4, MachineSpec(cores=4, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc)
    RecoveryPlanner(scheduler, max_retries=5)
    events = []
    if with_failures:
        events = [FailureEvent(50.0, ("c-m0", "c-m1"), 30.0),
                  FailureEvent(200.0, ("c-m2",), 20.0)]
    injector = FailureInjector(sim, dc, events)
    rng = random.Random(seed)
    tasks = [Task(runtime=rng.uniform(5, 20), cores=rng.randint(1, 4),
                  submit_time=i * 2.0) for i in range(100)]

    def feeder(sim):
        for task in tasks:
            delay = task.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit(task)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=5000.0)
    stats = scheduler.statistics()
    sla = SLA("quarterly")
    sla.add(SLO("latency", Requirement(NFRKind.PERFORMANCE,
                                       "response_mean", target=60.0,
                                       direction=Direction.MINIMIZE)))
    sla.add(SLO("work", Requirement(NFRKind.SCALABILITY, "completed",
                                    target=100.0,
                                    direction=Direction.MAXIMIZE)))
    report = sla.evaluate(stats)
    return OperationalSnapshot(
        period=f"Q{seed}",
        completed_work=int(stats["completed"]),
        mean_latency=stats["response_mean"],
        sla_fraction_met=report.fraction_met,
        outages=len(events),
        tasks_lost_to_failures=injector.victim_tasks,
        cost_dollars=dc.total_energy_joules() / 3.6e6 * 0.25,
        energy_kilojoules=dc.total_energy_joules() / 1000.0,
        mean_utilization=dc.mean_utilization(),
    )


def test_transparency_pipeline_end_to_end():
    reporter = TransparencyReporter("batch-compute")
    reporter.publish(run_quarter(1, with_failures=True))
    reporter.publish(run_quarter(2, with_failures=False))

    # All stakeholder views render from real measurements.
    client = reporter.view("client")
    assert client["your work completed"] == 100
    operator = reporter.view("operator")
    assert 0.0 < operator["mean utilization"] <= 1.0
    assert operator["energy [kJ]"] > 0
    regulator = reporter.view("regulator")
    assert regulator["periods reported"] == 2
    assert regulator["total outages"] == 2

    # The failure-free quarter improved the risk trend.
    assert reporter.risk_trend() == "improving"
    assert reporter.outage_frequency() == pytest.approx(1.0)

    # The rendered text is stakeholder-readable (P6).
    text = reporter.render("client")
    assert "transparency report" in text
    assert "SLA objectives met" in text
