"""Integration tests: multiple substrates composed end-to-end."""

import random


from repro.autoscaling import AutoscalingController, ReactAutoscaler
from repro.datacenter import (
    Datacenter,
    Federation,
    MachineSpec,
    heterogeneous_cluster,
    homogeneous_cluster,
    least_loaded_offload,
)
from repro.failures import FailureInjector, SpaceCorrelatedModel
from repro.scheduling import (
    ClusterScheduler,
    FastestFit,
    SJF,
    WorkflowEngine,
)
from repro.selfaware import RecoveryPlanner
from repro.sim import Simulator
from repro.workload import (
    PoissonArrivals,
    Task,
    TaskState,
    WorkloadGenerator,
    science_workload,
)


def test_autoscaled_datacenter_with_failures_and_recovery():
    """The C6 composition: autoscaling + failure injection + recovery."""
    sim = Simulator()
    # 16-core machines: the default workload mix includes HPC tasks of
    # up to 16 cores, which must remain placeable.
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 12, MachineSpec(cores=16, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc, queue_policy=SJF())
    controller = AutoscalingController(sim, dc, scheduler,
                                       ReactAutoscaler(), interval=5.0)
    planner = RecoveryPlanner(scheduler, max_retries=8)
    model = SpaceCorrelatedModel(burst_rate=0.01, max_group=4,
                                 repair_median=30.0,
                                 rng=random.Random(1))
    racks = [[f"c-m{i}" for i in range(r * 4, (r + 1) * 4)]
             for r in range(3)]
    injector = FailureInjector(sim, dc, model.generate(500.0, racks))
    jobs = WorkloadGenerator(
        PoissonArrivals(0.3, rng=random.Random(2)),
        rng=random.Random(3)).generate(horizon=300.0)

    def feeder(sim):
        for job in jobs:
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            scheduler.submit_job(job)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=5000.0)
    controller.stop()
    expected = sum(len(j) for j in jobs)
    assert len(scheduler.completed) == expected
    # Failures occurred and were recovered, not silently dropped.
    if injector.victim_tasks:
        assert planner.total_retries >= 1
    # No task double-counted.
    assert len({t.task_id for t in scheduler.completed}) == expected


def test_science_workflows_on_heterogeneous_cluster():
    """§6.2: the full e-Science mix completes with dependencies intact."""
    sim = Simulator()
    dc = Datacenter(sim, [heterogeneous_cluster("sci", n_cpu=8, n_gpu=2)])
    scheduler = ClusterScheduler(sim, dc, placement_policy=FastestFit(),
                                 backfilling=True)
    engine = WorkflowEngine(sim, scheduler)
    workflows = science_workload(n_workflows=6, rate=0.01, seed=4)

    def feeder(sim):
        for workflow in workflows:
            delay = workflow.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            engine.submit(workflow)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=100_000.0)
    for workflow in workflows:
        assert workflow.is_finished, workflow.name
        for task in workflow:
            for dep in task.dependencies:
                assert dep.finish_time <= task.start_time + 1e-9
        # Makespan is bounded below by the critical path.
        assert workflow.makespan >= workflow.critical_path_length() / 4.0 - 1e-6


def test_federation_absorbs_local_overload():
    """C10: delegation keeps a federated deployment serving."""
    sim = Simulator()
    sites = [Datacenter(sim, [homogeneous_cluster(
        f"{name}-c", 2, MachineSpec(cores=4, memory=1e9))], name=name)
        for name in ("eu", "us", "ap")]
    federation = Federation(
        sim, sites,
        latency={("eu", "us"): 0.1, ("eu", "ap"): 0.25,
                 ("us", "ap"): 0.18},
        policy=least_loaded_offload(threshold=0.6))
    tasks = [Task(runtime=20.0, cores=4, name=f"t{i}") for i in range(12)]

    def feeder(sim):
        for task in tasks:
            federation.submit(task, "eu")
            yield sim.timeout(0.5)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=2000.0)
    assert all(t.state is TaskState.FINISHED for t in tasks)
    assert federation.offloaded_tasks > 0
    served_elsewhere = sum(len(dc.completed_tasks) for dc in sites[1:])
    assert served_elsewhere == federation.offloaded_tasks


def test_machines_never_oversubscribed_under_stress():
    """Global invariant: capacity is conserved through the whole run."""
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", 3, MachineSpec(cores=4, memory=8.0))])
    scheduler = ClusterScheduler(sim, dc, backfilling=True)
    rng = random.Random(5)
    tasks = [Task(runtime=rng.uniform(1, 10), cores=rng.randint(1, 4),
                  memory=rng.uniform(0.5, 8.0)) for _ in range(60)]

    violations = []

    def watchdog(sim):
        while True:
            violations.extend(
                (sim.now, machine.name) for machine in dc.machines()
                if (machine.cores_used > machine.spec.cores
                    or machine.memory_used > machine.spec.memory + 1e-9))
            yield sim.timeout(0.5)

    sim.process(watchdog(sim))
    for task in tasks:
        scheduler.submit(task)
    sim.run(until=1000.0)
    assert not violations
    assert len(scheduler.completed) == 60


def test_examples_run_clean():
    """Every shipped example executes without error."""
    import importlib.util
    import io
    import pathlib
    from contextlib import redirect_stdout

    examples = sorted(
        pathlib.Path(__file__).parents[2].joinpath("examples").glob("*.py"))
    assert len(examples) >= 3
    for path in examples:
        spec = importlib.util.spec_from_file_location(path.stem, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
        assert buffer.getvalue().strip(), f"{path.name} printed nothing"
