"""Unit tests for self-awareness: MAPE-K, PID, taxonomy, anomalies."""

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent, FailureInjector
from repro.scheduling import ClusterScheduler
from repro.selfaware import (
    APPLICABILITY,
    APPROACH_IMPLEMENTATIONS,
    AdaptationApproach,
    AdaptationProblem,
    Knowledge,
    MAPEKLoop,
    PIDController,
    RecoveryPlanner,
    ThresholdDetector,
    ZScoreDetector,
    approaches_for,
    problems_addressed_by,
)
from repro.sim import Simulator
from repro.workload import Task, TaskState


class TestKnowledge:
    def test_remember_and_recent(self):
        knowledge = Knowledge()
        for t in range(5):
            knowledge.remember(float(t), {"load": float(t)})
        assert knowledge.recent("load", n=3) == [2.0, 3.0, 4.0]
        assert knowledge.recent("missing") == []


class TestMAPEKLoop:
    def test_interval_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MAPEKLoop(sim, lambda: {}, lambda k, o: {}, lambda k, s: {},
                      lambda a: None, interval=0.0)

    def test_loop_drives_system_to_setpoint(self):
        sim = Simulator()
        system = {"capacity": 1.0, "load": 10.0}

        def sensor():
            return {"utilization": system["load"] / system["capacity"]}

        def analyze(knowledge, obs):
            return {"overload": obs["utilization"] - 1.0}

        def plan(knowledge, symptoms):
            if symptoms["overload"] > 0:
                return {"add_capacity": symptoms["overload"]}
            return {}

        def execute(actions):
            system["capacity"] += actions.get("add_capacity", 0.0)

        loop = MAPEKLoop(sim, sensor, analyze, plan, execute, interval=1.0)
        sim.run(until=20.0)
        loop.stop()
        assert system["capacity"] >= 9.9  # converged to the demand
        assert loop.iterations >= 10
        assert loop.knowledge.history

    def test_single_step(self):
        sim = Simulator()
        actions_log = []
        loop = MAPEKLoop(sim, lambda: {"x": 1.0},
                         lambda k, o: {"sym": o["x"]},
                         lambda k, s: {"act": s["sym"] * 2},
                         actions_log.append, interval=100.0)
        actions = loop.step()
        assert actions == {"act": 2.0}


class TestPIDController:
    def test_validation(self):
        with pytest.raises(ValueError):
            PIDController(0.0, output_limits=(1.0, -1.0))
        controller = PIDController(0.0)
        with pytest.raises(ValueError):
            controller.update(0.0, dt=0.0)

    def test_proportional_action(self):
        controller = PIDController(setpoint=10.0, kp=0.5)
        assert controller.update(6.0) == pytest.approx(2.0)
        assert controller.update(14.0) == pytest.approx(-2.0)

    def test_integral_eliminates_steady_error(self):
        controller = PIDController(setpoint=10.0, kp=0.0, ki=0.1)
        outputs = [controller.update(8.0) for _ in range(5)]
        assert outputs == sorted(outputs)  # integral winds up
        assert outputs[-1] > outputs[0]

    def test_output_clamped(self):
        controller = PIDController(setpoint=100.0, kp=10.0,
                                   output_limits=(-1.0, 1.0))
        assert controller.update(0.0) == 1.0

    def test_reset_clears_state(self):
        controller = PIDController(setpoint=10.0, kp=0.0, ki=1.0)
        controller.update(0.0)
        controller.reset()
        assert controller.update(10.0) == pytest.approx(0.0)

    def test_closed_loop_converges(self):
        controller = PIDController(setpoint=5.0, kp=0.4, ki=0.1)
        value = 0.0
        for _ in range(100):
            value += controller.update(value)
        assert value == pytest.approx(5.0, abs=0.2)


class TestAdaptationTaxonomy:
    def test_ten_problems_seven_approaches(self):
        assert len(AdaptationProblem) == 10
        assert len(AdaptationApproach) == 7

    def test_every_problem_has_approaches(self):
        for problem in AdaptationProblem:
            assert approaches_for(problem)

    def test_every_approach_has_implementation_pointer(self):
        for approach in AdaptationApproach:
            assert approach in APPROACH_IMPLEMENTATIONS

    def test_implementation_pointers_resolve(self):
        import importlib
        for target in APPROACH_IMPLEMENTATIONS.values():
            module_name, _, attribute = target.rpartition(".")
            try:
                module = importlib.import_module(target)
            except ModuleNotFoundError:
                try:
                    module = importlib.import_module(module_name)
                except ModuleNotFoundError:
                    pytest.skip(f"{module_name} not built yet")
                if getattr(module, "__file__", None) is None:
                    pytest.skip(f"{module_name} not built yet")
                assert hasattr(module, attribute), target

    def test_portfolio_applies_to_autoscaling(self):
        problems = problems_addressed_by(
            AdaptationApproach.PORTFOLIO_SCHEDULING)
        assert AdaptationProblem.AUTOSCALING in problems

    def test_applicability_covers_all_problems(self):
        assert set(APPLICABILITY) == set(AdaptationProblem)


class TestZScoreDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZScoreDetector(window=1)
        with pytest.raises(ValueError):
            ZScoreDetector(threshold=0.0)
        with pytest.raises(ValueError):
            ZScoreDetector(min_samples=1)

    def test_flags_outlier_after_warmup(self):
        detector = ZScoreDetector(window=50, threshold=3.0, min_samples=10)
        for i in range(20):
            assert not detector.observe(10.0 + (i % 3) * 0.1)
        assert detector.observe(100.0)
        assert detector.anomalies

    def test_warmup_never_flags(self):
        detector = ZScoreDetector(min_samples=10)
        assert not detector.observe(1e9)

    def test_outliers_do_not_poison_window(self):
        detector = ZScoreDetector(window=50, threshold=3.0, min_samples=10)
        for i in range(20):
            detector.observe(10.0 + (i % 3) * 0.1)
        assert detector.observe(100.0)
        assert detector.observe(100.0)  # still anomalous


class TestThresholdDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdDetector(low=2.0, high=1.0)

    def test_band_checks(self):
        detector = ThresholdDetector(low=0.0, high=10.0)
        assert not detector.observe(5.0)
        assert detector.observe(-1.0)
        assert detector.observe(11.0)
        assert detector.anomalies == [-1.0, 11.0]


class TestRecoveryPlanner:
    def test_validation(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
        scheduler = ClusterScheduler(sim, dc)
        with pytest.raises(ValueError):
            RecoveryPlanner(scheduler, max_retries=-1)

    def test_failed_task_recovers_after_repair(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 1, MachineSpec(cores=4, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        planner = RecoveryPlanner(scheduler, max_retries=3)
        FailureInjector(sim, dc, [FailureEvent(5.0, ("c-m0",), 10.0)])
        task = Task(runtime=20.0, cores=4)
        scheduler.submit(task)
        sim.run(until=100.0)
        assert task.state is TaskState.FINISHED
        assert planner.total_retries >= 1
        assert task in planner.recovered
        assert not planner.abandoned
