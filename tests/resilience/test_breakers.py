"""Unit tests for the circuit breaker automaton and deadlines."""

import pytest

from repro.resilience import BreakerState, CircuitBreaker, Deadline
from repro.sim import Simulator


def advance(sim, dt):
    sim.timeout(dt)
    sim.run()


class TestCircuitBreaker:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CircuitBreaker(sim, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(sim, recovery_timeout=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(sim, half_open_max=0)

    def test_opens_after_threshold_consecutive_failures(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_recovery_timeout(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 recovery_timeout=10.0)
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        advance(sim, 10.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 recovery_timeout=5.0, half_open_max=1)
        breaker.record_failure()
        advance(sim, 5.0)
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # only one probe at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 recovery_timeout=5.0)
        breaker.record_failure()
        advance(sim, 5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # The open period restarts from the probe failure.
        advance(sim, 4.0)
        assert breaker.state is BreakerState.OPEN
        advance(sim, 1.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_transition_log(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 recovery_timeout=5.0)
        breaker.record_failure()
        advance(sim, 5.0)
        breaker.allow()
        breaker.record_success()
        states = [state for _, state in breaker.transitions]
        assert states == [BreakerState.OPEN, BreakerState.HALF_OPEN,
                          BreakerState.CLOSED]


class TestDeadline:
    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_expiry(self):
        assert Deadline(5.0).expires_at(10.0) == 15.0
        assert Deadline(5.0).timeout == 5.0
