"""Unit tests for retry policies, sessions, and retry budgets."""

import random

import pytest

from repro.resilience import (
    ExponentialBackoff,
    FixedBackoff,
    NoRetry,
    RetryBudget,
)


class TestRetryPolicyValidation:
    def test_max_attempts_bounds(self):
        with pytest.raises(ValueError):
            FixedBackoff(max_attempts=0)
        with pytest.raises(ValueError):
            FixedBackoff(delay=-1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=-1.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=10.0, cap=5.0)
        with pytest.raises(ValueError):
            ExponentialBackoff(multiplier=0.5)
        with pytest.raises(ValueError):
            ExponentialBackoff(jitter="bogus")

    def test_max_retries_is_attempts_minus_one(self):
        assert NoRetry().max_retries == 0
        assert FixedBackoff(max_attempts=4).max_retries == 3


class TestNoRetry:
    def test_session_exhausted_immediately(self):
        session = NoRetry().session()
        assert session.exhausted
        assert session.next_delay() is None
        assert session.retries == 0


class TestFixedBackoff:
    def test_constant_delays_until_budget_spent(self):
        session = FixedBackoff(max_attempts=3, delay=2.5).session()
        assert session.next_delay() == 2.5
        assert session.next_delay() == 2.5
        assert session.next_delay() is None
        assert session.retries == 2
        assert session.exhausted


class TestExponentialBackoff:
    def test_deterministic_schedule(self):
        policy = ExponentialBackoff(max_attempts=5, base=1.0, cap=60.0,
                                    multiplier=2.0)
        session = policy.session()
        assert [session.next_delay() for _ in range(4)] == [1.0, 2.0, 4.0, 8.0]
        assert session.next_delay() is None

    def test_cap_limits_growth(self):
        policy = ExponentialBackoff(max_attempts=10, base=1.0, cap=5.0)
        session = policy.session()
        delays = [session.next_delay() for _ in range(9)]
        assert max(delays) == 5.0

    def test_jitter_requires_rng(self):
        session = ExponentialBackoff(jitter="full").session()
        with pytest.raises(ValueError):
            session.next_delay()

    def test_full_jitter_within_envelope(self):
        policy = ExponentialBackoff(max_attempts=6, base=1.0, cap=60.0,
                                    jitter="full")
        session = policy.session(random.Random(1))
        for retry_number in range(1, 6):
            delay = session.next_delay()
            assert 0.0 <= delay <= 2.0 ** (retry_number - 1)

    def test_decorrelated_jitter_bounded_by_base_and_cap(self):
        policy = ExponentialBackoff(max_attempts=50, base=1.0, cap=10.0,
                                    jitter="decorrelated")
        session = policy.session(random.Random(2))
        while (delay := session.next_delay()) is not None:
            assert 1.0 <= delay <= 10.0

    def test_jittered_delays_reproducible_per_seed(self):
        policy = ExponentialBackoff(max_attempts=6, jitter="decorrelated")
        first = [policy.session(random.Random(3)).next_delay()
                 for _ in range(5)]
        second = [policy.session(random.Random(3)).next_delay()
                  for _ in range(5)]
        assert first == second


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(max_tokens=0.0)

    def test_deposits_fund_retries(self):
        budget = RetryBudget(ratio=0.5, initial=0.0)
        assert not budget.try_spend()
        budget.record_attempt()
        budget.record_attempt()
        assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.granted == 1
        assert budget.denied == 2

    def test_tokens_capped(self):
        budget = RetryBudget(ratio=1.0, initial=0.0, max_tokens=3.0)
        for _ in range(10):
            budget.record_attempt()
        assert budget.tokens == 3.0

    def test_storm_is_throttled(self):
        # 100 first attempts at ratio 0.1 fund only ~20 retries
        # (10 initial + 10 deposited), not the 100 a correlated burst
        # would otherwise unleash.
        budget = RetryBudget(ratio=0.1, initial=10.0)
        for _ in range(100):
            budget.record_attempt()
        granted = sum(1 for _ in range(100) if budget.try_spend())
        assert granted == 20
