"""Breaker/deadline/fallback guards on FaaS calls and federation offloads."""

import pytest

from repro.datacenter import (
    Datacenter,
    Federation,
    MachineSpec,
    homogeneous_cluster,
)
from repro.faas import FaaSPlatform, FunctionSpec, ResilientInvoker
from repro.resilience import BreakerState, CircuitBreaker
from repro.sim import Simulator
from repro.workload import Task, TaskState


class TestResilientInvoker:
    def build(self, **kwargs):
        sim = Simulator()
        platform = FaaSPlatform(sim, concurrency=4)
        platform.deploy(FunctionSpec("f", mean_runtime=10.0, cold_start=0.0))
        return sim, platform, ResilientInvoker(platform, **kwargs)

    def test_validation(self):
        sim = Simulator()
        platform = FaaSPlatform(sim)
        with pytest.raises(ValueError):
            ResilientInvoker(platform, deadline=0.0)
        with pytest.raises(ValueError):
            ResilientInvoker(platform, fallback_runtime=-1.0)

    def test_fast_call_succeeds(self):
        sim, platform, invoker = self.build(deadline=20.0)
        call = invoker.invoke("f")
        result = sim.run(until=call)
        assert not result.fallback
        assert result.latency == pytest.approx(10.0)
        assert invoker.successes == 1

    def test_deadline_cancels_slow_call(self):
        sim, platform, invoker = self.build(deadline=5.0,
                                            fallback_runtime=0.5)
        call = invoker.invoke("f")
        result = sim.run(until=call)
        assert result.fallback
        assert result.timed_out
        assert result.finish_time == pytest.approx(5.5)
        assert invoker.timeouts == 1
        # The cancelled platform invocation never completed.
        sim.run()
        assert len(platform.invocations) == 0

    def test_breaker_opens_and_rejects_without_touching_platform(self):
        sim = Simulator()
        platform = FaaSPlatform(sim, concurrency=4)
        platform.deploy(FunctionSpec("f", mean_runtime=10.0, cold_start=0.0))
        breaker = CircuitBreaker(sim, failure_threshold=2,
                                 recovery_timeout=60.0)
        invoker = ResilientInvoker(platform, breaker=breaker, deadline=1.0,
                                   fallback_runtime=0.0)

        def scenario():
            first = yield invoker.invoke("f")
            second = yield invoker.invoke("f")
            assert first.timed_out and second.timed_out
            assert breaker.state is BreakerState.OPEN
            third = yield invoker.invoke("f")
            assert third.fallback and not third.timed_out
            return third

        done = sim.process(scenario())
        sim.run(until=done)
        sim.run()
        assert invoker.timeouts == 2
        assert invoker.rejections == 1
        assert breaker.calls_rejected >= 1

    def test_statistics(self):
        sim, platform, invoker = self.build(deadline=5.0)
        invoker.invoke("f", runtime=1.0)
        invoker.invoke("f", runtime=30.0)
        sim.run()
        stats = invoker.statistics()
        assert stats["calls"] == 2.0
        assert stats["successes"] == 1.0
        assert stats["timeouts"] == 1.0
        assert stats["fallback_fraction"] == pytest.approx(0.5)


class TestGuardedFederation:
    def build(self, policy, **kwargs):
        sim = Simulator()
        home = Datacenter(sim, [homogeneous_cluster(
            "h", 1, MachineSpec(cores=2))], name="home")
        peer = Datacenter(sim, [homogeneous_cluster(
            "p", 1, MachineSpec(cores=2))], name="peer")
        fed = Federation(sim, [home, peer],
                         latency={("home", "peer"): 1.0},
                         policy=policy, **kwargs)
        return sim, home, peer, fed

    def test_validation(self):
        sim = Simulator()
        home = Datacenter(sim, [homogeneous_cluster("h", 1)], name="home")
        with pytest.raises(ValueError):
            Federation(sim, [home], offload_deadline=0.0)
        with pytest.raises(ValueError):
            Federation(sim, [home], peer_breakers={"ghost": object()})

    def test_open_breaker_vetoes_offload(self):
        # An always-offload policy with an open peer breaker: the task
        # must run at home anyway.
        def always_peer(home, peers, task):
            return peers[0]

        sim, home, peer, fed = self.build(always_peer)
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 recovery_timeout=1000.0)
        fed.peer_breakers["peer"] = breaker
        breaker.record_failure()
        task = Task(runtime=10.0, cores=2)
        fed.submit(task, "home")
        sim.run()
        assert task.state is TaskState.FINISHED
        assert task.machine == "h-m0"
        assert fed.offloads_rejected == 1
        assert fed.offloaded_tasks == 0

    def test_remote_success_feeds_breaker(self):
        def always_peer(home, peers, task):
            return peers[0]

        sim, home, peer, fed = self.build(always_peer)
        breaker = CircuitBreaker(sim, failure_threshold=1)
        fed.peer_breakers["peer"] = breaker
        task = Task(runtime=10.0, cores=2)
        fed.submit(task, "home")
        sim.run()
        assert task.state is TaskState.FINISHED
        assert task.machine == "p-m0"
        assert breaker.state is BreakerState.CLOSED
        assert fed.offloaded_tasks == 1

    def test_deadline_recalls_stuck_offload(self):
        def always_peer(home, peers, task):
            return peers[0]

        sim, home, peer, fed = self.build(always_peer,
                                          offload_deadline=5.0)
        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 recovery_timeout=1000.0)
        fed.peer_breakers["peer"] = breaker
        # Saturate the peer so the delegated task cannot start there.
        blocker = Task(runtime=1000.0, cores=2, name="blocker")
        peer.execute(blocker, peer.machines()[0])
        task = Task(runtime=10.0, cores=2)
        fed.submit(task, "home")
        sim.run(until=50.0)
        assert task.state is TaskState.FINISHED
        assert task.machine == "h-m0"
        assert fed.offload_fallbacks == 1
        assert breaker.state is BreakerState.OPEN
