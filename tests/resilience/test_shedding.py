"""Load-shedding admission control and its scheduler integration."""

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.resilience import LoadSheddingAdmission
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import Task, TaskState


def build(threshold=0.9, shed_below=0, degrade_below=None,
          degrade_factor=0.5):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("c", 1, MachineSpec(cores=4))])
    admission = LoadSheddingAdmission(
        dc, threshold=threshold, shed_below=shed_below,
        degrade_below=degrade_below, degrade_factor=degrade_factor)
    scheduler = ClusterScheduler(sim, dc, admission=admission)
    return sim, dc, admission, scheduler


class TestLoadSheddingAdmission:
    def test_validation(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
        with pytest.raises(ValueError):
            LoadSheddingAdmission(dc, threshold=1.5)
        with pytest.raises(ValueError):
            LoadSheddingAdmission(dc, shed_below=2, degrade_below=1)
        with pytest.raises(ValueError):
            LoadSheddingAdmission(dc, degrade_factor=0.0)

    def test_admits_everything_when_underloaded(self):
        _, _, admission, _ = build(threshold=0.9, shed_below=10)
        task = Task(runtime=1.0, priority=0)
        assert admission.admit(task)
        assert not admission.shed

    def test_sheds_low_priority_when_overloaded(self):
        sim, dc, admission, scheduler = build(threshold=0.9, shed_below=1)
        scheduler.submit(Task(runtime=100.0, cores=4, priority=5,
                              name="hog"))
        low = Task(runtime=10.0, priority=0, name="low")
        high = Task(runtime=10.0, priority=1, name="high")

        def late_arrivals():
            yield sim.timeout(5.0)  # the hog now occupies all cores
            scheduler.submit(low)
            scheduler.submit(high)

        sim.process(late_arrivals())
        sim.run()
        assert low.state is TaskState.SHED
        assert low in scheduler.shed_tasks
        assert high.state is TaskState.FINISHED
        stats = admission.statistics()
        assert stats["shed"] == 1.0
        assert stats["admitted"] == 2.0
        assert 0.0 < stats["shed_fraction"] < 1.0

    def test_degrades_mid_priority_when_overloaded(self):
        sim, dc, admission, scheduler = build(
            threshold=0.9, shed_below=1, degrade_below=3,
            degrade_factor=0.5)
        scheduler.submit(Task(runtime=50.0, cores=4, priority=5))
        mid = Task(runtime=40.0, priority=2, name="mid")

        def late_arrival():
            yield sim.timeout(5.0)
            scheduler.submit(mid)

        sim.process(late_arrival())
        sim.run()
        assert mid.degraded
        assert mid.runtime == pytest.approx(20.0)
        assert mid.state is TaskState.FINISHED
        assert mid.finish_time == pytest.approx(70.0)  # 50 + 20
        assert admission.statistics()["degraded"] == 1.0
