"""Checkpoint/restart: arithmetic, policy, and execution integration."""

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent, FailureInjector
from repro.resilience import (
    CheckpointPolicy,
    checkpoints_remaining,
    preserved_work,
)
from repro.scheduling import ClusterScheduler
from repro.selfaware import RecoveryPlanner
from repro.sim import Simulator
from repro.workload import Task, TaskState


class TestCheckpointArithmetic:
    def test_checkpoints_remaining(self):
        assert checkpoints_remaining(90.0, 30.0) == 2
        assert checkpoints_remaining(30.0, 30.0) == 0
        assert checkpoints_remaining(31.0, 30.0) == 1
        assert checkpoints_remaining(0.0, 30.0) == 0
        with pytest.raises(ValueError):
            checkpoints_remaining(10.0, 0.0)

    def test_preserved_work(self):
        assert preserved_work(47.0, 15.0, 100.0) == 45.0
        assert preserved_work(14.9, 15.0, 100.0) == 0.0
        assert preserved_work(100.0, 30.0, 100.0) == 90.0
        with pytest.raises(ValueError):
            preserved_work(10.0, 0.0, 100.0)


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(interval=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(interval=10.0, overhead=-1.0)

    def test_stamps_only_long_tasks(self):
        policy = CheckpointPolicy(interval=30.0, overhead=1.0)
        long_task = Task(runtime=100.0)
        short_task = Task(runtime=10.0)
        assert policy.apply([long_task, short_task]) == 1
        assert long_task.checkpoint_interval == 30.0
        assert long_task.checkpoint_overhead == 1.0
        assert short_task.checkpoint_interval is None


class TestTaskProgress:
    def test_record_progress_preserves_at_boundaries(self):
        task = Task(runtime=100.0, checkpoint_interval=30.0)
        preserved, lost = task.record_progress(47.0)
        assert preserved == pytest.approx(30.0)
        assert lost == pytest.approx(17.0)
        assert task.checkpointed_work == pytest.approx(30.0)
        assert task.remaining_work == pytest.approx(70.0)

    def test_without_checkpointing_everything_is_lost(self):
        task = Task(runtime=100.0)
        preserved, lost = task.record_progress(47.0)
        assert preserved == 0.0
        assert lost == pytest.approx(47.0)

    def test_retry_keeps_checkpointed_work(self):
        task = Task(runtime=100.0, checkpoint_interval=30.0)
        task.start(0.0, "m")
        task.record_progress(65.0)
        task.fail(65.0)
        task.reset_for_retry()
        assert task.checkpointed_work == pytest.approx(60.0)
        assert task.remaining_work == pytest.approx(40.0)


class TestExecutionIntegration:
    def build(self, task):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 1, MachineSpec(cores=4))])
        scheduler = ClusterScheduler(sim, dc)
        scheduler.submit(task)
        return sim, dc, scheduler

    def test_interrupted_task_restarts_from_checkpoint(self):
        task = Task(runtime=100.0, cores=1, checkpoint_interval=20.0)
        sim, dc, scheduler = self.build(task)
        RecoveryPlanner(scheduler, max_retries=1)
        FailureInjector(sim, dc, [FailureEvent(50.0, ("c-m0",), 10.0)])
        sim.run()
        assert task.state is TaskState.FINISHED
        # 40s checkpointed at the failure; the retry served only the
        # remaining 60s: finish = 60 (repair) + 60.
        assert task.finish_time == pytest.approx(120.0)
        assert dc.preserved_core_seconds == pytest.approx(40.0)
        assert dc.wasted_core_seconds == pytest.approx(10.0)
        # Strictly less than one interval lost.
        (_, lost), = dc.execution_losses
        assert lost < 20.0

    def test_loss_never_exceeds_interval(self):
        task = Task(runtime=100.0, cores=1, checkpoint_interval=15.0)
        sim, dc, scheduler = self.build(task)
        RecoveryPlanner(scheduler, max_retries=3)
        FailureInjector(sim, dc, [FailureEvent(37.0, ("c-m0",), 5.0),
                                  FailureEvent(80.0, ("c-m0",), 5.0)])
        sim.run()
        assert task.state is TaskState.FINISHED
        assert dc.execution_losses
        for _, lost in dc.execution_losses:
            assert lost < 15.0 + 1e-9

    def test_checkpoint_overhead_extends_service_time(self):
        task = Task(runtime=90.0, cores=1, checkpoint_interval=30.0,
                    checkpoint_overhead=2.0)
        sim, dc, scheduler = self.build(task)
        sim.run()
        # Two checkpoints written (at 30 and 60), 2s each.
        assert task.finish_time == pytest.approx(94.0)
