"""Chaos-experiment acceptance tests: the ISSUE's end-to-end scenario."""

import dataclasses

import pytest

from repro.datacenter import MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent, SpaceCorrelatedModel
from repro.resilience import (
    ChaosExperiment,
    ChaosReport,
    CheckpointPolicy,
    ExponentialBackoff,
    HedgePolicy,
    LoadSheddingAdmission,
)
from repro.workload import Task

N_MACHINES = 16


def make_cluster():
    return homogeneous_cluster("c", N_MACHINES, MachineSpec(cores=4),
                               machines_per_rack=4)


def make_workload(streams):
    rng = streams.stream("workload")
    return [Task(runtime=rng.uniform(20.0, 120.0), cores=2,
                 submit_time=rng.uniform(0.0, 50.0), priority=i % 3,
                 name=f"t{i}")
            for i in range(80)]


def burst_failures(streams, racks, horizon):
    """One space-correlated burst killing >= 25% of machines mid-run."""
    rng = streams.stream("failures")
    names = [name for rack in racks for name in rack]
    n_victims = max(1, len(names) // 2)  # 50% of the fleet
    victims = tuple(sorted(rng.sample(names, k=n_victims)))
    return [FailureEvent(time=60.0, machine_names=victims, duration=40.0)]


def make_experiment(seed=7, **overrides):
    kwargs = dict(
        cluster=make_cluster,
        workload=make_workload,
        failures=burst_failures,
        seed=seed,
        horizon=500.0,
        retry_policy=ExponentialBackoff(max_attempts=6, base=1.0,
                                        cap=60.0, jitter="decorrelated"),
        checkpoint_policy=CheckpointPolicy(interval=15.0, overhead=0.5),
        hedge_policy=HedgePolicy(delay_factor=2.5, min_runtime=30.0),
        availability_slo=0.9,
    )
    kwargs.update(overrides)
    return ChaosExperiment(**kwargs)


class TestChaosAcceptance:
    """The ISSUE's acceptance scenario, checked invariant by invariant."""

    @pytest.fixture(scope="class")
    def report(self):
        return make_experiment().run()

    def test_burst_hits_at_least_a_quarter_of_machines(self, report):
        assert report.failure_events == 1
        assert report.victim_tasks > 0
        # The burst takes down 50% of machines (>= the 25% the issue
        # demands); availability reflects real downtime.
        assert report.availability < 1.0

    def test_all_non_shed_tasks_eventually_finish(self, report):
        assert report.tasks_finished + report.tasks_shed == report.tasks_total
        assert report.tasks_abandoned == 0
        assert report.unrecovered_victims == 0

    def test_no_task_exceeds_the_retry_budget(self, report):
        assert report.max_attempts_observed <= 6
        assert report.total_retries > 0  # the burst did force retries

    def test_checkpointed_tasks_lose_less_than_one_interval(self, report):
        assert report.preserved_core_seconds > 0.0
        # Any violation (including checkpoint-loss > interval) would be
        # reported here.
        assert report.violations == []
        assert report.ok

    def test_metrics_reported(self, report):
        assert report.goodput_core_seconds > 0.0
        assert report.goodput_rate > 0.0
        assert report.wasted_core_seconds > 0.0
        assert 0.0 < report.wasted_fraction < 1.0
        assert report.mean_recovery_time > 0.0
        assert report.max_recovery_time >= report.mean_recovery_time
        assert 0.0 < report.availability < 1.0
        assert report.slo_met == (report.availability >= 0.9)
        summary = report.summary()
        for key in ("goodput_rate", "wasted_core_seconds",
                    "mean_recovery_time", "availability"):
            assert key in summary

    def test_same_seed_is_bit_identical(self, report):
        again = make_experiment().run()
        assert dataclasses.asdict(again) == dataclasses.asdict(report)

    def test_different_seed_differs(self, report):
        other = make_experiment(seed=8).run()
        assert dataclasses.asdict(other) != dataclasses.asdict(report)


class TestChaosVariants:
    def test_space_correlated_model_composes(self):
        def model_failures(streams, racks, horizon):
            model = SpaceCorrelatedModel(burst_rate=0.02, max_group=8,
                                         repair_median=30.0,
                                         rng=streams.stream("failures"))
            return model.generate(horizon, racks)

        report = make_experiment(failures=model_failures, horizon=300.0).run()
        assert report.ok
        assert report.failure_events > 0

    def test_injection_jitter_stays_deterministic(self):
        first = make_experiment(injection_jitter=5.0).run()
        second = make_experiment(injection_jitter=5.0).run()
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        unjittered = make_experiment().run()
        assert dataclasses.asdict(first) != dataclasses.asdict(unjittered)

    def test_load_shedding_drops_low_priority_under_pressure(self):
        def shedding_admission(datacenter):
            return LoadSheddingAdmission(datacenter, threshold=0.5,
                                         shed_below=1)

        report = make_experiment(admission=shedding_admission).run()
        assert report.tasks_shed > 0
        assert report.ok
        assert report.tasks_finished + report.tasks_shed == report.tasks_total

    def test_empty_workload_rejected(self):
        experiment = make_experiment(workload=lambda streams: [])
        with pytest.raises(ValueError):
            experiment.run()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_experiment(horizon=0.0)
        with pytest.raises(ValueError):
            make_experiment(availability_slo=1.5)
        with pytest.raises(ValueError):
            make_experiment(injection_jitter=-1.0)


class TestChaosReport:
    def test_ok_reflects_violations(self):
        report = ChaosReport(seed=0, makespan=1.0)
        assert report.ok
        report.violations.append("boom")
        assert not report.ok
