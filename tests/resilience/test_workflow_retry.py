"""Bounded workflow retries and terminal WorkflowFailed semantics."""

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.failures import FailureEvent, FailureInjector
from repro.resilience import ExponentialBackoff, FixedBackoff
from repro.scheduling import ClusterScheduler, WorkflowEngine, WorkflowFailed
from repro.sim import RandomStreams, Simulator
from repro.workload import Task, TaskState
from repro.workload.workflow import Workflow


def build(events=()):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("c", 1, MachineSpec(cores=4))])
    scheduler = ClusterScheduler(sim, dc)
    injector = FailureInjector(sim, dc, list(events)) if events else None
    return sim, dc, scheduler, injector


def one_task_workflow(runtime):
    wf = Workflow("wf")
    task = wf.add_task(Task(runtime=runtime, cores=1, name="only"))
    return wf, task


class TestBoundedRetries:
    def test_recovers_within_budget(self):
        sim, dc, scheduler, _ = build(
            events=[FailureEvent(5.0, ("c-m0",), 1.0)])
        engine = WorkflowEngine(sim, scheduler)
        wf, task = one_task_workflow(runtime=10.0)
        done = engine.submit(wf)
        result = sim.run(until=done)
        assert result is wf
        assert task.state is TaskState.FINISHED
        assert task.attempts == 2
        assert not engine.failed

    def test_backoff_delays_resubmission(self):
        sim, dc, scheduler, _ = build(
            events=[FailureEvent(5.0, ("c-m0",), 1.0)])
        engine = WorkflowEngine(sim, scheduler,
                                retry_policy=FixedBackoff(max_attempts=2,
                                                          delay=10.0))
        wf, task = one_task_workflow(runtime=10.0)
        done = engine.submit(wf)
        sim.run(until=done)
        # Failed at 5, resubmitted at 15, served 10s.
        assert task.finish_time == pytest.approx(25.0)

    def test_exhausted_budget_fails_workflow_terminally(self):
        # The machine dies during every attempt: default policy allows
        # 3 attempts (2 retries), then the workflow fails for good.
        sim, dc, scheduler, _ = build(
            events=[FailureEvent(5.0, ("c-m0",), 1.0),
                    FailureEvent(20.0, ("c-m0",), 1.0),
                    FailureEvent(40.0, ("c-m0",), 1.0)])
        engine = WorkflowEngine(sim, scheduler)
        wf, task = one_task_workflow(runtime=30.0)
        done = engine.submit(wf)
        with pytest.raises(WorkflowFailed) as exc_info:
            sim.run(until=done)
        assert exc_info.value.workflow is wf
        assert exc_info.value.task is task
        assert engine.failed == {wf: task}
        assert engine.active_workflows == 0
        # The retry budget was respected exactly: 3 attempts, no more.
        assert task.attempts == 3
        sim.run()  # the defused event does not crash a draining run
        assert task.state is TaskState.FAILED

    def test_failed_workflow_withdraws_queued_siblings(self):
        sim, dc, scheduler, _ = build(
            events=[FailureEvent(5.0, ("c-m0",), 100.0)])
        engine = WorkflowEngine(
            sim, scheduler, retry_policy=FixedBackoff(max_attempts=1))
        wf = Workflow("wide")
        doomed = wf.add_task(Task(runtime=30.0, cores=4, name="doomed"))
        queued = wf.add_task(Task(runtime=5.0, cores=4, name="queued"))
        engine.submit(wf)
        sim.run()
        assert wf in engine.failed
        assert queued not in scheduler.queue

    def test_jittered_retries_reproducible_with_streams(self):
        def run_once():
            sim, dc, scheduler, _ = build(
                events=[FailureEvent(5.0, ("c-m0",), 1.0)])
            engine = WorkflowEngine(
                sim, scheduler,
                retry_policy=ExponentialBackoff(max_attempts=4, base=1.0,
                                                jitter="decorrelated"),
                streams=RandomStreams(42))
            wf, task = one_task_workflow(runtime=10.0)
            done = engine.submit(wf)
            sim.run(until=done)
            return task.finish_time

        assert run_once() == run_once()
