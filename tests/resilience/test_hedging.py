"""Hedged (speculative) execution: policy and scheduler race mechanics."""

import pytest

from repro.datacenter import (
    Cluster,
    Datacenter,
    Machine,
    MachineSpec,
    Rack,
)
from repro.resilience import HedgePolicy
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import Task, TaskState


def straggler_cluster():
    """One slow machine (listed first, so FirstFit prefers it) + one fast."""
    slow = Machine("slow", MachineSpec(cores=4, speed=0.1))
    fast = Machine("fast", MachineSpec(cores=4, speed=1.0))
    return Cluster("c", [Rack("r0", [slow, fast])])


def build(hedge_policy):
    sim = Simulator()
    dc = Datacenter(sim, [straggler_cluster()])
    scheduler = ClusterScheduler(sim, dc, hedge_policy=hedge_policy)
    return sim, dc, scheduler


class TestHedgePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay_factor=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_hedges=0)
        with pytest.raises(ValueError):
            HedgePolicy(min_runtime=-1.0)

    def test_thresholds(self):
        policy = HedgePolicy(delay_factor=2.0, min_delay=5.0,
                             min_runtime=10.0)
        assert not policy.should_consider(9.0)
        assert policy.should_consider(10.0)
        assert policy.hedge_delay(1.0) == 5.0
        assert policy.hedge_delay(10.0) == 20.0


class TestHedgedExecution:
    def test_backup_wins_against_straggler(self):
        # Primary lands on the slow machine: 10s of work takes 100s.
        # The backup launches at t=20 on the fast machine and finishes
        # at t=30; the primary is cancelled and adopts the result.
        sim, dc, scheduler = build(HedgePolicy(delay_factor=0.2))
        task = Task(runtime=10.0, cores=4)
        scheduler.submit(task)
        sim.run()
        assert task.state is TaskState.FINISHED
        assert task.finish_time == pytest.approx(30.0)
        assert scheduler.hedges_launched == 1
        assert scheduler.hedge_wins == 1
        assert scheduler.hedge_rescues == 0
        # Exactly one completion, reported under the primary identity.
        assert scheduler.completed == [task]

    def test_primary_wins_cancels_backup(self):
        # delay_factor 0.9 -> backup at t=90, primary done at t=100;
        # fast backup would finish at t=100 too... use 0.95: backup
        # launches at 95, would finish at 105, primary wins at 100.
        sim, dc, scheduler = build(HedgePolicy(delay_factor=0.95))
        task = Task(runtime=10.0, cores=4)
        scheduler.submit(task)
        sim.run()
        assert task.state is TaskState.FINISHED
        assert task.finish_time == pytest.approx(100.0)
        assert scheduler.completed == [task]
        assert scheduler.hedges_launched == 1
        assert scheduler.hedge_wins == 0
        # The losing backup's interruption is not counted as a failure
        # surfaced to observers.
        assert len(scheduler.completed) == 1

    def test_backup_rescues_failed_primary(self):
        # Backup launches at t=20 (fast machine, done at t=30); the
        # slow machine dies at t=25 -> the primary genuinely fails and
        # the still-running backup becomes the recovery path.
        sim, dc, scheduler = build(HedgePolicy(delay_factor=0.2))
        task = Task(runtime=10.0, cores=4)
        scheduler.submit(task)

        def kill_slow():
            yield sim.timeout(25.0)
            dc.fail_machine(dc.machines()[0])

        sim.process(kill_slow())
        sim.run()
        assert task.state is TaskState.FINISHED
        assert task.finish_time == pytest.approx(30.0)
        assert scheduler.hedge_rescues == 1
        assert scheduler.completed == [task]

    def test_short_tasks_are_not_hedged(self):
        sim, dc, scheduler = build(HedgePolicy(delay_factor=0.2,
                                               min_runtime=50.0))
        task = Task(runtime=10.0, cores=4)
        scheduler.submit(task)
        sim.run()
        assert scheduler.hedges_launched == 0
        assert task.state is TaskState.FINISHED
