"""Unit tests for the FaaS architecture, platform, and compositions."""

import pytest

from repro.faas import (
    Composition,
    CompositionEngine,
    FaaSPlatform,
    FaaSReferenceArchitecture,
    FunctionSpec,
    PLATFORM_MAPPINGS,
    parallel,
    sequence,
    step,
    validate_platform_mapping,
)
from repro.sim import Simulator


class TestReferenceArchitecture:
    def test_four_layers_bl_to_ol(self):
        arch = FaaSReferenceArchitecture()
        assert len(arch) == 4
        numbers = [layer.number for layer in arch]
        assert numbers == [4, 3, 2, 1]

    def test_business_vs_operational_split(self):
        arch = FaaSReferenceArchitecture()
        business = [l.name for l in arch.business_layers()]
        assert business == ["Function Composition Layer",
                            "Function Management Layer"]

    def test_figure3_correspondence_matches_paper(self):
        mapping = FaaSReferenceArchitecture().figure3_correspondence()
        assert mapping[4] == 5  # composition -> layer 5
        assert mapping[3] == 4  # management -> layer 4 runtime engine
        assert mapping[2] == 3  # orchestration -> layer 3

    def test_layer_lookup(self):
        arch = FaaSReferenceArchitecture()
        assert arch.layer(2).name == "Resource Orchestration Layer"
        with pytest.raises(KeyError):
            arch.layer(7)

    def test_known_platforms_validate_cleanly(self):
        for platform in PLATFORM_MAPPINGS:
            assert validate_platform_mapping(platform) == []

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            validate_platform_mapping("lambda-clone")


class TestFunctionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("f", mean_runtime=0.0)
        with pytest.raises(ValueError):
            FunctionSpec("f", memory_gb=0.0)
        with pytest.raises(ValueError):
            FunctionSpec("f", cold_start=-1.0)
        with pytest.raises(ValueError):
            FunctionSpec("f", keep_alive=-1.0)


class TestFaaSPlatform:
    def build(self, **platform_kwargs):
        sim = Simulator()
        platform = FaaSPlatform(sim, **platform_kwargs)
        platform.deploy(FunctionSpec("resize", mean_runtime=1.0,
                                     cold_start=0.5, keep_alive=10.0))
        return sim, platform

    def test_concurrency_validation(self):
        with pytest.raises(ValueError):
            FaaSPlatform(Simulator(), concurrency=0)

    def test_invoke_unknown_function(self):
        sim, platform = self.build()
        with pytest.raises(KeyError):
            platform.invoke("missing")

    def test_first_invocation_is_cold(self):
        sim, platform = self.build()
        process = platform.invoke("resize")
        invocation = sim.run(until=process)
        assert invocation.cold
        assert invocation.latency == pytest.approx(1.5)  # cold + runtime

    def test_second_invocation_reuses_warm_instance(self):
        sim, platform = self.build()
        sim.run(until=platform.invoke("resize"))
        second = sim.run(until=platform.invoke("resize"))
        assert not second.cold
        assert second.latency == pytest.approx(1.0)

    def test_keep_alive_expiry_forces_cold_start(self):
        sim, platform = self.build()
        sim.run(until=platform.invoke("resize"))
        sim.run(until=20.0)  # beyond the 10 s keep-alive
        again = sim.run(until=platform.invoke("resize"))
        assert again.cold

    def test_warm_pool_visibility(self):
        sim, platform = self.build()
        assert platform.warm_instances("resize") == 0
        sim.run(until=platform.invoke("resize"))
        assert platform.warm_instances("resize") == 1

    def test_concurrency_limits_parallelism(self):
        sim, platform = self.build(concurrency=1)
        p1 = platform.invoke("resize")
        p2 = platform.invoke("resize")
        sim.run(until=sim.all_of([p1, p2]))
        # Serialized: second finishes after ~1.5 + 1.0 (second is warm).
        assert sim.now == pytest.approx(2.5)

    def test_billing_accumulates(self):
        sim, platform = self.build()
        platform.deploy(FunctionSpec("big", mean_runtime=2.0,
                                     memory_gb=1.0, cold_start=0.0))
        sim.run(until=platform.invoke("big"))
        assert platform.billed_gb_seconds == pytest.approx(2.0)
        assert platform.billed_dollars > 0.0

    def test_statistics_shape(self):
        sim, platform = self.build()
        for _ in range(3):
            sim.run(until=platform.invoke("resize"))
        stats = platform.statistics()
        assert stats["invocations"] == 3
        assert 0.0 < stats["cold_start_fraction"] <= 1.0
        assert stats["latency_p99"] >= stats["latency_mean"] - 1e9

    def test_negative_runtime_rejected(self):
        sim, platform = self.build()
        process = platform.invoke("resize", runtime=-1.0)
        with pytest.raises(ValueError):
            sim.run(until=process)


class TestComposition:
    def test_step_validation(self):
        with pytest.raises(ValueError):
            Composition(kind="step")
        with pytest.raises(ValueError):
            Composition(kind="nope", function="f")
        with pytest.raises(ValueError):
            Composition(kind="sequence")

    def test_functions_listed_in_order(self):
        comp = sequence(step("a"), parallel(step("b"), step("c")), step("d"))
        assert comp.functions() == ["a", "b", "c", "d"]

    def test_critical_path_steps(self):
        comp = sequence(step("a"), parallel(sequence(step("b"), step("c")),
                                            step("d")))
        assert comp.critical_path_steps() == 3  # a + (b->c)


class TestCompositionEngine:
    def build(self):
        sim = Simulator()
        platform = FaaSPlatform(sim, concurrency=10)
        for name in "abcd":
            platform.deploy(FunctionSpec(name, mean_runtime=1.0,
                                         cold_start=0.0))
        return sim, platform, CompositionEngine(sim, platform)

    def test_unknown_function_fails_fast(self):
        sim, platform, engine = self.build()
        with pytest.raises(KeyError):
            engine.run(step("ghost"))

    def test_sequence_latency_adds(self):
        sim, platform, engine = self.build()
        result = sim.run(until=engine.run(sequence(step("a"), step("b"))))
        assert result.latency == pytest.approx(2.0)
        assert len(result.invocations) == 2

    def test_parallel_latency_is_max(self):
        sim, platform, engine = self.build()
        result = sim.run(until=engine.run(
            parallel(step("a"), step("b"), step("c"))))
        assert result.latency == pytest.approx(1.0)
        assert len(result.invocations) == 3

    def test_image_pipeline_shape(self):
        # The paper's canonical serverless example: image translation
        # and processing — fetch, then parallel transforms, then store.
        sim, platform, engine = self.build()
        pipeline = sequence(step("a"),
                            parallel(step("b"), step("c")),
                            step("d"))
        result = sim.run(until=engine.run(pipeline))
        assert result.latency == pytest.approx(3.0)
        assert engine.completed == [result]

    def test_cold_starts_counted(self):
        sim = Simulator()
        platform = FaaSPlatform(sim, concurrency=10)
        platform.deploy(FunctionSpec("cold", mean_runtime=1.0,
                                     cold_start=1.0))
        engine = CompositionEngine(sim, platform)
        result = sim.run(until=engine.run(sequence(step("cold"),
                                                   step("cold"))))
        assert result.cold_starts == 1  # second call reuses the instance
