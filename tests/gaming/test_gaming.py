"""Unit tests for the gaming substrate (Figure 4 functions)."""

import random

import pytest

from repro.gaming import (
    GAMING_FUNCTIONS,
    ChatMessage,
    CloudProvisioner,
    GamingArchitecture,
    Match,
    PlayEvent,
    PuzzleGenerator,
    SelfHostedProvisioner,
    ToxicityDetector,
    VirtualWorld,
    diurnal_player_curve,
    engagement_summary,
    generation_batch,
    implicit_social_network,
    retention,
    sessionize,
    social_communities,
    tie_strength,
)
from repro.sim import Simulator


class TestArchitecture:
    def test_four_functions(self):
        assert len(GamingArchitecture()) == 4
        names = {f.name for f in GAMING_FUNCTIONS}
        assert names == {"Virtual World", "Gaming Analytics",
                         "Procedural Content Generation",
                         "Social Meta-Gaming"}

    def test_every_function_has_gap_and_module(self):
        import importlib
        for function in GAMING_FUNCTIONS:
            assert function.current_gap
            importlib.import_module(function.module)

    def test_lookup(self):
        arch = GamingArchitecture()
        assert "seamless" in arch.get("Virtual World").responsibility
        with pytest.raises(KeyError):
            arch.get("Lootboxes")


class TestVirtualWorld:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            VirtualWorld(sim, n_zones=0)
        with pytest.raises(ValueError):
            VirtualWorld(sim, players_per_server=0)

    def test_population_distribution(self):
        sim = Simulator()
        world = VirtualWorld(sim, n_zones=4)
        world.set_population(1000, rng=random.Random(1))
        assert world.total_players == 1000
        assert all(z.players >= 0 for z in world.zones)

    def test_lag_when_capacity_exceeded(self):
        sim = Simulator()
        world = VirtualWorld(sim, n_zones=1, players_per_server=100)
        world.zones[0].servers = 2
        world.set_population(350)
        assert world.lagged_players() == 150

    def test_qos_accumulates_over_time(self):
        sim = Simulator()
        world = VirtualWorld(sim, n_zones=1, players_per_server=100)
        world.zones[0].servers = 1
        world.set_population(200)  # half the players lag

        def advance(sim):
            yield sim.timeout(100.0)

        sim.run(until=sim.process(advance(sim)))
        assert world.qos() == pytest.approx(0.5)

    def test_diurnal_curve_bounds(self):
        players = diurnal_player_curve(1000, period=100.0,
                                       trough_fraction=0.2)
        values = [players(t) for t in range(0, 100, 5)]
        assert min(values) >= 150
        assert max(values) <= 1000
        assert max(values) > 900
        with pytest.raises(ValueError):
            diurnal_player_curve(0)


class TestProvisioners:
    def test_self_hosted_fixed_fleet(self):
        sim = Simulator()
        world = VirtualWorld(sim, n_zones=2, players_per_server=100)
        hosting = SelfHostedProvisioner(world, servers_per_zone=5,
                                        server_price=1000.0)
        assert world.total_servers == 10
        assert hosting.upfront_cost == 10000.0
        hosting.rebalance()  # no-op
        assert world.total_servers == 10

    def test_cloud_scales_with_population(self):
        sim = Simulator()
        world = VirtualWorld(sim, n_zones=2, players_per_server=100)
        cloud = CloudProvisioner(world, sim, headroom=0.0)
        world.set_population(600, rng=random.Random(2))
        cloud.rebalance()
        assert world.total_servers == pytest.approx(6, abs=1)
        world.set_population(100, rng=random.Random(2))
        cloud.rebalance()
        assert world.total_servers <= 3
        assert cloud.upfront_cost == 0.0

    def test_cloud_cost_integrates_time(self):
        sim = Simulator()
        world = VirtualWorld(sim, n_zones=1, players_per_server=100)
        cloud = CloudProvisioner(world, sim, price_per_server_hour=1.0)
        world.set_population(400)
        cloud.rebalance()

        def advance(sim):
            yield sim.timeout(3600.0)

        sim.run(until=sim.process(advance(sim)))
        # ~5 servers (400 players * 1.2 headroom / 100) for one hour.
        assert cloud.total_cost() == pytest.approx(5.0, rel=0.3)


class TestAnalytics:
    def events(self):
        return ([PlayEvent("alice", t) for t in (0, 600, 1200)]
                + [PlayEvent("alice", t) for t in (90000, 90600)]
                + [PlayEvent("bob", 100)])

    def test_sessionize_groups_by_gap(self):
        sessions = sessionize(self.events(), gap=1800.0)
        alice = [s for s in sessions if s.player == "alice"]
        assert len(alice) == 2
        assert alice[0].events == 3
        assert alice[0].duration == pytest.approx(1200.0)
        with pytest.raises(ValueError):
            sessionize([], gap=0.0)

    def test_retention_day0_is_one(self):
        sessions = sessionize(self.events())
        curve = retention(sessions, period=86400.0, n_periods=3)
        assert curve[0] == 1.0
        assert curve[1] == pytest.approx(0.5)  # only alice returned
        assert retention([], n_periods=2) == [0.0, 0.0]

    def test_engagement_summary(self):
        summary = engagement_summary(sessionize(self.events()))
        assert summary["players"] == 2
        assert summary["sessions"] == 3
        assert summary["max_sessions_per_player"] == 2
        with pytest.raises(ValueError):
            engagement_summary([])


class TestContent:
    def test_generator_validation(self):
        with pytest.raises(ValueError):
            PuzzleGenerator(size=1)
        generator = PuzzleGenerator(size=6, rng=random.Random(1))
        with pytest.raises(ValueError):
            generator.generate(difficulty=2.0)

    def test_difficulty_calibration(self):
        generator = PuzzleGenerator(size=8, tolerance=0.1,
                                    rng=random.Random(2))
        easy = generator.generate(0.1)
        hard = generator.generate(0.9)
        assert easy.optimal_moves < hard.optimal_moves
        assert abs(easy.difficulty - 0.1) <= 0.1
        assert abs(hard.difficulty - 0.9) <= 0.1
        assert easy.is_solvable() and hard.is_solvable()

    def test_ids_unique(self):
        generator = PuzzleGenerator(rng=random.Random(3))
        batch = generator.generate_many(0.5, count=5)
        assert len({p.puzzle_id for p in batch}) == 5

    def test_generation_batch_is_bag_of_tasks(self):
        bag = generation_batch(count=10, seconds_per_instance=3.0)
        assert len(bag) == 10
        assert all(t.kind == "content-generation" for t in bag)
        assert bag.total_core_seconds == pytest.approx(30.0)
        with pytest.raises(ValueError):
            generation_batch(count=0)


class TestMetaGaming:
    def matches(self):
        return [
            Match(1, ("a", "b", "c")),
            Match(2, ("a", "b")),
            Match(3, ("a", "b", "d")),
            Match(4, ("x", "y")),
            Match(5, ("x", "y")),
            Match(6, ("c", "d")),
        ]

    def test_match_validation(self):
        with pytest.raises(ValueError):
            Match(1, ())
        with pytest.raises(ValueError):
            Match(1, ("a", "a"))

    def test_tie_strength(self):
        assert tie_strength(self.matches(), "a", "b") == 3
        assert tie_strength(self.matches(), "a", "x") == 0

    def test_implicit_network_thresholds_weak_ties(self):
        graph = implicit_social_network(self.matches(), min_coplays=2)
        index = graph.player_index
        assert graph.has_edge(index["a"], index["b"])  # 3 co-plays
        assert graph.has_edge(index["x"], index["y"])  # 2 co-plays
        assert not graph.has_edge(index["c"], index["d"])  # only 1 each
        with pytest.raises(ValueError):
            implicit_social_network(self.matches(), min_coplays=0)

    def test_communities_separate_groups(self):
        graph = implicit_social_network(self.matches(), min_coplays=2)
        labels = social_communities(graph)
        index = graph.player_index
        assert labels[index["a"]] == labels[index["b"]]
        assert labels[index["x"]] == labels[index["y"]]
        assert labels[index["a"]] != labels[index["x"]]

    def test_toxicity_detection(self):
        detector = ToxicityDetector(threshold=0.5)
        assert not detector.observe(ChatMessage("nice", "good game all"))
        assert detector.observe(ChatMessage("mean",
                                            "uninstall you trash loser"))
        assert detector.flagged[0].player == "mean"
        worst = detector.worst_offenders(1)
        assert worst[0][0] == "mean"

    def test_toxicity_running_score_decays(self):
        detector = ToxicityDetector(threshold=0.5, smoothing=0.5)
        detector.observe(ChatMessage("p", "uninstall trash"))
        high = detector.player_scores["p"]
        for _ in range(5):
            detector.observe(ChatMessage("p", "well played"))
        assert detector.player_scores["p"] < high

    def test_toxicity_validation(self):
        with pytest.raises(ValueError):
            ToxicityDetector(threshold=0.0)
        with pytest.raises(ValueError):
            ToxicityDetector(smoothing=0.0)
