"""Unit tests for super-properties and ecosystem restructuring (P5)."""

import pytest

from repro.core import (
    CollectiveFunction,
    Ecosystem,
    SuperFlexibility,
    System,
    merge_ecosystems,
    split_ecosystem,
    super_scalability,
)


def make_ecosystem(name="eco", n=4):
    eco = Ecosystem(name, function="services", owner="op")
    for i in range(n):
        eco.add(System(f"{name}-s{i}", owner=f"org-{i % 2}",
                       kind="compute" if i % 2 else "storage"))
    eco.register_collective_function(CollectiveFunction("serve", 0.7))
    return eco


class TestSuperFlexibility:
    def test_validation(self):
        with pytest.raises(ValueError):
            SuperFlexibility(closed={}, open={"elasticity": 0.5})
        with pytest.raises(ValueError):
            SuperFlexibility(closed={"perf": 1.5}, open={"elasticity": 0.5})

    def test_harmonic_combination_punishes_imbalance(self):
        balanced = SuperFlexibility(closed={"perf": 0.7},
                                    open={"elasticity": 0.7})
        lopsided = SuperFlexibility(closed={"perf": 1.0},
                                    open={"elasticity": 0.4})
        assert balanced.score > lopsided.score
        assert balanced.score == pytest.approx(0.7)

    def test_zero_side_zeroes_score(self):
        assessment = SuperFlexibility(closed={"perf": 1.0},
                                      open={"elasticity": 0.0})
        assert assessment.score == 0.0
        assert not assessment.is_super_flexible()

    def test_threshold_validation(self):
        assessment = SuperFlexibility(closed={"a": 0.8}, open={"b": 0.8})
        assert assessment.is_super_flexible(threshold=0.6)
        with pytest.raises(ValueError):
            assessment.is_super_flexible(threshold=0.0)


class TestSuperScalability:
    def test_bounds_and_validation(self):
        assert 0.0 <= super_scalability(0.8, 0.9, 0.5) <= 1.0
        with pytest.raises(ValueError):
            super_scalability(1.5, 0.5, 0.1)
        with pytest.raises(ValueError):
            super_scalability(0.5, 0.5, -0.1)

    def test_perfect_system_scores_one(self):
        assert super_scalability(1.0, 1.0, 0.0) == pytest.approx(1.0)

    def test_elasticity_deviation_drags_score(self):
        good = super_scalability(0.9, 0.9, 0.1)
        bad = super_scalability(0.9, 0.9, 5.0)
        assert good > bad


class TestMerge:
    def test_merge_preserves_both_sides(self):
        a, b = make_ecosystem("a"), make_ecosystem("b")
        merged = merge_ecosystems(a, b, "a+b")
        assert merged.is_super_distributed()
        names = {s.name for s in merged.walk()}
        assert "a" in names and "b" in names
        assert merged.is_ecosystem(), merged.disqualifications()
        # Originals untouched.
        assert len(a.constituents()) == 4

    def test_merge_self_rejected(self):
        eco = make_ecosystem()
        with pytest.raises(ValueError):
            merge_ecosystems(eco, eco, "dup")


class TestSplit:
    def test_split_partitions_constituents(self):
        eco = make_ecosystem("mono", n=4)
        parts = split_ecosystem(eco, {
            "left": ["mono-s0", "mono-s1"],
            "right": ["mono-s2", "mono-s3"],
        })
        assert len(parts) == 2
        assert {s.name for s in parts[0].walk()} == {"mono-s0", "mono-s1"}
        assert {s.name for s in parts[1].walk()} == {"mono-s2", "mono-s3"}
        # Parts inherit the collective functions, so they can be
        # re-checked for qualification after the break-up.
        for part in parts:
            assert part.has_collective_responsibility()
        # The original is not mutated.
        assert len(eco.constituents()) == 4

    def test_split_validation(self):
        eco = make_ecosystem("mono", n=3)
        with pytest.raises(ValueError):
            split_ecosystem(eco, {"only": ["mono-s0", "mono-s1",
                                           "mono-s2"]})
        with pytest.raises(KeyError):
            split_ecosystem(eco, {"a": ["ghost"], "b": ["mono-s0"]})
        with pytest.raises(ValueError):
            split_ecosystem(eco, {"a": ["mono-s0"], "b": ["mono-s0"]})
        with pytest.raises(ValueError):
            split_ecosystem(eco, {"a": ["mono-s0"], "b": ["mono-s1"]})


class TestMergeThenSplitRoundTrip:
    def test_anti_trust_cycle(self):
        """Merge two ecosystems, then break the merger up again."""
        a, b = make_ecosystem("a"), make_ecosystem("b")
        merged = merge_ecosystems(a, b, "conglomerate")
        parts = split_ecosystem(merged, {"part-a": ["a"], "part-b": ["b"]})
        assert {p.name for p in parts} == {"part-a", "part-b"}
        recovered_a = next(p for p in parts if p.name == "part-a")
        assert {s.name for s in recovered_a.walk()} >= {
            "a-s0", "a-s1", "a-s2", "a-s3"}
