"""Unit tests for System / Ecosystem definitions (paper §2.1)."""

import pytest

from repro.core import CollectiveFunction, Ecosystem, System


def make_bigdata_ecosystem():
    """The Figure 1 example: a big-data ecosystem with a sub-ecosystem."""
    eco = Ecosystem("big-data", function="data processing", owner="community")
    eco.add(System("Hive", function="high-level language", owner="apache",
                   kind="language"))
    mapreduce = Ecosystem("mapreduce", function="programming model",
                          owner="apache")
    mapreduce.add(System("Hadoop", function="execution engine", owner="apache",
                         kind="engine"))
    mapreduce.add(System("HDFS", function="storage engine", owner="apache",
                         kind="storage"))
    eco.add(mapreduce)
    eco.add(System("S3", function="storage engine", owner="amazon",
                   kind="storage"))
    eco.register_collective_function(
        CollectiveFunction("run-big-data-jobs", required_fraction=0.75))
    return eco


def test_plain_system_has_no_constituents():
    system = System("solo")
    assert system.constituents() == ()
    assert system.distribution_depth() == 1


def test_ecosystem_walk_is_recursive():
    eco = make_bigdata_ecosystem()
    names = [s.name for s in eco.walk()]
    assert names == ["Hive", "mapreduce", "Hadoop", "HDFS", "S3"]


def test_distribution_depth_counts_nesting():
    eco = make_bigdata_ecosystem()
    assert eco.distribution_depth() == 3  # eco -> mapreduce -> Hadoop


def test_super_distribution_detected():
    eco = make_bigdata_ecosystem()
    assert eco.is_super_distributed()
    flat = Ecosystem("flat")
    flat.add(System("a"))
    assert not flat.is_super_distributed()


def test_heterogeneity_zero_for_clones():
    eco = Ecosystem("clones")
    for i in range(4):
        eco.add(System(f"node-{i}", owner="one-org", kind="compute"))
    assert eco.heterogeneity() == 0.0


def test_heterogeneity_positive_for_diverse_group():
    eco = make_bigdata_ecosystem()
    assert 0.0 < eco.heterogeneity() <= 1.0


def test_collective_responsibility_requires_significant_fraction():
    eco = Ecosystem("weak")
    eco.add(System("a", owner="x"))
    eco.add(System("b", owner="y", kind="storage"))
    eco.register_collective_function(
        CollectiveFunction("tiny", required_fraction=0.1))
    assert not eco.has_collective_responsibility()
    eco.register_collective_function(
        CollectiveFunction("majority", required_fraction=0.5))
    assert eco.has_collective_responsibility()


def test_collective_function_fraction_validated():
    with pytest.raises(ValueError):
        CollectiveFunction("bad", required_fraction=0.0)
    with pytest.raises(ValueError):
        CollectiveFunction("bad", required_fraction=1.5)


def test_qualifying_ecosystem_has_no_disqualifications():
    eco = make_bigdata_ecosystem()
    assert eco.disqualifications() == []
    assert eco.is_ecosystem()


def test_single_constituent_disqualifies():
    eco = Ecosystem("lonely")
    eco.add(System("only"))
    assert "fewer than two constituents" in eco.disqualifications()


def test_non_autonomous_constituent_disqualifies():
    eco = make_bigdata_ecosystem()
    eco.add(System("slave", autonomous=False, owner="z", kind="agent"))
    assert any("non-autonomous" in r for r in eco.disqualifications())


def test_legacy_monolith_disqualifies():
    eco = Ecosystem("legacy-stack")
    eco.add(System("cobol-core", legacy=True, owner="bank", kind="app"))
    eco.add(System("cobol-batch", legacy=True, owner="vendor", kind="batch"))
    eco.register_collective_function(CollectiveFunction("batch", 0.9))
    assert any("legacy" in r for r in eco.disqualifications())


def test_audited_system_disqualifies():
    eco = make_bigdata_ecosystem()
    eco.audited = True
    assert any("audited" in r for r in eco.disqualifications())
    assert not eco.is_ecosystem()
