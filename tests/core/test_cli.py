"""Unit tests for the python -m repro command-line interface."""

import io
import json
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

from repro.__main__ import ARTIFACTS, main

REPO_ROOT = Path(__file__).resolve().parents[2]
SPEC_PATH = REPO_ROOT / "examples" / "specs" / "chaos_baseline.json"
SLO_SPEC_PATH = REPO_ROOT / "examples" / "specs" / "chaos_slo.json"


def run_cli(*args):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(args))
    return code, out.getvalue(), err.getvalue()


def test_no_args_lists_artifacts():
    code, out, _ = run_cli()
    assert code == 0
    for name in ARTIFACTS:
        assert name in out


def test_help_flag():
    code, out, _ = run_cli("--help")
    assert code == 0
    assert "Usage" in out


def test_each_artifact_prints_its_title():
    titles = {
        "table1": "TABLE 1",
        "table2": "TABLE 2",
        "table3": "TABLE 3",
        "table4": "TABLE 4",
        "table5": "TABLE 5",
        "figure2": "FIGURE 2",
        "figure3": "FIGURE 3",
        "figure4": "FIGURE 4",
        "figure5": "FIGURE 5",
        "curriculum": "C12",
    }
    for name, expected in titles.items():
        code, out, _ = run_cli(name)
        assert code == 0
        assert expected in out


def test_all_prints_everything():
    code, out, _ = run_cli("all")
    assert code == 0
    assert "TABLE 1" in out and "FIGURE 5" in out and "C12" in out


def test_unknown_artifact_fails_with_hint():
    code, out, err = run_cli("table9")
    assert code == 2
    assert "unknown artifact" in err
    assert "table5" in err


def test_run_spec_prints_summary_and_digest():
    code, out, _ = run_cli("run", str(SPEC_PATH))
    assert code == 0
    assert "makespan:" in out
    assert "fingerprint:" in out and "digest:" in out


def test_run_spec_writes_result(tmp_path):
    out_file = tmp_path / "result.json"
    code, _, _ = run_cli("run", str(SPEC_PATH), "--out", str(out_file))
    assert code == 0
    result = json.loads(out_file.read_text())
    assert result["schema"] == "scenario-result/v1"
    assert result["tasks_finished"] == result["tasks_total"]


def test_run_spec_usage_error():
    code, _, err = run_cli("run")
    assert code == 2
    assert "usage" in err


def test_sweep_spec_verify_serial(tmp_path):
    out_file = tmp_path / "report.json"
    code, out, _ = run_cli("sweep", str(SPEC_PATH), "--seeds", "1,2",
                           "--policies", "fcfs,sjf", "--workers", "2",
                           "--verify-serial", "--out", str(out_file))
    assert code == 0
    assert "4 runs on 2 worker(s)" in out
    assert "serial re-run digest matches" in out
    report = json.loads(out_file.read_text())
    assert report["schema"] == "sweep-report/v1"
    assert len(report["runs"]) == 4


def test_sweep_spec_usage_error():
    code, _, err = run_cli("sweep")
    assert code == 2
    assert "usage" in err


def test_observe_spec_renders_operator_view():
    code, out, _ = run_cli("observe", "--spec", str(SLO_SPEC_PATH))
    assert code == 0
    assert "as the run saw itself" in out
    assert "SLO report" in out
    assert "Resilience summary:" in out
    assert "Result digest:" in out


def test_observe_without_spec_keeps_builtin_demo():
    code, out, _ = run_cli("observe")
    assert code == 0
    assert "Critical path" in out


def test_module_invocation():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "table2"],
        capture_output=True, text=True, timeout=60)
    assert result.returncode == 0
    assert "The Age of Ecosystems" in result.stdout


def test_run_missing_spec_file_is_friendly():
    code, _, err = run_cli("run", "/no/such/spec.json")
    assert code == 2
    assert "cannot read spec file" in err
    assert "Traceback" not in err


def test_run_malformed_json_is_friendly(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken", encoding="utf-8")
    code, _, err = run_cli("run", str(bad))
    assert code == 2
    assert "not valid JSON" in err
    assert "Traceback" not in err


def test_run_invalid_spec_document_is_friendly(tmp_path):
    notspec = tmp_path / "notspec.json"
    notspec.write_text('{"valid": "json"}', encoding="utf-8")
    code, _, err = run_cli("run", str(notspec))
    assert code == 2
    assert "not a valid scenario spec" in err
    assert "docs/SCENARIOS.md" in err


def test_sweep_missing_spec_file_is_friendly():
    code, _, err = run_cli("sweep", "/no/such/spec.json", "--seeds", "1")
    assert code == 2
    assert "cannot read spec file" in err


def test_observe_missing_spec_file_is_friendly():
    code, _, err = run_cli("observe", "--spec", "/no/such/spec.json")
    assert code == 2
    assert "cannot read spec file" in err


def test_serve_usage_errors():
    code, _, err = run_cli("serve", "--port")
    assert code == 2
    assert "missing value" in err
    code, _, err = run_cli("serve", "--bogus")
    assert code == 2
    assert "usage" in err
    code, _, err = run_cli("serve", "--port", "not-a-number")
    assert code == 2
    assert "invalid serve option" in err


def test_help_mentions_serve():
    code, out, _ = run_cli("--help")
    assert code == 0
    assert "serve" in out


def test_run_malformed_wfformat_document_is_friendly(tmp_path):
    # A spec whose embedded WfFormat document has a dependency cycle:
    # the importer's typed error must surface as `error: ...` naming
    # the offending task id, exit 2, no traceback.
    spec = {
        "schema": "scenario-spec/v1",
        "name": "bad-wf",
        "topology": {"clusters": [{"name": "c", "machines": 2}]},
        "workload": {"kind": "wfformat", "params": {"document": {
            "workflow": {"specification": {"tasks": [
                {"id": "x", "parents": ["y"]},
                {"id": "y", "parents": ["x"]},
            ], "files": []}}}}},
    }
    bad = tmp_path / "bad_wf.json"
    bad.write_text(json.dumps(spec), encoding="utf-8")
    code, _, err = run_cli("run", str(bad))
    assert code == 2
    assert err.startswith("error:")
    assert "'x'" in err and "cyclic" in err
    assert "Traceback" not in err


def test_run_wfformat_negative_file_size_is_friendly(tmp_path):
    spec = {
        "schema": "scenario-spec/v1",
        "name": "bad-wf-size",
        "topology": {"clusters": [{"name": "c", "machines": 2}]},
        "workload": {"kind": "wfformat", "params": {"document": {
            "workflow": {"specification": {
                "tasks": [{"id": "t", "inputFiles": ["f"]}],
                "files": [{"id": "f", "sizeInBytes": -5}],
            }}}}},
    }
    bad = tmp_path / "bad_size.json"
    bad.write_text(json.dumps(spec), encoding="utf-8")
    code, _, err = run_cli("run", str(bad))
    assert code == 2
    assert "negative" in err and "'f'" in err
    assert "Traceback" not in err
