"""Unit tests for the python -m repro command-line interface."""

import io
from contextlib import redirect_stderr, redirect_stdout


from repro.__main__ import ARTIFACTS, main


def run_cli(*args):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(args))
    return code, out.getvalue(), err.getvalue()


def test_no_args_lists_artifacts():
    code, out, _ = run_cli()
    assert code == 0
    for name in ARTIFACTS:
        assert name in out


def test_help_flag():
    code, out, _ = run_cli("--help")
    assert code == 0
    assert "Usage" in out


def test_each_artifact_prints_its_title():
    titles = {
        "table1": "TABLE 1",
        "table2": "TABLE 2",
        "table3": "TABLE 3",
        "table4": "TABLE 4",
        "table5": "TABLE 5",
        "figure2": "FIGURE 2",
        "figure3": "FIGURE 3",
        "figure4": "FIGURE 4",
        "figure5": "FIGURE 5",
        "curriculum": "C12",
    }
    for name, expected in titles.items():
        code, out, _ = run_cli(name)
        assert code == 0
        assert expected in out


def test_all_prints_everything():
    code, out, _ = run_cli("all")
    assert code == 0
    assert "TABLE 1" in out and "FIGURE 5" in out and "C12" in out


def test_unknown_artifact_fails_with_hint():
    code, out, err = run_cli("table9")
    assert code == 2
    assert "unknown artifact" in err
    assert "table5" in err


def test_module_invocation():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "table2"],
        capture_output=True, text=True, timeout=60)
    assert result.returncode == 0
    assert "The Age of Ecosystems" in result.stdout
