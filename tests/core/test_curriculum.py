"""Unit tests for the BOKMCS curriculum registry (C12)."""

import importlib

import pytest

from repro.core import CURRICULUM_ADDITIONS, CurriculumRegistry


def test_five_additions_in_paper_order():
    registry = CurriculumRegistry()
    assert len(registry) == 5
    assert [a.index for a in registry] == ["i", "ii", "iii", "iv", "v"]


def test_first_three_target_all_students():
    registry = CurriculumRegistry()
    universal = registry.for_all_students()
    assert [a.index for a in universal] == ["i", "ii", "iii"]
    assert universal[1].title == "Systems Thinking"
    assert universal[2].title == "Design Thinking"


def test_gap_additions_have_specific_audiences():
    registry = CurriculumRegistry()
    assert "SE courses" in registry.get("iv").audience
    assert "traditional" in registry.get("v").audience


def test_unknown_index_raises():
    with pytest.raises(KeyError):
        CurriculumRegistry().get("vi")


def test_every_study_module_imports():
    """The executable syllabus: every referenced module must exist."""
    for addition in CURRICULUM_ADDITIONS:
        for module in addition.study_modules:
            importlib.import_module(module)


def test_study_plan_covers_all_additions():
    plan = CurriculumRegistry().study_plan()
    titles = {title for _, title in plan}
    assert titles == {a.title for a in CURRICULUM_ADDITIONS}
    assert len(plan) >= 10
