"""Unit tests for the P7 profession: licensing and enforcement."""

import pytest

from repro.core import (
    CertificationBody,
    Privilege,
    Professional,
    UnlicensedOperationError,
    require_license,
)


def competent(name="ada"):
    return Professional(name, competences={
        "systems thinking": 0.9, "design thinking": 0.8})


class TestProfessional:
    def test_competence_validation(self):
        with pytest.raises(ValueError):
            Professional("x", competences={"systems thinking": 1.5})
        professional = Professional("x")
        with pytest.raises(ValueError):
            professional.certify_competence("skill", -0.1)

    def test_incident_recording(self):
        professional = competent()
        professional.record_incident()
        assert professional.integrity_incidents == 1


class TestCertificationBody:
    def test_validation(self):
        with pytest.raises(ValueError):
            CertificationBody("b", min_competence=0.0)
        with pytest.raises(ValueError):
            CertificationBody("b", max_incidents=-1)

    def test_grants_to_qualified(self):
        body = CertificationBody("mcs-society")
        license_ = body.grant(competent(), Privilege.OPERATE)
        assert license_.holder == "ada"
        assert body.is_licensed("ada", Privilege.OPERATE)
        assert not body.is_licensed("ada", Privilege.CREATE)

    def test_denies_incompetent(self):
        body = CertificationBody("mcs-society", min_competence=0.6)
        novice = Professional("bob", competences={
            "systems thinking": 0.3, "design thinking": 0.9})
        with pytest.raises(UnlicensedOperationError):
            body.grant(novice, Privilege.OPERATE)
        assert any("denied" in d for d in body.decisions)

    def test_denies_integrity_incidents(self):
        body = CertificationBody("mcs-society", max_incidents=0)
        offender = competent("mallory")
        offender.record_incident()
        assert not body.qualifies(offender)

    def test_revocation_on_abuse(self):
        body = CertificationBody("mcs-society")
        body.grant(competent(), Privilege.OPERATE)
        body.revoke("ada", Privilege.OPERATE)
        assert not body.is_licensed("ada", Privilege.OPERATE)
        with pytest.raises(KeyError):
            body.revoke("ada", Privilege.OPERATE)

    def test_licensed_roster(self):
        body = CertificationBody("mcs-society")
        body.grant(competent("ada"), Privilege.OPERATE)
        body.grant(competent("grace"), Privilege.OPERATE)
        body.grant(competent("edsger"), Privilege.CREATE)
        assert body.licensed_professionals(Privilege.OPERATE) == [
            "ada", "grace"]


class TestEnforcement:
    def test_require_license_gates_operations(self):
        body = CertificationBody("mcs-society")
        with pytest.raises(UnlicensedOperationError):
            require_license(body, "ada", Privilege.OPERATE)
        body.grant(competent(), Privilege.OPERATE)
        require_license(body, "ada", Privilege.OPERATE)  # passes

    def test_control_plane_gated_by_license(self):
        """P7 end-to-end: only licensed operators may drive the fleet."""
        from repro.datacenter import ControlPlane, Datacenter, homogeneous_cluster
        from repro.sim import Simulator

        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 2)])
        plane = ControlPlane(dc)
        body = CertificationBody("mcs-society")

        def licensed_release(operator, names):
            require_license(body, operator, Privilege.OPERATE)
            return plane.release(names)

        with pytest.raises(UnlicensedOperationError):
            licensed_release("intern", ["c-m0"])
        body.grant(competent("sre"), Privilege.OPERATE)
        result = licensed_release("sre", ["c-m0"])
        assert result.fully_applied
