"""Unit tests for the Table 1-5 registries."""

import pytest

from repro.core import (
    CHALLENGES,
    USE_CASES,
    Challenge,
    ChallengeRegistry,
    FieldRegistry,
    MCSOverview,
    Principle,
    PrincipleRegistry,
    PrincipleType,
    UseCaseDirection,
    UseCaseRegistry,
)


# ---------------------------------------------------------------------------
# Table 2 — principles
# ---------------------------------------------------------------------------
class TestPrinciples:
    def test_exactly_ten(self):
        assert len(PrincipleRegistry()) == 10

    def test_indices_p1_to_p10(self):
        assert [p.index for p in PrincipleRegistry()] == [
            f"P{i}" for i in range(1, 11)]

    def test_type_groups_match_table2(self):
        registry = PrincipleRegistry()
        assert [p.index for p in registry.by_type(PrincipleType.SYSTEMS)] == \
            ["P1", "P2", "P3", "P4", "P5"]
        assert [p.index for p in registry.by_type(PrincipleType.PEOPLEWARE)] == \
            ["P6", "P7"]
        assert [p.index for p in registry.by_type(PrincipleType.METHODOLOGY)] == \
            ["P8", "P9", "P10"]

    def test_key_aspects_verbatim(self):
        registry = PrincipleRegistry()
        assert registry.get("P1").key_aspects == "The Age of Ecosystems"
        assert registry.get("P4").key_aspects == "RM&S, Self-Awareness"
        assert registry.get("P10").key_aspects == "ethics and transparency"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            PrincipleRegistry().get("P11")

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            Principle("X1", PrincipleType.SYSTEMS, "a", "b", "4")

    def test_revise_creates_new_revision(self):
        registry = PrincipleRegistry()
        updated = registry.get("P1")
        revised = registry.revise(updates=[Principle(
            "P1", PrincipleType.SYSTEMS, updated.key_aspects,
            "Revised statement.", "4")])
        assert revised.revision == registry.revision + 1
        assert revised.get("P1").statement == "Revised statement."
        assert registry.get("P1").statement != "Revised statement."

    def test_revise_can_add_principle(self):
        revised = PrincipleRegistry().revise(additions=[Principle(
            "P11", PrincipleType.METHODOLOGY, "new", "New principle.", "4.3")])
        assert len(revised) == 11

    def test_revise_rejects_unknown_update(self):
        with pytest.raises(KeyError):
            PrincipleRegistry().revise(updates=[Principle(
                "P99", PrincipleType.SYSTEMS, "x", "y", "4")])

    def test_revise_rejects_duplicate_addition(self):
        with pytest.raises(ValueError):
            PrincipleRegistry().revise(additions=[Principle(
                "P1", PrincipleType.SYSTEMS, "x", "y", "4")])

    def test_table_rows_shape(self):
        rows = PrincipleRegistry().table_rows()
        assert len(rows) == 10
        assert rows[0] == ("Systems", "P1", "The Age of Ecosystems")


# ---------------------------------------------------------------------------
# Table 3 — challenges
# ---------------------------------------------------------------------------
class TestChallenges:
    def test_exactly_twenty(self):
        assert len(ChallengeRegistry()) == 20

    def test_indices_c1_to_c20(self):
        assert [c.index for c in ChallengeRegistry()] == [
            f"C{i}" for i in range(1, 21)]

    def test_type_groups_match_table3(self):
        registry = ChallengeRegistry()
        assert len(registry.by_type("Systems")) == 10
        assert len(registry.by_type("Peopleware")) == 4
        assert len(registry.by_type("Methodology")) == 6

    def test_principle_mapping_matches_table3(self):
        registry = ChallengeRegistry()
        assert registry.get("C3").principles == ("P3", "P5")
        assert registry.get("C7").principles == ("P4", "P5")
        assert registry.get("C9").principles == ("P2", "P3", "P4", "P5")
        assert registry.get("C20").principles == ("P10",)

    def test_every_principle_reference_resolves(self):
        ChallengeRegistry().validate_against(PrincipleRegistry())

    def test_every_principle_spawns_a_challenge(self):
        registry = ChallengeRegistry()
        for i in range(1, 11):
            assert registry.by_principle(f"P{i}"), f"P{i} has no challenge"

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            Challenge("X1", "Systems", "a", ("P1",), "b")

    def test_addressed_by_names_real_modules(self):
        import importlib
        for challenge in CHALLENGES:
            for module_name in challenge.addressed_by:
                if module_name == "tests":
                    continue
                # Deferred: only the already-built ones must import now.
                try:
                    importlib.import_module(module_name)
                except ModuleNotFoundError:
                    pytest.skip(f"{module_name} not built yet")


# ---------------------------------------------------------------------------
# Table 1 — overview
# ---------------------------------------------------------------------------
class TestOverview:
    def test_all_four_question_groups_present(self):
        overview = MCSOverview()
        for question in MCSOverview.QUESTIONS:
            assert overview.by_question(question)

    def test_what_rows(self):
        aspects = [e.aspect for e in MCSOverview().by_question("What?")]
        assert aspects == ["Central Paradigm", "Focus", "Concerns"]

    def test_how_has_six_methodology_rows(self):
        assert len(MCSOverview().by_question("How?")) == 6

    def test_aspect_lookup(self):
        entry = MCSOverview().aspect("Concerns")
        assert entry.content == "emergence, evolution"

    def test_unknown_question_raises(self):
        with pytest.raises(KeyError):
            MCSOverview().by_question("Why?")

    def test_unknown_aspect_raises(self):
        with pytest.raises(KeyError):
            MCSOverview().aspect("Nonexistent")


# ---------------------------------------------------------------------------
# Table 4 — use cases
# ---------------------------------------------------------------------------
class TestUseCases:
    def test_exactly_six(self):
        assert len(UseCaseRegistry()) == 6

    def test_three_endogenous_three_exogenous(self):
        registry = UseCaseRegistry()
        assert len(registry.by_direction(UseCaseDirection.ENDOGENOUS)) == 3
        assert len(registry.by_direction(UseCaseDirection.EXOGENOUS)) == 3

    def test_locations_match_table4(self):
        assert {u.location for u in USE_CASES} == {
            "§6.1", "§6.2", "§6.3", "§6.4", "§6.5", "§6.6"}

    def test_gaming_row(self):
        gaming = UseCaseRegistry().get("§6.3")
        assert gaming.description == "Online gaming"
        assert gaming.key_aspects == "multi-functional MCS"

    def test_unknown_location_raises(self):
        with pytest.raises(KeyError):
            UseCaseRegistry().get("§9.9")


# ---------------------------------------------------------------------------
# Table 5 — fields comparison
# ---------------------------------------------------------------------------
class TestFields:
    def test_six_fields(self):
        assert len(FieldRegistry()) == 6

    def test_mcs_row_is_envisioned(self):
        mcs = FieldRegistry().mcs()
        assert mcs.envisioned
        assert mcs.crisis == "Systems complexity"
        assert mcs.continues == "Distributed Systems"
        assert mcs.objectives == "DES"

    def test_code_expansion(self):
        mcs = FieldRegistry().mcs()
        assert mcs.expand_objectives() == ["Design", "Engineering", "Scientific"]
        assert "simulation" in mcs.expand_methodology()
        assert "applicability" in mcs.expand_character()

    def test_invalid_codes_rejected(self):
        from repro.core import FieldComparison
        with pytest.raises(ValueError):
            FieldComparison("bad", "2020s", "c", "p", "Z", "o", "A", "A")
        with pytest.raises(ValueError):
            FieldComparison("bad", "2020s", "c", "p", "S", "o", "Z", "A")
        with pytest.raises(ValueError):
            FieldComparison("bad", "2020s", "c", "p", "S", "o", "A", "Z")

    def test_systems_biology_closest_to_mcs(self):
        # The paper: "Among the fields we survey, closest to MCS is
        # Systems Biology" — shares the Systems-complexity crisis.
        assert FieldRegistry().closest_to_mcs().name == "Systems Biology"

    def test_table_rows_shape(self):
        rows = FieldRegistry().table_rows()
        assert len(rows) == 6
        assert rows[-1][0] == "MCS (this work)"
