"""Unit tests for first-class non-functional requirements (P3, C3)."""

import pytest

from repro.core import SLA, SLO, Direction, NFRKind, Requirement


def latency_requirement(target=100.0, **kwargs):
    return Requirement(kind=NFRKind.PERFORMANCE, metric="p99_latency",
                       target=target, direction=Direction.MINIMIZE, **kwargs)


def availability_requirement(target=0.999, **kwargs):
    return Requirement(kind=NFRKind.AVAILABILITY, metric="availability",
                       target=target, direction=Direction.MAXIMIZE, **kwargs)


def test_minimize_satisfaction():
    req = latency_requirement(100.0)
    assert req.satisfied(80.0)
    assert req.satisfied(100.0)
    assert not req.satisfied(120.0)


def test_maximize_satisfaction():
    req = availability_requirement(0.999)
    assert req.satisfied(0.9999)
    assert not req.satisfied(0.99)


def test_violation_magnitude():
    req = latency_requirement(100.0)
    assert req.violation(120.0) == pytest.approx(20.0)
    assert req.violation(90.0) == 0.0
    avail = availability_requirement(0.999)
    assert avail.violation(0.99) == pytest.approx(0.009)


def test_negative_weight_rejected():
    with pytest.raises(ValueError):
        latency_requirement(weight=-1.0)


def test_temporal_schedule_changes_target():
    # Stricter latency during business hours (C3: temporal fine-grained NFRs).
    req = latency_requirement(
        200.0, schedule=((0.0, 200.0), (9.0, 50.0), (17.0, 200.0)))
    assert req.target_at(3.0) == 200.0
    assert req.target_at(12.0) == 50.0
    assert req.target_at(20.0) == 200.0
    assert req.satisfied(100.0, time=3.0)
    assert not req.satisfied(100.0, time=12.0)


def test_schedule_before_first_entry_uses_base_target():
    req = latency_requirement(150.0, schedule=((10.0, 50.0),))
    assert req.target_at(5.0) == 150.0


def test_unsorted_schedule_rejected():
    with pytest.raises(ValueError):
        latency_requirement(schedule=((5.0, 1.0), (1.0, 2.0)))


def test_spatial_scope_defaults_to_application():
    req = latency_requirement()
    assert req.scope == "application"
    fine = Requirement(kind=NFRKind.PERFORMANCE, metric="task_latency",
                       target=10.0, scope="task")
    assert fine.scope == "task"


def test_sla_evaluation_and_penalty():
    sla = SLA("gold", provider="dc", client="bank")
    sla.add(SLO("latency", latency_requirement(100.0)), penalty=5.0)
    sla.add(SLO("availability", availability_requirement(0.999)), penalty=10.0)
    report = sla.evaluate({"p99_latency": 150.0, "availability": 0.9999})
    assert report.satisfied == {"latency": False, "availability": True}
    assert report.penalty == 5.0
    assert not report.all_met
    assert report.fraction_met == pytest.approx(0.5)


def test_sla_skips_unmeasured_metrics():
    sla = SLA("partial")
    sla.add(SLO("latency", latency_requirement(100.0)))
    report = sla.evaluate({})
    assert report.satisfied == {}
    assert report.fraction_met == 1.0


def test_sla_duplicate_slo_rejected():
    sla = SLA("dup")
    sla.add(SLO("x", latency_requirement()))
    with pytest.raises(ValueError):
        sla.add(SLO("x", latency_requirement()))


def test_sla_negative_penalty_rejected():
    sla = SLA("neg")
    with pytest.raises(ValueError):
        sla.add(SLO("x", latency_requirement()), penalty=-1.0)


def test_weighted_utility_reflects_importance():
    sla = SLA("weighted")
    sla.add(SLO("latency", latency_requirement(100.0, weight=3.0)))
    sla.add(SLO("availability", availability_requirement(0.999, weight=1.0)))
    # Latency violated, availability met -> utility = 1/4.
    utility = sla.weighted_utility(
        {"p99_latency": 200.0, "availability": 1.0})
    assert utility == pytest.approx(0.25)


def test_weighted_utility_empty_measurements():
    sla = SLA("empty")
    sla.add(SLO("latency", latency_requirement()))
    assert sla.weighted_utility({}) == 1.0


def test_nfr_catalogue_covers_paper_dimensions():
    names = {kind.value for kind in NFRKind}
    for expected in ("performance", "availability", "scalability",
                     "elasticity", "security", "trust", "privacy", "cost",
                     "risk"):
        assert expected in names
