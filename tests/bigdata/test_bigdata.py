"""Unit tests for the Figure 1 stack and the MapReduce/Pregel engines."""

import random

import pytest

from repro.bigdata import (
    BIGDATA_COMPONENTS,
    SUB_ECOSYSTEMS,
    BigDataStack,
    StackComponent,
    StackLayer,
    mapreduce_job,
    pregel_job,
    straggler_slowdown,
)
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.scheduling import ClusterScheduler, WorkflowEngine
from repro.sim import Simulator


class TestStack:
    def test_four_layers(self):
        assert len(StackLayer) == 4

    def test_catalog_covers_all_layers(self):
        layers = {c.layer for c in BIGDATA_COMPONENTS}
        assert layers == set(StackLayer)

    def test_mapreduce_sub_ecosystem_is_execution_ready(self):
        stack = BigDataStack.sub_ecosystem("mapreduce")
        assert stack.execution_ready()
        assert {c.name for c in stack} == {"MapReduce", "Hadoop", "HDFS"}
        # Optional top layer not required for execution (Figure 1).
        assert StackLayer.HIGH_LEVEL_LANGUAGE not in stack.covered_layers()

    def test_pregel_sub_ecosystem(self):
        stack = BigDataStack.sub_ecosystem("pregel")
        assert stack.execution_ready()
        assert {c.name for c in stack} == set(SUB_ECOSYSTEMS["pregel"])

    def test_unknown_sub_ecosystem(self):
        with pytest.raises(KeyError):
            BigDataStack.sub_ecosystem("flink")

    def test_incomplete_stack_reports_missing_layers(self):
        stack = BigDataStack("partial")
        stack.add(StackComponent("MapReduce", StackLayer.PROGRAMMING_MODEL))
        missing = stack.missing_execution_layers()
        assert StackLayer.EXECUTION_ENGINE in missing
        assert StackLayer.STORAGE_ENGINE in missing
        assert not stack.execution_ready()

    def test_layer_and_vendor_queries(self):
        stack = BigDataStack.sub_ecosystem("mapreduce")
        assert [c.name for c in
                stack.at_layer(StackLayer.STORAGE_ENGINE)] == ["HDFS"]
        assert "apache" in stack.vendors()


class TestMapReduce:
    def test_validation(self):
        with pytest.raises(ValueError):
            mapreduce_job(n_maps=0)
        with pytest.raises(ValueError):
            mapreduce_job(straggler_fraction=2.0)
        with pytest.raises(ValueError):
            mapreduce_job(straggler_factor=0.5)

    def test_shape_and_barrier(self):
        job = mapreduce_job(n_maps=8, n_reduces=2)
        assert len(job) == 10
        reduces = [t for t in job if t.name.startswith("reduce")]
        maps = [t for t in job if t.name.startswith("map")]
        for reduce_task in reduces:
            assert set(reduce_task.dependencies) == set(maps)
        assert job.depth == 2

    def test_map_only_job(self):
        job = mapreduce_job(n_maps=4, n_reduces=0)
        assert len(job) == 4
        assert job.depth == 1

    def test_stragglers_inflate_critical_path(self):
        clean = mapreduce_job(n_maps=16, straggler_fraction=0.0,
                              rng=random.Random(1))
        slow = mapreduce_job(n_maps=16, straggler_fraction=0.1,
                             straggler_factor=5.0, rng=random.Random(1))
        assert (slow.critical_path_length()
                > 2.0 * clean.critical_path_length() / 1.5)

    def test_straggler_slowdown_metric(self):
        assert straggler_slowdown(10.0, 25.0) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            straggler_slowdown(0.0, 5.0)

    def test_runs_on_datacenter(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 4, MachineSpec(cores=4, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        engine = WorkflowEngine(sim, scheduler)
        job = mapreduce_job(n_maps=8, n_reduces=2, rng=random.Random(2))
        done = engine.submit(job)
        sim.run(until=done)
        assert job.is_finished
        reduces = [t for t in job if t.name.startswith("reduce")]
        maps = [t for t in job if t.name.startswith("map")]
        last_map_finish = max(t.finish_time for t in maps)
        assert all(r.start_time >= last_map_finish - 1e-9 for r in reduces)


class TestPregel:
    def test_validation(self):
        with pytest.raises(ValueError):
            pregel_job(n_workers=0)
        with pytest.raises(ValueError):
            pregel_job(convergence=0.0)

    def test_superstep_barriers(self):
        job = pregel_job(n_workers=4, n_supersteps=3)
        assert len(job) == 12
        assert job.depth == 3
        levels = job.levels()
        for later, earlier in zip(levels[1:], levels):
            for task in later:
                assert set(task.dependencies) == set(earlier)

    def test_work_decays_with_convergence(self):
        job = pregel_job(n_workers=4, n_supersteps=4, convergence=0.5,
                         superstep_runtime=10.0, rng=random.Random(3))
        levels = job.levels()
        mean_work = [sum(t.runtime for t in level) / len(level)
                     for level in levels]
        assert mean_work[0] > mean_work[-1] * 4  # ~8x decay over 3 halvings

    def test_runs_on_datacenter_with_bsp_semantics(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 2, MachineSpec(cores=8, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        engine = WorkflowEngine(sim, scheduler)
        job = pregel_job(n_workers=8, n_supersteps=3, rng=random.Random(4))
        done = engine.submit(job)
        sim.run(until=done)
        assert job.is_finished
        levels = job.levels()
        for earlier, later in zip(levels, levels[1:]):
            barrier = max(t.finish_time for t in earlier)
            assert all(t.start_time >= barrier - 1e-9 for t in later)
