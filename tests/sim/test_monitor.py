"""Unit tests for monitors and summary statistics."""

import math

import pytest

from repro.sim import Monitor, TimeWeightedMonitor, summarize


def test_summarize_empty():
    stats = summarize([])
    assert stats["count"] == 0
    assert math.isnan(stats["mean"])


def test_summarize_basics():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats["count"] == 4
    assert stats["mean"] == pytest.approx(2.5)
    assert stats["min"] == 1.0
    assert stats["max"] == 4.0
    assert stats["p50"] == 2.0


def test_summarize_percentiles_nearest_rank():
    values = list(range(1, 101))
    stats = summarize(values)
    assert stats["p95"] == 95
    assert stats["p99"] == 99


def test_monitor_records_and_summarizes():
    monitor = Monitor("latency")
    for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]:
        monitor.record(t, v)
    assert len(monitor) == 3
    assert monitor.mean == pytest.approx(20.0)


def test_monitor_rejects_time_travel():
    monitor = Monitor()
    monitor.record(5.0, 1.0)
    with pytest.raises(ValueError):
        monitor.record(4.0, 1.0)


def test_monitor_window():
    monitor = Monitor()
    for t in range(10):
        monitor.record(float(t), float(t))
    assert monitor.window(2.0, 5.0) == [2.0, 3.0, 4.0]


def test_monitor_window_is_left_closed_right_open():
    # window([start, end)) — a sample exactly at `end` belongs to the
    # *next* window, so tiled tumbling windows never double-count.
    monitor = Monitor()
    for t in (0.0, 1.0, 2.0, 3.0):
        monitor.record(t, t * 10.0)
    assert monitor.window(0.0, 2.0) == [0.0, 10.0]
    assert monitor.window(2.0, 4.0) == [20.0, 30.0]
    assert monitor.window(4.0, 6.0) == []


def test_monitor_window_summary_is_left_open_right_closed():
    # window_summary((start, end]) matches telemetry-tick semantics: a
    # tick at time T summarizes everything since the previous tick,
    # *including* samples recorded at T itself.
    monitor = Monitor()
    for t in (0.0, 1.0, 2.0, 3.0, 4.0):
        monitor.record(t, t)
    first = monitor.window_summary(0.0, 2.0)
    assert first["count"] == 2          # t=1, t=2 (not t=0)
    assert first["max"] == 2.0
    second = monitor.window_summary(2.0, 4.0)
    assert second["count"] == 2         # t=3, t=4 (t=2 already counted)
    assert second["min"] == 3.0
    # Tiled (start, end] windows cover every sample except the one at
    # the very first window's open start.
    assert first["count"] + second["count"] == len(monitor) - 1


def test_monitor_window_summary_empty_window():
    monitor = Monitor()
    monitor.record(1.0, 5.0)
    stats = monitor.window_summary(2.0, 3.0)
    assert stats["count"] == 0
    assert math.isnan(stats["mean"])


def test_time_weighted_average():
    tw = TimeWeightedMonitor(initial=0.0)
    tw.update(10.0, 4.0)   # value 0 held for 10
    tw.update(20.0, 0.0)   # value 4 held for 10
    assert tw.time_average() == pytest.approx(2.0)


def test_time_weighted_average_with_until():
    tw = TimeWeightedMonitor(initial=2.0)
    tw.update(10.0, 6.0)
    # 2 for 10 units + 6 for 10 units = mean 4 at t=20
    assert tw.time_average(until=20.0) == pytest.approx(4.0)


def test_time_weighted_extremes():
    tw = TimeWeightedMonitor(initial=5.0)
    tw.add(1.0, +3.0)
    tw.add(2.0, -7.0)
    assert tw.maximum == 8.0
    assert tw.minimum == 1.0
    assert tw.value == 1.0


def test_time_weighted_rejects_time_travel():
    tw = TimeWeightedMonitor()
    tw.update(5.0, 1.0)
    with pytest.raises(ValueError):
        tw.update(4.0, 2.0)


def test_time_weighted_zero_duration_returns_value():
    tw = TimeWeightedMonitor(initial=7.0)
    assert tw.time_average() == 7.0
