"""Unit tests for reproducible random streams."""

import itertools

import pytest

from repro.sim import RandomStreams, substream_seed


def test_same_seed_same_draws():
    a = RandomStreams(seed=42).stream("arrivals")
    b = RandomStreams(seed=42).stream("arrivals")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    streams = RandomStreams(seed=42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")
    assert streams["x"] is streams.stream("x")


def test_spawn_children_independent():
    parent = RandomStreams(seed=7)
    child1 = parent.spawn("one")
    child2 = parent.spawn("two")
    assert child1.stream("s").random() != child2.stream("s").random()


def test_substream_seed_stable():
    assert substream_seed(1, "x") == substream_seed(1, "x")
    assert substream_seed(1, "x") != substream_seed(2, "x")
    assert substream_seed(1, "x") != substream_seed(1, "y")


def test_exponential_iterator_positive_and_mean():
    streams = RandomStreams(seed=3)
    samples = list(itertools.islice(streams.exponential("iat", rate=2.0), 2000))
    assert all(s >= 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(0.5, rel=0.15)


def test_exponential_requires_positive_rate():
    streams = RandomStreams(seed=3)
    with pytest.raises(ValueError):
        next(streams.exponential("iat", rate=0.0))
