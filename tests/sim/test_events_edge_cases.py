"""Edge-case tests for composite events, interrupts, and late waiters."""

import pytest

from repro.sim import AllOf, Interrupt, SimulationError, Simulator


def test_all_of_fails_when_any_child_fails():
    sim = Simulator()
    caught = []

    def failing(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def waiter(sim, children):
        try:
            yield sim.all_of(children)
        except RuntimeError as exc:
            caught.append(str(exc))

    children = [sim.process(failing(sim)), sim.timeout(5.0)]
    sim.process(waiter(sim, children))
    sim.run()
    assert caught == ["child died"]


def test_any_of_fails_when_first_event_fails():
    sim = Simulator()
    caught = []

    def failing(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("fast failure")

    def waiter(sim, children):
        try:
            yield sim.any_of(children)
        except RuntimeError as exc:
            caught.append(str(exc))

    children = [sim.process(failing(sim)), sim.timeout(10.0)]
    sim.process(waiter(sim, children))
    sim.run()
    assert caught == ["fast failure"]


def test_any_of_success_beats_later_failure():
    sim = Simulator()
    results = []

    def failing(sim):
        yield sim.timeout(10.0)
        raise RuntimeError("late failure")

    def waiter(sim, children):
        value = yield sim.any_of(children)
        results.append(list(value.values()))

    target = sim.process(failing(sim))
    target.defused = True  # nobody handles the late failure directly
    children = [sim.timeout(1.0, value="fast"), target]
    sim.process(waiter(sim, children))
    sim.run()
    assert results == [["fast"]]


def test_cross_simulator_condition_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    event_a = sim_a.event()
    event_b = sim_b.event()
    with pytest.raises(SimulationError):
        AllOf(sim_a, [event_a, event_b])


def test_multiple_queued_interrupts_delivered_in_order():
    sim = Simulator()
    causes = []

    def sleeper(sim):
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                causes.append(interrupt.cause)

    def interrupter(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt("first")
        victim.interrupt("second")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert causes == ["first", "second"]


def test_waiting_on_already_processed_event():
    sim = Simulator()
    done = sim.timeout(1.0, value="early")
    sim.run()
    results = []

    def late_waiter(sim, target):
        value = yield target
        results.append(value)

    sim.process(late_waiter(sim, done))
    sim.run()
    assert results == ["early"]


def test_run_until_already_processed_event_returns_value():
    sim = Simulator()
    done = sim.timeout(1.0, value=42)
    sim.run()
    assert sim.run(until=done) == 42


def test_run_until_failed_event_raises():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    process = sim.process(failing(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run(until=process)


def test_interrupt_cause_defaults_to_none():
    sim = Simulator()
    causes = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            causes.append(interrupt.cause)

    victim = sim.process(sleeper(sim))

    def interrupter(sim):
        yield sim.timeout(1.0)
        victim.interrupt()

    sim.process(interrupter(sim))
    sim.run()
    assert causes == [None]


def test_event_callbacks_none_after_processing():
    sim = Simulator()
    event = sim.timeout(1.0)
    assert not event.processed
    sim.run()
    assert event.processed
    assert event.callbacks is None


def test_active_process_visible_during_resume():
    sim = Simulator()
    seen = []

    def proc(sim):
        seen.append(sim.active_process)
        yield sim.timeout(1.0)
        seen.append(sim.active_process)

    process = sim.process(proc(sim))
    sim.run()
    assert seen == [process, process]
    assert sim.active_process is None
