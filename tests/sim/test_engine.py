"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(5.0)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [5.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        got.append(value)

    sim.process(proc(sim))
    sim.run()
    assert got == ["payload"]


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        while True:
            yield sim.timeout(3.0)

    sim.process(proc(sim))
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_time_rejected():
    sim = Simulator(start_time=50.0)
    with pytest.raises(ValueError):
        sim.run(until=10.0)


def test_run_until_event_returns_its_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "done"

    process = sim.process(proc(sim))
    assert sim.run(until=process) == "done"
    assert sim.now == 2.0


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(sim, label):
        yield sim.timeout(1.0)
        order.append(label)

    for label in "abc":
        sim.process(proc(sim, label))
    sim.run()
    assert order == ["a", "b", "c"]


def test_process_waits_on_another_process():
    sim = Simulator()
    results = []

    def worker(sim):
        yield sim.timeout(4.0)
        return 42

    def waiter(sim, target):
        value = yield target
        results.append((sim.now, value))

    target = sim.process(worker(sim))
    sim.process(waiter(sim, target))
    sim.run()
    assert results == [(4.0, 42)]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def failing(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    def waiter(sim, target):
        try:
            yield target
        except RuntimeError as exc:
            caught.append(str(exc))

    target = sim.process(failing(sim))
    sim.process(waiter(sim, target))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_surfaces():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(failing(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad(sim):
        yield 123

    process = sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run(until=process)


def test_interrupt_delivers_cause():
    sim = Simulator()
    causes = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            causes.append((sim.now, interrupt.cause))

    def interrupter(sim, victim):
        yield sim.timeout(3.0)
        victim.interrupt(cause="preempted")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert causes == [(3.0, "preempted")]


def test_interrupting_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    process = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_any_of_triggers_on_first():
    sim = Simulator()
    times = []

    def proc(sim):
        t_fast = sim.timeout(1.0, value="fast")
        t_slow = sim.timeout(9.0, value="slow")
        result = yield sim.any_of([t_fast, t_slow])
        times.append((sim.now, list(result.values())))

    sim.process(proc(sim))
    sim.run()
    assert times == [(1.0, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    times = []

    def proc(sim):
        events = [sim.timeout(d) for d in (1.0, 5.0, 3.0)]
        yield sim.all_of(events)
        times.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert times == [5.0]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    done = []

    def proc(sim):
        yield sim.all_of([])
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done == [0.0]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_event_value_before_trigger_is_error():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_late_callback_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("x")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_step_without_events_is_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_events_processed_counter():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(1.0)

    sim.process(proc(sim))
    sim.run()
    assert sim.events_processed > 0


def test_run_until_event_that_never_fires():
    sim = Simulator()
    never = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=never)


def test_nested_process_chains():
    sim = Simulator()
    log = []

    def leaf(sim, n):
        yield sim.timeout(n)
        return n * 10

    def middle(sim):
        a = yield sim.process(leaf(sim, 1))
        b = yield sim.process(leaf(sim, 2))
        return a + b

    process = sim.process(middle(sim))
    assert sim.run(until=process) == 30
    assert sim.now == 3.0
