"""Unit tests for Resource, Container and Store."""

import pytest

from repro.sim import Container, Resource, SimulationError, Simulator, Store


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    r1, r2, r3 = resource.request(), resource.request(), resource.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert resource.in_use == 2
    assert resource.queue_length == 1


def test_resource_release_wakes_fifo_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def user(sim, resource, label, hold):
        with resource.request() as req:
            yield req
            order.append(("start", label, sim.now))
            yield sim.timeout(hold)
        order.append(("end", label, sim.now))

    sim.process(user(sim, resource, "a", 2.0))
    sim.process(user(sim, resource, "b", 1.0))
    sim.run()
    assert order == [
        ("start", "a", 0.0),
        ("end", "a", 2.0),
        ("start", "b", 2.0),
        ("end", "b", 3.0),
    ]


def test_resource_double_release_is_idempotent():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    req = resource.request()
    sim.run()
    req.release()
    req.release()  # no-op
    assert resource.in_use == 0


def test_resource_cancel_waiting_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    holder = resource.request()
    waiter = resource.request()
    waiter.release()  # cancels the queued request
    assert resource.queue_length == 0
    holder.release()
    assert resource.available == 1


def test_release_without_grant_is_error():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        resource._release_one()


def test_container_put_get():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, initial=3.0)
    tank.put(2.0)
    assert tank.level == 5.0
    got = tank.get(4.0)
    assert got.triggered
    assert tank.level == 1.0


def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=10.0)
    fills = []

    def consumer(sim, tank):
        yield tank.get(5.0)
        fills.append(sim.now)

    def producer(sim, tank):
        for _ in range(5):
            yield sim.timeout(1.0)
            tank.put(1.0)

    sim.process(consumer(sim, tank))
    sim.process(producer(sim, tank))
    sim.run()
    assert fills == [5.0]
    assert tank.level == pytest.approx(0.0)


def test_container_overflow_rejected():
    sim = Simulator()
    tank = Container(sim, capacity=1.0)
    with pytest.raises(SimulationError):
        tank.put(2.0)


def test_container_initial_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=1.0, initial=2.0)


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    store.put("y")
    first, second = store.get(), store.get()
    assert first.value == "x"
    assert second.value == "y"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer(sim, store):
        item = yield store.get()
        received.append((sim.now, item))

    def producer(sim, store):
        yield sim.timeout(2.0)
        store.put("late")

    sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert received == [(2.0, "late")]


def test_store_capacity_enforced():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put(1)
    with pytest.raises(SimulationError):
        store.put(2)


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.items == ["a", "b"]
