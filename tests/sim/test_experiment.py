"""Unit tests for reproducibility recipes (C16)."""

import random

import pytest

from repro.sim import (
    ExperimentRecipe,
    check_reproduction,
    run_experiment,
)


def deterministic_experiment(seed, parameters):
    rng = random.Random(seed)
    n = parameters.get("n", 10)
    samples = [rng.random() for _ in range(n)]
    return {"mean": sum(samples) / n, "max": max(samples)}


class TestRecipe:
    def test_fingerprint_is_stable_and_sensitive(self):
        a = ExperimentRecipe("exp", seed=1, parameters={"n": 10})
        b = ExperimentRecipe("exp", seed=1, parameters={"n": 10})
        c = ExperimentRecipe("exp", seed=2, parameters={"n": 10})
        d = ExperimentRecipe("exp", seed=1, parameters={"n": 20})
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert a.fingerprint() != d.fingerprint()


class TestRunExperiment:
    def test_captures_metrics(self):
        record = run_experiment(deterministic_experiment,
                                ExperimentRecipe("exp", seed=7))
        assert set(record.metrics) == {"mean", "max"}

    def test_non_numeric_metric_rejected(self):
        def bad(seed, parameters):
            return {"label": "not-a-number"}

        with pytest.raises(TypeError):
            run_experiment(bad, ExperimentRecipe("bad", seed=0))


class TestCheckReproduction:
    def test_pinned_seed_reproduces(self):
        recipe = ExperimentRecipe("exp", seed=42, parameters={"n": 50})
        record = run_experiment(deterministic_experiment, recipe)
        report = check_reproduction(deterministic_experiment, record)
        assert report.reproducible
        assert report.mismatches() == []

    def test_code_change_detected(self):
        recipe = ExperimentRecipe("exp", seed=42)
        record = run_experiment(deterministic_experiment, recipe)

        def drifted(seed, parameters):
            metrics = dict(deterministic_experiment(seed, parameters))
            metrics["mean"] += 0.5  # a silent change in the code
            return metrics

        report = check_reproduction(drifted, record)
        assert not report.reproducible
        assert report.mismatches() == ["mean"]

    def test_missing_and_extra_metrics_flagged(self):
        recipe = ExperimentRecipe("exp", seed=1)
        record = run_experiment(deterministic_experiment, recipe)

        def renamed(seed, parameters):
            metrics = deterministic_experiment(seed, parameters)
            return {"average": metrics["mean"], "max": metrics["max"]}

        report = check_reproduction(renamed, record)
        assert not report.reproducible
        assert "mean" in report.mismatches()    # disappeared
        assert "average" in report.mismatches()  # appeared

    def test_tolerance_validation(self):
        recipe = ExperimentRecipe("exp", seed=1)
        record = run_experiment(deterministic_experiment, recipe)
        with pytest.raises(ValueError):
            check_reproduction(deterministic_experiment, record,
                               relative_tolerance=-1.0)

    def test_simulation_experiment_reproduces_end_to_end(self):
        """A full scheduler run is reproducible from its recipe."""
        from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
        from repro.scheduling import ClusterScheduler
        from repro.sim import Simulator
        from repro.workload import PoissonArrivals, WorkloadGenerator

        def scheduling_experiment(seed, parameters):
            sim = Simulator()
            dc = Datacenter(sim, [homogeneous_cluster(
                "c", parameters["machines"],
                MachineSpec(cores=16, memory=1e9))])
            scheduler = ClusterScheduler(sim, dc)
            jobs = WorkloadGenerator(
                PoissonArrivals(0.3, rng=random.Random(seed)),
                rng=random.Random(seed + 1)).generate(
                    parameters["horizon"])
            for job in jobs:
                scheduler.submit_job(job)
            sim.run(until=1_000_000.0)
            stats = scheduler.statistics()
            return {"completed": stats["completed"],
                    "slowdown_mean": stats["slowdown_mean"]}

        recipe = ExperimentRecipe("sched", seed=5,
                                  parameters={"machines": 4,
                                              "horizon": 100.0})
        record = run_experiment(scheduling_experiment, recipe)
        report = check_reproduction(scheduling_experiment, record)
        assert report.reproducible
