"""Property-based tests (hypothesis) on core invariants."""

import math
import random

from hypothesis import given
from hypothesis import strategies as st

from repro.autoscaling import StepSeries, evaluate_elasticity
from repro.core import Direction, NFRKind, Requirement
from repro.datacenter import Machine, MachineSpec
from repro.graphproc import bfs, random_graph, wcc
from repro.sim import Simulator, summarize
from repro.solvers import MM1, MMc
from repro.workload import GWFRecord, Task, random_workflow


# ---------------------------------------------------------------------------
# Event queue: events process in non-decreasing time order
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False), min_size=1, max_size=50))
def test_event_queue_time_ordered(delays):
    sim = Simulator()
    fired = []

    def waiter(sim, delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(waiter(sim, delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# summarize: order statistics are consistent
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_summarize_order_statistics(values):
    stats = summarize(values)
    assert stats["min"] <= stats["p50"] <= stats["p95"] <= stats["max"]
    # Mean can drift below min/above max by float-summation rounding.
    assert (stats["min"] <= stats["mean"] <= stats["max"]
            or math.isclose(stats["mean"], stats["min"], rel_tol=1e-9)
            or math.isclose(stats["mean"], stats["max"], rel_tol=1e-9))
    assert stats["std"] >= 0.0
    assert stats["count"] == len(values)


# ---------------------------------------------------------------------------
# Machine capacity conservation under arbitrary allocate/release
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=8),
                          st.floats(min_value=0.1, max_value=16.0)),
                min_size=1, max_size=40),
       st.randoms(use_true_random=False))
def test_machine_capacity_never_exceeded(task_specs, rng):
    machine = Machine("m", MachineSpec(cores=8, memory=16.0))
    live = []
    for cores, memory in task_specs:
        task = Task(runtime=1.0, cores=cores, memory=memory)
        if machine.can_fit(task):
            machine.allocate(task)
            live.append(task)
        assert 0 <= machine.cores_used <= machine.spec.cores
        assert 0.0 <= machine.memory_used <= machine.spec.memory + 1e-9
        if live and rng.random() < 0.4:
            victim = live.pop(rng.randrange(len(live)))
            machine.release(victim)
    for task in live:
        machine.release(task)
    assert machine.cores_used == 0
    assert machine.memory_used == 0.0


# ---------------------------------------------------------------------------
# GWF round-trip fidelity
# ---------------------------------------------------------------------------
record_strategy = st.builds(
    GWFRecord,
    job_id=st.integers(min_value=1, max_value=10**9),
    submit_time=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    wait_time=st.floats(min_value=-1, max_value=1e6, allow_nan=False),
    run_time=st.floats(min_value=0, max_value=1e7, allow_nan=False),
    n_procs=st.integers(min_value=1, max_value=4096),
    req_n_procs=st.integers(min_value=-1, max_value=4096),
    req_memory=st.floats(min_value=-1, max_value=1e4, allow_nan=False),
    status=st.sampled_from([0, 1]),
    user_id=st.from_regex(r"U[0-9]{1,6}", fullmatch=True),
    job_structure=st.sampled_from(["UNITARY", "BOT"]),
)


@given(st.lists(record_strategy, min_size=1, max_size=30))
def test_gwf_line_round_trip(records):
    for record in records:
        assert GWFRecord.from_line(record.to_line()) == record


# ---------------------------------------------------------------------------
# Elasticity metrics: bounds always hold
# ---------------------------------------------------------------------------
series_points = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1, max_size=20)


@given(series_points, series_points)
def test_elasticity_metric_bounds(demand_values, supply_values):
    demand = StepSeries([(float(i), v)
                         for i, v in enumerate(demand_values)])
    supply = StepSeries([(float(i), v)
                         for i, v in enumerate(supply_values)])
    horizon = max(len(demand_values), len(supply_values)) + 1.0
    report = evaluate_elasticity(demand, supply, 0.0, horizon)
    assert 0.0 <= report.timeshare_under <= 1.0
    assert 0.0 <= report.timeshare_over <= 1.0
    assert report.timeshare_under + report.timeshare_over <= 1.0 + 1e-9
    assert report.accuracy_under >= 0.0
    assert report.accuracy_over >= 0.0
    assert report.jitter >= 0.0


@given(series_points)
def test_perfect_tracking_scores_zero(values):
    series = StepSeries([(float(i), v) for i, v in enumerate(values)])
    report = evaluate_elasticity(series, series, 0.0, len(values) + 1.0)
    assert report.accuracy_under == 0.0
    assert report.accuracy_over == 0.0
    assert report.elastic_deviation() == 0.0


# ---------------------------------------------------------------------------
# Requirement: satisfied iff violation is zero
# ---------------------------------------------------------------------------
@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
       st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
       st.sampled_from(list(Direction)))
def test_requirement_violation_consistency(measured, target, direction):
    requirement = Requirement(kind=NFRKind.PERFORMANCE, metric="m",
                              target=target, direction=direction)
    violation = requirement.violation(measured)
    assert violation >= 0.0
    assert requirement.satisfied(measured) == (violation == 0.0)


# ---------------------------------------------------------------------------
# Random workflows: structural invariants
# ---------------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=40),
       st.floats(min_value=0.0, max_value=0.5),
       st.integers(min_value=0, max_value=10**6))
def test_random_workflow_invariants(n_tasks, edge_probability, seed):
    workflow = random_workflow(n_tasks=n_tasks,
                               edge_probability=edge_probability,
                               rng=random.Random(seed))
    workflow.validate()
    assert len(workflow) == n_tasks
    seen = set()
    for task in workflow.walk_topological():
        assert all(dep in seen for dep in task.dependencies)
        seen.add(task)
    total_work = sum(t.runtime for t in workflow)
    critical = workflow.critical_path_length()
    assert 0.0 < critical <= total_work + 1e-9
    assert workflow.depth <= n_tasks


# ---------------------------------------------------------------------------
# Graph algorithms: BFS and WCC structural properties
# ---------------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=40),
       st.floats(min_value=0.0, max_value=0.3),
       st.integers(min_value=0, max_value=10**6))
def test_bfs_depths_are_shortest(n, p, seed):
    graph = random_graph(n, p, rng=random.Random(seed))
    depths, _ = bfs(graph, source=0)
    assert depths[0] == 0
    # Every reachable vertex's depth differs by <=1 from some neighbor
    # on a shortest-path tree, and edges never skip levels.
    for u in depths:
        for v in graph.neighbors(u):
            if v in depths:
                assert abs(depths[u] - depths[v]) <= 1


@given(st.integers(min_value=2, max_value=40),
       st.floats(min_value=0.0, max_value=0.3),
       st.integers(min_value=0, max_value=10**6))
def test_wcc_labels_are_equivalence_classes(n, p, seed):
    graph = random_graph(n, p, rng=random.Random(seed))
    components, _ = wcc(graph)
    assert set(components) == set(graph.vertices())
    # Every edge joins same-component vertices.
    for u, v, _ in graph.edges():
        assert components[u] == components[v]
    # Labels are component minima.
    for vertex, label in components.items():
        assert label <= vertex


# ---------------------------------------------------------------------------
# Queueing closed forms satisfy Little's law and reduce correctly
# ---------------------------------------------------------------------------
@given(st.floats(min_value=0.1, max_value=10.0),
       st.floats(min_value=0.01, max_value=0.95))
def test_mm1_littles_law(service_rate, utilization):
    arrival_rate = service_rate * utilization
    queue = MM1(arrival_rate=arrival_rate, service_rate=service_rate)
    assert math.isclose(queue.mean_jobs_in_system,
                        arrival_rate * queue.mean_response_time,
                        rel_tol=1e-9)
    assert queue.mean_response_time >= 1.0 / service_rate


@given(st.floats(min_value=0.1, max_value=5.0),
       st.floats(min_value=0.05, max_value=0.9),
       st.integers(min_value=1, max_value=16))
def test_mmc_consistency(service_rate, utilization, servers):
    arrival_rate = servers * service_rate * utilization
    queue = MMc(arrival_rate=arrival_rate, service_rate=service_rate,
                servers=servers)
    assert 0.0 <= queue.erlang_c <= 1.0
    assert queue.mean_waiting_time >= 0.0
    assert math.isclose(queue.mean_jobs_in_system,
                        arrival_rate * queue.mean_response_time,
                        rel_tol=1e-9)
