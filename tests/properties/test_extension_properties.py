"""Property-based tests for the extension subsystems."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SuperFlexibility, super_scalability
from repro.datacenter import secure_sum
from repro.evolution import EvolutionModel
from repro.navigation import NFRProfile, Requirements
from repro.workload import ProvenanceChain


# ---------------------------------------------------------------------------
# Secure aggregation: exactness and masking
# ---------------------------------------------------------------------------
@given(st.dictionaries(st.from_regex(r"site-[a-z]{1,6}", fullmatch=True),
                       st.floats(min_value=-1e4, max_value=1e4,
                                 allow_nan=False),
                       min_size=2, max_size=8),
       st.integers(min_value=0, max_value=10**6))
def test_secure_sum_exact_for_any_inputs(values, seed):
    total, published = secure_sum(values, rng=random.Random(seed))
    assert total == pytest.approx(sum(values.values()), abs=1e-4)
    assert set(published) == set(values)


# ---------------------------------------------------------------------------
# Provenance: any single-entry mutation is detected
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=1000),
                min_size=1, max_size=15),
       st.data())
def test_provenance_detects_any_payload_mutation(payloads, data):
    import dataclasses

    chain = ProvenanceChain("p")
    for value in payloads:
        chain.record("event", {"value": value})
    assert chain.is_intact()
    index = data.draw(st.integers(min_value=0,
                                  max_value=len(payloads) - 1))
    entry = chain.entries[index]
    mutated = dataclasses.replace(
        entry, payload={"value": entry.payload["value"] + 1})
    chain._entries[index] = mutated
    assert not chain.is_intact()
    assert index in chain.verify()


# ---------------------------------------------------------------------------
# Evolution: shares are a distribution after every run length
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=10),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=3.0),
       st.integers(min_value=1, max_value=40),
       st.integers(min_value=0, max_value=10**6))
def test_evolution_shares_always_normalized(n_initial, radical, lock_in,
                                            generations, seed):
    model = EvolutionModel(n_initial=n_initial,
                           radical_probability=radical,
                           lock_in_strength=lock_in,
                           rng=random.Random(seed))
    trace = model.run(generations=generations)
    assert sum(t.share for t in model.population) == pytest.approx(1.0)
    assert all(t.share >= 0 for t in model.population)
    assert all(t.quality > 0 for t in model.population)
    assert len(trace.mean_quality) == generations
    assert all(0.0 < c <= 1.0 + 1e-9 for c in trace.concentration)


# ---------------------------------------------------------------------------
# Navigation: utilities are bounded and monotone in quality
# ---------------------------------------------------------------------------
profile_strategy = st.builds(
    NFRProfile,
    latency_ms=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    availability=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    cost=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    throughput=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))


@given(profile_strategy)
def test_navigation_utility_bounded(profile):
    utility = Requirements().utility(profile)
    assert 0.0 <= utility <= 1.0


@given(profile_strategy)
def test_pareto_improvement_never_lowers_utility(profile):
    better = NFRProfile(latency_ms=profile.latency_ms / 2,
                        availability=min(1.0, profile.availability + 0.01
                                         * (1 - profile.availability)),
                        cost=profile.cost / 2,
                        throughput=profile.throughput * 2 + 1)
    requirements = Requirements()
    assert (requirements.utility(better)
            >= requirements.utility(profile) - 1e-12)


# ---------------------------------------------------------------------------
# Super-properties: harmonic combination bounds
# ---------------------------------------------------------------------------
score_strategy = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(score_strategy, score_strategy)
def test_super_flexibility_bounded_by_sides(closed, open_score):
    assessment = SuperFlexibility(closed={"c": closed},
                                  open={"o": open_score})
    assert 0.0 <= assessment.score <= 1.0
    assert assessment.score <= max(closed, open_score) + 1e-12
    assert assessment.score <= 2 * min(closed, open_score) + 1e-12


@given(score_strategy, score_strategy,
       st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
def test_super_scalability_bounded(strong, weak, deviation):
    score = super_scalability(strong, weak, deviation)
    assert 0.0 <= score <= 1.0
