"""Property-based tests over whole subsystems (scheduler, FaaS, banking)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.banking import ClearingSystem, Payment, PaymentStatus, edf_order
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.faas import FaaSPlatform, FunctionSpec
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import Task, TaskState

task_strategy = st.tuples(
    st.floats(min_value=0.1, max_value=50.0),   # runtime
    st.integers(min_value=1, max_value=4),      # cores
)


@settings(max_examples=25, deadline=None)
@given(st.lists(task_strategy, min_size=1, max_size=30),
       st.integers(min_value=1, max_value=3),
       st.booleans())
def test_scheduler_completes_every_task_exactly_once(specs, machines,
                                                     backfilling):
    """No task is lost or run twice, whatever the load and policy."""
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", machines, MachineSpec(cores=4, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc, backfilling=backfilling)
    tasks = [Task(runtime=runtime, cores=cores)
             for runtime, cores in specs]
    for task in tasks:
        scheduler.submit(task)
    sim.run(until=1_000_000.0)
    assert len(scheduler.completed) == len(tasks)
    assert {t.task_id for t in scheduler.completed} == {
        t.task_id for t in tasks}
    for task in tasks:
        assert task.state is TaskState.FINISHED
        assert task.slowdown >= 1.0 - 1e-9
        assert task.wait_time >= 0.0
    # Capacity was conserved: total served core-seconds fit the fleet.
    makespan = scheduler.makespan()
    served = sum(t.core_seconds for t in tasks)
    assert served <= makespan * machines * 4 + 1e-6


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=0.05, max_value=2.0),
                min_size=1, max_size=20),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.25, max_value=2.0))
def test_faas_billing_is_exact(runtimes, cold_start, memory_gb):
    """Billed GB-seconds equal the sum of execution durations x memory."""
    sim = Simulator()
    platform = FaaSPlatform(sim, concurrency=100, gb_second_price=1.0,
                            per_invocation_price=0.0)
    platform.deploy(FunctionSpec("f", mean_runtime=1.0, memory_gb=memory_gb,
                                 cold_start=cold_start, keep_alive=1e9))
    for runtime in runtimes:
        sim.run(until=platform.invoke("f", runtime=runtime))
    expected = sum(runtimes) * memory_gb
    assert platform.billed_gb_seconds == pytest.approx(expected)
    assert platform.billed_dollars == pytest.approx(expected)
    # Cold starts never exceed invocations; with an infinite keep-alive
    # and sequential calls, exactly the first one is cold.
    cold = sum(1 for i in platform.invocations if i.cold)
    assert cold == 1
    # Warm pool can never exceed completed invocations.
    assert platform.warm_instances("f") <= len(platform.invocations)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=50.0),   # submit offset
    st.floats(min_value=0.5, max_value=30.0)),  # deadline slack
    min_size=1, max_size=25),
    st.integers(min_value=1, max_value=4))
def test_clearing_conserves_payments(payment_specs, capacity):
    """Every submitted payment is cleared exactly once, in any order."""
    sim = Simulator()
    clearing = ClearingSystem(sim, capacity=capacity, service_time=0.5,
                              order=edf_order)
    payments = []

    def feeder(sim):
        for offset, slack in sorted(payment_specs):
            delay = offset - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            payment = Payment(amount=1.0, submit_time=sim.now,
                              deadline=sim.now + slack)
            payments.append(payment)
            clearing.submit(payment)

    sim.run(until=sim.process(feeder(sim)))
    sim.run(until=10_000.0)
    clearing.stop()
    assert len(clearing.cleared) == len(payments)
    assert all(p.status is PaymentStatus.CLEARED for p in payments)
    assert 0.0 <= clearing.deadline_compliance() <= 1.0
    # Clearing latency is at least the service time for everyone.
    for payment in payments:
        assert (payment.cleared_time - payment.submit_time
                >= 0.5 - 1e-9)
