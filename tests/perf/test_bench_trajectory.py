"""The committed BENCH record and its CI sanity checker stay honest."""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_sim_core.json"
SWEEP_BENCH_PATH = REPO_ROOT / "BENCH_sweep.json"

if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench_trajectory as checker  # noqa: E402


@pytest.fixture(scope="module")
def record() -> dict:
    return json.loads(BENCH_PATH.read_text())


def _write(tmp_path: Path, record: dict) -> Path:
    path = tmp_path / "BENCH_edited.json"
    path.write_text(json.dumps(record))
    return path


def test_committed_record_passes(record: dict) -> None:
    assert checker.check_record(BENCH_PATH) == []


def test_committed_record_shape(record: dict) -> None:
    assert record["schema"] == "bench-sim-core/v1"
    assert set(record) >= {"before", "current", "generated_with", "smoke",
                           "speedups"}
    for name in ("before", "current", "smoke"):
        assert set(record[name]) >= {"digests", "metrics", "schema"}
    assert all(ratio > 0 for ratio in record["speedups"].values())


def test_checker_rejects_wrong_schema(record: dict, tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    edited["schema"] = "bench-sim-core/v0"
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("schema" in p for p in problems)


def test_checker_rejects_missing_sections(record: dict,
                                          tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    del edited["speedups"]
    del edited["smoke"]
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("'speedups'" in p for p in problems)
    assert any("'smoke'" in p for p in problems)


def test_checker_rejects_nonpositive_speedup(record: dict,
                                             tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    edited["speedups"]["scheduling"] = -2.0
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("positive finite" in p for p in problems)


def test_checker_rejects_fabricated_speedup(record: dict,
                                            tmp_path: Path) -> None:
    # A speedup claim that the captured timings do not support.
    edited = copy.deepcopy(record)
    edited["speedups"]["scheduling"] = 1000.0
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("disagrees" in p for p in problems)


def test_checker_rejects_missing_sha(record: dict, tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    del edited["current"]["digests"]["chaos"]["sha"]
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("sha" in p for p in problems)


def test_checker_rejects_dropped_digest(record: dict,
                                        tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    del edited["current"]["digests"]["csr"]
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("dropped digests" in p for p in problems)


def test_checker_rejects_drifted_digest_with_field_diff(
        record: dict, tmp_path: Path) -> None:
    # A sha drift must fail AND name the summary fields that diverged,
    # so a broken determinism contract reads like a failing assertion.
    edited = copy.deepcopy(record)
    entry = edited["current"]["digests"]["scheduling"]
    entry["sha"] = "0" * 64
    entry["completed"] = 9_999.0
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("sha drifted" in p for p in problems)
    assert any("completed" in p and "9999.0" in p for p in problems)


def test_checker_explains_sha_drift_with_equal_summaries(
        record: dict, tmp_path: Path) -> None:
    # Same statistics but a different trace hash: the diff must point
    # at the event-trace goldens instead of printing nothing.
    edited = copy.deepcopy(record)
    edited["current"]["digests"]["scheduling"]["sha"] = "0" * 64
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("sha drifted" in p for p in problems)
    assert any("goldens" in p for p in problems)


def test_checker_caps_drift_diff_length(record: dict,
                                        tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    for capture, base in (("before", 0.0), ("current", 1.0)):
        entry = edited[capture]["digests"]["scheduling"]
        entry["statistics"] = {f"stat{i}": base + i for i in range(40)}
    edited["current"]["digests"]["scheduling"]["sha"] = "0" * 64
    problems = checker.check_record(_write(tmp_path, edited))
    diff_lines = [p for p in problems if "statistics.stat" in p]
    assert len(diff_lines) == checker.DRIFT_DIFF_LIMIT
    assert any("more differing summary fields" in p for p in problems)


def test_checker_skips_sha_comparison_across_spec_change(
        record: dict, tmp_path: Path) -> None:
    # Different fingerprints mean different experiments: the checker
    # reports the fingerprint change, not a meaningless sha diff.
    edited = copy.deepcopy(record)
    edited["before"]["digests"]["scheduling"]["fingerprint"] = "a" * 16
    current = edited["current"]["digests"]["scheduling"]
    current["fingerprint"] = "b" * 16
    current["sha"] = "0" * 64
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("fingerprint changed" in p for p in problems)
    assert not any("sha drifted" in p for p in problems)


def test_checker_rejects_calibrated_cost_regression(
        record: dict, tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    before_cost = edited["before"]["metrics"]["scheduling"]["calibrated_cost"]
    edited["current"]["metrics"]["scheduling"]["calibrated_cost"] = (
        before_cost * 2.0)
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("calibrated_cost regressed for scheduling" in p
               for p in problems)


def test_checker_allows_cost_noise_within_slack(record: dict,
                                                tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    before_cost = edited["before"]["metrics"]["scheduling"]["calibrated_cost"]
    edited["current"]["metrics"]["scheduling"]["calibrated_cost"] = (
        before_cost * (1.0 + checker.COST_REGRESSION_SLACK / 2))
    problems = checker.check_record(_write(tmp_path, edited))
    assert not any("calibrated_cost regressed" in p for p in problems)


def test_checker_rejects_dropped_cost_tracking(record: dict,
                                               tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    del edited["current"]["metrics"]["scheduling"]["calibrated_cost"]
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("dropped calibrated_cost" in p for p in problems)


def test_committed_scheduling_trajectory_claims(record: dict) -> None:
    # The epoch-batching PR's headline: the scheduling macro got >= 5x
    # faster while computing byte-identical results.
    before = record["before"]["digests"]["scheduling"]
    current = record["current"]["digests"]["scheduling"]
    assert before["sha"] == current["sha"]
    assert record["speedups"]["scheduling"] >= 5.0


def test_committed_sweep_record_passes() -> None:
    assert checker.check_record(SWEEP_BENCH_PATH) == []


def test_committed_sweep_record_claims() -> None:
    record = json.loads(SWEEP_BENCH_PATH.read_text())
    # The headline claim of the sweep kernel: >= 2x over the cold
    # process-per-config workflow it replaced, identical science.
    assert record["speedups"]["sweep"] >= 2.0
    before = record["before"]["digests"]["sweep"]
    current = record["current"]["digests"]["sweep"]
    assert before["sha"] == current["sha"]
    assert checker._valid_fingerprint(before["fingerprint"])


def test_checker_accepts_wellformed_fingerprint(record: dict,
                                                tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    for capture in ("before", "current"):
        edited[capture]["digests"]["chaos"]["fingerprint"] = "ab12" * 4
    assert checker.check_record(_write(tmp_path, edited)) == []


def test_checker_rejects_malformed_fingerprint(record: dict,
                                               tmp_path: Path) -> None:
    edited = copy.deepcopy(record)
    edited["current"]["digests"]["chaos"]["fingerprint"] = "not-hex!"
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("malformed spec fingerprint" in p for p in problems)


def test_checker_rejects_fingerprint_change_between_captures(
        record: dict, tmp_path: Path) -> None:
    # Two captures with different spec fingerprints are runs of
    # different experiments; their timings are not a trajectory.
    edited = copy.deepcopy(record)
    edited["before"]["digests"]["chaos"]["fingerprint"] = "a" * 16
    edited["current"]["digests"]["chaos"]["fingerprint"] = "b" * 16
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("fingerprint changed" in p for p in problems)


def test_checker_rejects_unreadable_file(tmp_path: Path) -> None:
    path = tmp_path / "BENCH_broken.json"
    path.write_text("{not json")
    assert checker.check_record(path)


def test_main_exit_status(record: dict, tmp_path: Path,
                          capsys: pytest.CaptureFixture) -> None:
    assert checker.main([str(BENCH_PATH)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "all OK" in out
    edited = copy.deepcopy(record)
    edited["speedups"]["chaos"] = float("nan")
    bad = _write(tmp_path, edited)
    assert checker.main([str(bad)]) == 1
    assert "FAIL" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# bench-shard/v1: the monolith-vs-sharded trajectory record
# ---------------------------------------------------------------------------

SHARD_BENCH_PATH = REPO_ROOT / "BENCH_shard.json"


@pytest.fixture(scope="module")
def shard_record() -> dict:
    return json.loads(SHARD_BENCH_PATH.read_text())


def test_committed_shard_record_passes(shard_record: dict) -> None:
    assert checker.check_record(SHARD_BENCH_PATH) == []


def test_committed_shard_record_shape(shard_record: dict) -> None:
    assert shard_record["schema"] == "bench-shard/v1"
    assert set(shard_record) >= {"generated_with", "monolith", "sharded",
                                 "speedups"}
    assert shard_record["sharded"]["shards"] >= 4
    assert max(shard_record["speedups"].values()) >= 2.0


def test_shard_checker_rejects_digest_divergence(
        shard_record: dict, tmp_path: Path) -> None:
    edited = copy.deepcopy(shard_record)
    first = next(iter(edited["sharded"]["configs"]))
    edited["sharded"]["configs"][first]["digest"] = "0" * 64
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("determinism contract" in p for p in problems)


def test_shard_checker_rejects_inconsistent_speedup(
        shard_record: dict, tmp_path: Path) -> None:
    edited = copy.deepcopy(shard_record)
    first = next(iter(edited["speedups"]))
    edited["speedups"][first] *= 3.0
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("disagrees with captured timings" in p for p in problems)


def test_shard_checker_rejects_sub_claim_speedup(
        shard_record: dict, tmp_path: Path) -> None:
    # A record whose best configuration no longer clears the committed
    # 2x claim is a regressed trajectory, not a typo.
    edited = copy.deepcopy(shard_record)
    scale = max(edited["speedups"].values()) / 1.5
    for workers in edited["speedups"]:
        edited["speedups"][workers] /= scale
        edited["sharded"]["configs"][workers]["elapsed_s"] *= scale
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("beats the monolith" in p for p in problems)


def test_shard_checker_rejects_too_few_shards(
        shard_record: dict, tmp_path: Path) -> None:
    edited = copy.deepcopy(shard_record)
    edited["sharded"]["shards"] = 2
    problems = checker.check_record(_write(tmp_path, edited))
    assert any("must demonstrate" in p for p in problems)
