"""Bit-identical determinism regression tests.

Every hot-path optimization in this repository must preserve *exact*
event ordering: same seeds, same event-time traces, same scheduler
statistics, same chaos reports, same CSR arrays.  The goldens in
``goldens/determinism.json`` were captured on the pre-optimization code
(see ``benchmarks/perf/run_benchmarks.py --capture-goldens``) and pin
SHA-256 digests of each scenario at a small, test-friendly size.

If one of these tests fails after an intentional semantic change (for
example a new tie-breaking rule), re-capture the goldens with::

    PYTHONPATH=src python -m benchmarks.perf.run_benchmarks \
        --capture-goldens tests/perf/goldens/determinism.json

and explain the behavior change in the commit message.  Never
re-capture to paper over an *unintended* digest change.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_PATH = Path(__file__).parent / "goldens" / "determinism.json"

if str(REPO_ROOT) not in sys.path:  # make `benchmarks` importable
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf import scenarios  # noqa: E402


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_schema(golden: dict) -> None:
    assert golden["schema"] == "determinism-goldens/v1"
    for name in ("scheduling", "event_core", "csr", "chaos", "alerts"):
        assert "sha" in golden[name], f"golden {name} lacks a digest"


def test_scheduling_trace_is_bit_identical(golden: dict) -> None:
    sizes = golden["sizes"]
    record = scenarios.digest_scheduling(sizes["sched_tasks"],
                                         sizes["sched_machines"])
    assert record["sha"] == golden["scheduling"]["sha"], (
        "scheduling event trace/statistics digest changed — an "
        "optimization altered scheduling order")
    # The digest covers these too, but compare directly for a readable
    # failure before falling back to the opaque hash.
    assert record["statistics"] == golden["scheduling"]["statistics"]
    assert record["makespan"] == golden["scheduling"]["makespan"]


def test_event_core_trace_is_bit_identical(golden: dict) -> None:
    sizes = golden["sizes"]
    record = scenarios.digest_event_core(sizes["event_count"])
    assert record["sha"] == golden["event_core"]["sha"], (
        "event-core trace digest changed — kernel event ordering moved")


def test_csr_arrays_are_bit_identical(golden: dict) -> None:
    sizes = golden["sizes"]
    record = scenarios.digest_csr(sizes["csr_vertices"],
                                  sizes["csr_degree"])
    assert record["sha"] == golden["csr"]["sha"], (
        "CSR indptr/indices/weights or PageRank digest changed — "
        "vectorized construction no longer reproduces the edge order")


def test_chaos_report_is_bit_identical(golden: dict) -> None:
    record = scenarios.digest_chaos()
    assert record["sha"] == golden["chaos"]["sha"], (
        "chaos experiment report digest changed — resilience event "
        "ordering moved")
    assert record["summary"] == golden["chaos"]["summary"]
    assert record["violations"] == golden["chaos"]["violations"]


def test_slo_alert_log_is_bit_identical(golden: dict) -> None:
    record = scenarios.digest_alerts()
    assert record["sha"] == golden["alerts"]["sha"], (
        "SLO report / alert-log digest changed — burn-rate evaluation "
        "or telemetry tick placement moved")
    assert record["alerts"] == golden["alerts"]["alerts"]
    assert record["slo_report"] == golden["alerts"]["slo_report"]
