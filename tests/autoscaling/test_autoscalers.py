"""Unit tests for the autoscaler policy families."""

import pytest

from repro.autoscaling import (
    AUTOSCALERS,
    AdaptAutoscaler,
    AutoscalerInput,
    ConPaaSAutoscaler,
    HistAutoscaler,
    ReactAutoscaler,
    RegAutoscaler,
    TokenAutoscaler,
)


def snap(time=0.0, queued=0, running=0, eligible=0, soon=0, machines=4,
         cores=4, max_machines=16):
    return AutoscalerInput(
        time=time, queued_cores=queued, running_cores=running,
        eligible_tasks=eligible, soon_eligible_tasks=soon,
        machines=machines, cores_per_machine=cores,
        max_machines=max_machines)


def test_input_helpers():
    s = snap(queued=6, running=2, cores=4)
    assert s.demand_cores == 8
    assert s.machines_for(8) == 2
    assert s.machines_for(9) == 3
    assert s.machines_for(-5) == 0
    assert s.machines_for(1e9) == 16  # clamped


class TestReact:
    def test_matches_demand_exactly(self):
        scaler = ReactAutoscaler()
        assert scaler.decide(snap(queued=16, running=0)) == 4
        assert scaler.decide(snap(queued=0, running=0)) == 0

    def test_clamps_to_max(self):
        assert ReactAutoscaler().decide(snap(queued=1000)) == 16


class TestAdapt:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptAutoscaler(damping=0.0)

    def test_damps_oscillating_demand(self):
        scaler = AdaptAutoscaler(damping=0.5)
        # Oscillating demand: once the history is inconsistent, steps
        # are limited to half the gap.
        scaler.decide(snap(queued=32, machines=4))
        scaler.decide(snap(queued=0, machines=4))
        decision = scaler.decide(snap(queued=32, machines=4))
        # Target 8, gap +4, damped step ceil(4*0.5)=2 -> 6, not 8.
        assert decision == 6

    def test_moves_fully_on_consistent_trend(self):
        scaler = AdaptAutoscaler(damping=0.5)
        for demand in (8, 16, 24):
            decision = scaler.decide(snap(queued=demand, machines=2))
        # Consistent upward trend -> full step to demand (24/4 = 6).
        assert decision == 6

    def test_no_gap_no_change(self):
        scaler = AdaptAutoscaler()
        assert scaler.decide(snap(queued=16, machines=4)) == 4


class TestHist:
    def test_validation(self):
        with pytest.raises(ValueError):
            HistAutoscaler(percentile=0.0)

    def test_provisions_high_percentile_of_history(self):
        scaler = HistAutoscaler(percentile=0.95, window=100)
        for _ in range(9):
            scaler.decide(snap(queued=4))
        decision = scaler.decide(snap(queued=40))
        # History is nine 4s and one 40; nearest-rank p95 over 10
        # samples is the 10th value, 40 cores -> 10 machines.
        assert decision == 10

    def test_resists_single_spike(self):
        scaler = HistAutoscaler(percentile=0.5, window=100)
        for _ in range(9):
            scaler.decide(snap(queued=4))
        decision = scaler.decide(snap(queued=400))
        assert decision == 1  # median stays at 4 cores -> 1 machine


class TestReg:
    def test_validation(self):
        with pytest.raises(ValueError):
            RegAutoscaler(window=1)

    def test_extrapolates_rising_trend(self):
        scaler = RegAutoscaler(window=5, horizon=1.0)
        decision = None
        for t, demand in enumerate((4, 8, 12, 16)):
            decision = scaler.decide(snap(time=float(t), queued=demand))
        # Perfect line with slope 4/step: predicts 20 cores -> 5 machines.
        assert decision == 5

    def test_flat_history_matches_demand(self):
        scaler = RegAutoscaler(window=5)
        for t in range(4):
            decision = scaler.decide(snap(time=float(t), queued=8))
        assert decision == 2

    def test_never_scales_below_running(self):
        scaler = RegAutoscaler(window=3)
        scaler.decide(snap(time=0.0, queued=40, running=16))
        scaler.decide(snap(time=1.0, queued=20, running=16))
        decision = scaler.decide(snap(time=2.0, queued=0, running=16))
        assert decision >= 4  # at least the 16 running cores


class TestConPaaS:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConPaaSAutoscaler(low=0.8, high=0.3)

    def test_holds_in_deadband(self):
        scaler = ConPaaSAutoscaler(low=0.3, high=0.8)
        assert scaler.decide(snap(queued=8, machines=4)) == 4  # util 0.5

    def test_scales_up_above_high(self):
        scaler = ConPaaSAutoscaler(low=0.3, high=0.8)
        assert scaler.decide(snap(queued=15, machines=4)) == 6

    def test_scales_down_below_low(self):
        scaler = ConPaaSAutoscaler(low=0.3, high=0.8)
        decision = scaler.decide(snap(queued=2, machines=8))
        assert decision < 8
        assert decision >= 1  # still covers the 2-core demand


class TestToken:
    def test_validation(self):
        with pytest.raises(ValueError):
            TokenAutoscaler(lookahead=2.0)

    def test_counts_eligible_tokens(self):
        scaler = TokenAutoscaler(lookahead=0.0)
        decision = scaler.decide(snap(queued=8, eligible=4))
        # 4 tokens x mean 2 cores = 8 cores -> 2 machines.
        assert decision == 2

    def test_lookahead_adds_capacity(self):
        with_la = TokenAutoscaler(lookahead=1.0).decide(
            snap(queued=8, eligible=4, soon=4))
        without_la = TokenAutoscaler(lookahead=0.0).decide(
            snap(queued=8, eligible=4, soon=4))
        assert with_la > without_la

    def test_no_tokens_still_covers_running(self):
        decision = TokenAutoscaler().decide(snap(running=8, eligible=0))
        assert decision == 2


def test_registry_instantiates_all_families():
    for name, factory in AUTOSCALERS.items():
        scaler = factory()
        assert scaler.name == name
        assert scaler.decide(snap(queued=8)) >= 0
