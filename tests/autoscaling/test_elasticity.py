"""Unit tests for StepSeries and the SPEC elasticity metrics."""

import pytest

from repro.autoscaling import ElasticityReport, StepSeries, evaluate_elasticity


class TestStepSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            StepSeries([])
        with pytest.raises(ValueError):
            StepSeries([(1.0, 1.0), (0.0, 2.0)])
        with pytest.raises(ValueError):
            StepSeries([(0.0, 1.0), (0.0, 2.0)])

    def test_at_lookup(self):
        series = StepSeries([(0.0, 2.0), (10.0, 5.0)])
        assert series.at(0.0) == 2.0
        assert series.at(9.99) == 2.0
        assert series.at(10.0) == 5.0
        assert series.at(100.0) == 5.0
        assert series.at(-5.0) == 2.0  # before start, first value

    def test_change_times_skip_no_ops(self):
        series = StepSeries([(0.0, 2.0), (5.0, 2.0), (10.0, 3.0)])
        assert series.change_times() == [0.0, 10.0]

    def test_segments_cover_interval(self):
        series = StepSeries([(0.0, 1.0), (10.0, 2.0)])
        segments = series.segments(5.0, 15.0)
        assert segments == [(5.0, 10.0, 1.0), (10.0, 15.0, 2.0)]
        with pytest.raises(ValueError):
            series.segments(5.0, 5.0)


class TestElasticityMetrics:
    def test_perfect_tracking_scores_zero(self):
        demand = StepSeries([(0.0, 2.0), (10.0, 4.0)])
        supply = StepSeries([(0.0, 2.0), (10.0, 4.0)])
        report = evaluate_elasticity(demand, supply, 0.0, 20.0)
        assert report.accuracy_under == 0.0
        assert report.accuracy_over == 0.0
        assert report.timeshare_under == 0.0
        assert report.timeshare_over == 0.0
        assert report.elastic_deviation() == 0.0

    def test_underprovisioning_measured(self):
        demand = StepSeries([(0.0, 4.0)])
        supply = StepSeries([(0.0, 2.0)])
        report = evaluate_elasticity(demand, supply, 0.0, 10.0)
        assert report.accuracy_under == pytest.approx(2.0)
        assert report.timeshare_under == pytest.approx(1.0)
        assert report.accuracy_over == 0.0

    def test_overprovisioning_measured(self):
        demand = StepSeries([(0.0, 2.0)])
        supply = StepSeries([(0.0, 5.0)])
        report = evaluate_elasticity(demand, supply, 0.0, 10.0)
        assert report.accuracy_over == pytest.approx(3.0)
        assert report.timeshare_over == pytest.approx(1.0)

    def test_mixed_interval(self):
        demand = StepSeries([(0.0, 4.0)])
        supply = StepSeries([(0.0, 2.0), (5.0, 6.0)])
        report = evaluate_elasticity(demand, supply, 0.0, 10.0)
        # Half the time 2 under, half the time 2 over.
        assert report.accuracy_under == pytest.approx(1.0)
        assert report.accuracy_over == pytest.approx(1.0)
        assert report.timeshare_under == pytest.approx(0.5)
        assert report.timeshare_over == pytest.approx(0.5)

    def test_jitter_counts_supply_changes(self):
        demand = StepSeries([(0.0, 2.0)])
        supply = StepSeries([(0.0, 2.0), (1.0, 3.0), (2.0, 2.0), (3.0, 3.0)])
        report = evaluate_elasticity(demand, supply, 0.0, 10.0)
        assert report.jitter == pytest.approx(3 / 10.0)

    def test_under_weighted_more_in_deviation(self):
        under = ElasticityReport(1.0, 0.0, 0.5, 0.0, 0.0, 0.0)
        over = ElasticityReport(0.0, 1.0, 0.0, 0.5, 0.0, 0.0)
        assert under.elastic_deviation() > over.elastic_deviation()

    def test_invalid_interval_rejected(self):
        series = StepSeries([(0.0, 1.0)])
        with pytest.raises(ValueError):
            evaluate_elasticity(series, series, 10.0, 10.0)
