"""Integration-style tests for the autoscaling controller."""

import pytest

from repro.autoscaling import AutoscalingController, ReactAutoscaler
from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.scheduling import ClusterScheduler
from repro.sim import Simulator
from repro.workload import Task


def build(n_machines=8, cores=4, interval=5.0):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", n_machines, MachineSpec(cores=cores, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc)
    controller = AutoscalingController(sim, dc, scheduler,
                                       ReactAutoscaler(), interval=interval)
    return sim, dc, scheduler, controller


def test_interval_validation():
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
    scheduler = ClusterScheduler(sim, dc)
    with pytest.raises(ValueError):
        AutoscalingController(sim, dc, scheduler, ReactAutoscaler(),
                              interval=0.0)


def test_idle_platform_scales_to_zero():
    sim, dc, scheduler, controller = build()
    sim.run(until=20.0)
    controller.stop()
    assert controller.leased_machines == 0


def test_load_scales_up_and_work_completes():
    sim, dc, scheduler, controller = build(interval=2.0)
    sim.run(until=3.0)  # scale to zero first
    tasks = [Task(runtime=20.0, cores=4) for _ in range(6)]
    for task in tasks:
        scheduler.submit(task)
    sim.run(until=100.0)
    controller.stop()
    assert len(scheduler.completed) == 6
    # React should have leased ~6 machines at peak.
    supply = controller.supply_series()
    assert max(supply.values) >= 6


def test_elasticity_report_produced():
    sim, dc, scheduler, controller = build(interval=2.0)
    for _ in range(4):
        scheduler.submit(Task(runtime=10.0, cores=4))
    sim.run(until=60.0)
    controller.stop()
    report = controller.elasticity(0.0, 60.0)
    assert report.accuracy_under >= 0.0
    assert 0.0 <= report.timeshare_under <= 1.0
    assert report.jitter >= 0.0


def test_supply_never_exceeds_fleet():
    sim, dc, scheduler, controller = build(n_machines=4, interval=2.0)
    for _ in range(50):
        scheduler.submit(Task(runtime=5.0, cores=4))
    sim.run(until=120.0)
    controller.stop()
    assert max(controller.supply_series().values) <= 4
    assert len(scheduler.completed) == 50


def test_busy_machines_not_released():
    sim, dc, scheduler, controller = build(n_machines=2, interval=1.0)
    long_task = Task(runtime=50.0, cores=4)
    scheduler.submit(long_task)
    sim.run(until=10.0)
    # Demand (1 machine) < lease (2), but the busy machine must survive.
    running_machines = [m for m in dc.machines() if m.running_tasks]
    assert len(running_machines) == 1
    assert running_machines[0].available
    sim.run(until=120.0)
    controller.stop()
    assert len(scheduler.completed) == 1
