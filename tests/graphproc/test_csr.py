"""Unit tests for the CSR representation: equivalence with dict kernels."""

import random

import pytest

from repro.graphproc import Graph, bfs, pagerank, random_graph
from repro.graphproc.csr import CSRGraph, bfs_csr, pagerank_csr


def sample_graph(seed=1, n=150, p=0.05, directed=False):
    return random_graph(n, p, directed=directed, rng=random.Random(seed))


class TestCSRGraph:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(Graph())

    def test_structure_matches_source(self):
        graph = sample_graph()
        csr = CSRGraph(graph)
        assert csr.vertex_count == graph.vertex_count
        # Undirected graphs store both directions.
        assert csr.directed_edge_count == 2 * graph.edge_count
        for v in graph.vertices():
            index = csr.index_of[v]
            mine = {csr.vertex_of[u] for u in csr.neighbors_of(index)}
            assert mine == set(graph.neighbors(v))

    def test_directed_structure(self):
        graph = Graph(directed=True)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        csr = CSRGraph(graph)
        assert csr.directed_edge_count == 2
        assert len(csr.neighbors_of(csr.index_of[1])) == 0


class TestBFSEquivalence:
    def test_matches_dict_bfs(self):
        graph = sample_graph(seed=3)
        expected, _ = bfs(graph, source=0)
        actual, _ = bfs_csr(CSRGraph(graph), source=0)
        assert actual == expected

    def test_disconnected_vertices_absent(self):
        graph = Graph.from_edges([(0, 1)])
        graph.add_vertex(9)
        depths, _ = bfs_csr(CSRGraph(graph), 0)
        assert 9 not in depths

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            bfs_csr(CSRGraph(Graph.from_edges([(0, 1)])), source=5)

    def test_op_counts_comparable(self):
        graph = sample_graph(seed=4)
        _, dict_ops = bfs(graph, 0)
        _, csr_ops = bfs_csr(CSRGraph(graph), 0)
        assert csr_ops.edges_scanned == dict_ops.edges_scanned
        assert csr_ops.vertices_touched == dict_ops.vertices_touched


class TestPageRankEquivalence:
    def test_matches_dict_pagerank(self):
        graph = sample_graph(seed=5)
        expected, _ = pagerank(graph, damping=0.85, iterations=25)
        actual, _ = pagerank_csr(CSRGraph(graph), damping=0.85,
                                 iterations=25)
        assert set(actual) == set(expected)
        for vertex, value in expected.items():
            assert actual[vertex] == pytest.approx(value, abs=1e-10)

    def test_dangling_vertices_match(self):
        graph = Graph(directed=True)
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        expected, _ = pagerank(graph, iterations=40)
        actual, _ = pagerank_csr(CSRGraph(graph), iterations=40)
        for vertex, value in expected.items():
            assert actual[vertex] == pytest.approx(value, abs=1e-10)

    def test_validation(self):
        csr = CSRGraph(Graph.from_edges([(0, 1)]))
        with pytest.raises(ValueError):
            pagerank_csr(csr, damping=1.0)
        with pytest.raises(ValueError):
            pagerank_csr(csr, iterations=0)

    def test_ranks_sum_to_one(self):
        ranks, _ = pagerank_csr(CSRGraph(sample_graph(seed=6)),
                                iterations=30)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)


def test_csr_pagerank_faster_on_large_graph():
    """The representation pays off for real: vectorized CSR PageRank
    beats the dict implementation on a non-trivial graph."""
    import time

    graph = random_graph(3000, p=0.004, rng=random.Random(7))
    csr = CSRGraph(graph)

    start = time.perf_counter()
    pagerank(graph, iterations=10)
    dict_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pagerank_csr(csr, iterations=10)
    csr_seconds = time.perf_counter() - start

    assert csr_seconds < dict_seconds
