"""Unit tests for choke-point analysis and experiment compression (C17)."""

import random

import pytest

from repro.graphproc import (
    OpCount,
    PLATFORMS,
    choke_point_analysis,
    compress_experiments,
)


class TestChokePointAnalysis:
    def test_components_sum_to_runtime(self):
        model = PLATFORMS["dataflow-engine"]
        ops = OpCount(vertices_touched=10_000, edges_scanned=100_000,
                      iterations=10)
        breakdown = choke_point_analysis(model, ops, workers=4)
        assert breakdown.total == pytest.approx(model.runtime(ops,
                                                              workers=4))

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            choke_point_analysis(PLATFORMS["native-engine"], OpCount(),
                                 workers=0)

    def test_mapreduce_choke_point_is_barriers_on_small_graphs(self):
        # The disk engine's pathology: synchronization dominates small
        # iterative jobs — the [45] observation behind Figure 1's stack.
        model = PLATFORMS["mapreduce-engine"]
        ops = OpCount(vertices_touched=500, edges_scanned=4000,
                      iterations=10)
        breakdown = choke_point_analysis(model, ops)
        assert breakdown.choke_point == "barriers"
        assert breakdown.fraction("barriers") > 0.5

    def test_native_choke_point_shifts_to_edge_work_at_scale(self):
        model = PLATFORMS["native-engine"]
        ops = OpCount(vertices_touched=10**6, edges_scanned=10**8,
                      iterations=10)
        breakdown = choke_point_analysis(model, ops)
        assert breakdown.choke_point == "edge-work"

    def test_parallelism_shrinks_work_not_barriers(self):
        model = PLATFORMS["dataflow-engine"]
        ops = OpCount(vertices_touched=10**6, edges_scanned=10**7,
                      iterations=20)
        serial = choke_point_analysis(model, ops, workers=1)
        parallel = choke_point_analysis(model, ops, workers=16)
        assert parallel.edge_work < serial.edge_work
        assert parallel.barriers == serial.barriers

    def test_fraction_validation(self):
        breakdown = choke_point_analysis(PLATFORMS["native-engine"],
                                         OpCount())
        with pytest.raises(KeyError):
            breakdown.fraction("network")
        assert breakdown.fraction("overhead") == 1.0  # only overhead > 0


class TestExperimentCompression:
    def make_grid(self, n=30, seed=1):
        rng = random.Random(seed)
        return [(OpCount(vertices_touched=rng.randint(100, 50_000),
                         edges_scanned=rng.randint(1000, 500_000),
                         iterations=rng.randint(1, 30)),
                 rng.choice((1, 2, 4, 8)))
                for _ in range(n)]

    def test_validation(self):
        with pytest.raises(ValueError):
            compress_experiments([], lambda o, w: 1.0)
        grid = self.make_grid(n=8)
        with pytest.raises(ValueError):
            compress_experiments(grid, lambda o, w: 1.0, real_fraction=0.0)

    def test_compression_predicts_a_model_backed_reality(self):
        truth = PLATFORMS["dataflow-engine"]

        def real_runner(ops, workers):
            return truth.runtime(ops, workers)

        grid = self.make_grid(n=40)
        report, runtimes = compress_experiments(grid, real_runner,
                                                real_fraction=0.25)
        assert len(runtimes) == 40
        assert report.real_runs < 40
        assert report.predicted_points == 40 - report.real_runs
        assert report.compression_ratio > 0.5
        assert report.mape < 1e-6  # exact model, exact recovery

    def test_noisy_reality_bounded_error(self):
        truth = PLATFORMS["mapreduce-engine"]
        rng = random.Random(7)

        def noisy_runner(ops, workers):
            return truth.runtime(ops, workers) * (1.0
                                                  + rng.gauss(0.0, 0.03))

        grid = self.make_grid(n=40, seed=2)
        report, _ = compress_experiments(grid, noisy_runner,
                                         real_fraction=0.4)
        assert report.mape < 0.15

    def test_tiny_grid_runs_everything_for_real(self):
        grid = self.make_grid(n=4)
        calls = []

        def counting_runner(ops, workers):
            calls.append(1)
            return 1.0

        report, runtimes = compress_experiments(grid, counting_runner,
                                                real_fraction=0.5)
        assert report.real_runs == 4
        assert report.predicted_points == 0
        assert report.compression_ratio == 0.0
        assert len(runtimes) == 4
