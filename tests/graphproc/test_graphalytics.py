"""Unit tests for platform models and the Graphalytics harness."""

import pytest

from repro.graphproc import (
    ALGORITHMS,
    GraphalyticsHarness,
    OpCount,
    PLATFORMS,
    PlatformModel,
    default_workload,
    random_graph,
)


class TestPlatformModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformModel("bad", per_edge=-1.0, per_vertex=0.0,
                          barrier=0.0, overhead=0.0)
        with pytest.raises(ValueError):
            PlatformModel("bad", 0.0, 0.0, 0.0, 0.0, max_workers=0)
        model = PLATFORMS["native-engine"]
        with pytest.raises(ValueError):
            model.runtime(OpCount(), workers=0)

    def test_runtime_composition(self):
        model = PlatformModel("m", per_edge=1.0, per_vertex=2.0,
                              barrier=10.0, overhead=100.0)
        ops = OpCount(vertices_touched=3, edges_scanned=4, iterations=2)
        # 100 + 2*10 + (4*1 + 3*2)/1 = 130.
        assert model.runtime(ops) == pytest.approx(130.0)
        assert model.runtime(ops, workers=2) == pytest.approx(125.0)

    def test_workers_capped(self):
        model = PlatformModel("m", 1.0, 0.0, 0.0, 0.0, max_workers=4)
        ops = OpCount(edges_scanned=100)
        assert model.runtime(ops, workers=1000) == model.runtime(ops,
                                                                 workers=4)

    def test_native_beats_mapreduce_on_small_graphs(self):
        ops = OpCount(vertices_touched=1000, edges_scanned=5000,
                      iterations=10)
        assert (PLATFORMS["native-engine"].runtime(ops)
                < PLATFORMS["dataflow-engine"].runtime(ops)
                < PLATFORMS["mapreduce-engine"].runtime(ops))

    def test_strong_scaling_sublinear(self):
        model = PLATFORMS["dataflow-engine"]
        ops = OpCount(vertices_touched=10**6, edges_scanned=10**7,
                      iterations=20)
        speedup_8 = model.strong_scaling_speedup(ops, 8)
        assert 1.0 < speedup_8 < 8.0  # barriers prevent linear scaling


class TestWorkload:
    def test_default_workload_complete(self):
        workload = default_workload(scale=100)
        assert set(workload.algorithms) == set(ALGORITHMS)
        assert len(workload.datasets) == 3
        assert workload.version == 1

    def test_renewal_process(self):
        workload = default_workload(scale=50)
        extra = random_graph(30, 0.2)
        renewed = workload.renew(add_datasets={"tiny": extra},
                                 retire_datasets=["sparse"])
        assert renewed.version == 2
        assert "tiny" in renewed.datasets
        assert "sparse" not in renewed.datasets
        assert "sparse" in workload.datasets  # original untouched

    def test_renewal_validation(self):
        workload = default_workload(scale=50)
        with pytest.raises(KeyError):
            workload.renew(retire_datasets=["missing"])
        with pytest.raises(KeyError):
            workload.renew(retire_algorithms=["missing"])
        with pytest.raises(ValueError):
            workload.renew(retire_algorithms=list(workload.algorithms))


class TestHarness:
    @pytest.fixture(scope="class")
    def harness(self):
        return GraphalyticsHarness(default_workload(scale=120, seed=1))

    def test_full_matrix_size(self, harness):
        results = harness.run_suite()
        assert len(results) == 3 * 6 * 3  # platforms x algorithms x datasets
        assert all(r.runtime > 0 for r in results)
        assert all(r.evps > 0 for r in results)

    def test_platform_ranking_order(self, harness):
        results = harness.run_suite()
        ranking = harness.rank_platforms(results)
        assert [name for name, _ in ranking] == [
            "native-engine", "dataflow-engine", "mapreduce-engine"]

    def test_strong_scaling_curve_monotone(self, harness):
        curve = harness.strong_scaling("dataflow-engine", "pr", "uniform")
        speedups = [s for _, s in curve]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 1.0

    def test_weak_scaling_efficiency_below_one(self, harness):
        curve = harness.weak_scaling("dataflow-engine", "bfs",
                                     base_scale=80, worker_counts=(1, 2, 4))
        assert curve[0][1] == pytest.approx(1.0)
        assert all(0.0 < eff <= 1.5 for _, eff in curve)

    def test_variability_report(self, harness):
        report = harness.variability("mapreduce-engine", "bfs",
                                     repetitions=5, scale=100)
        assert report["cv"] >= 0.0
        assert report["p95_over_median"] >= 1.0
        with pytest.raises(ValueError):
            harness.variability("native-engine", "bfs", repetitions=1)

    def test_results_deterministic(self):
        a = GraphalyticsHarness(default_workload(scale=80, seed=3)).run_suite()
        b = GraphalyticsHarness(default_workload(scale=80, seed=3)).run_suite()
        assert [(r.platform, r.algorithm, r.dataset, r.runtime)
                for r in a] == [(r.platform, r.algorithm, r.dataset,
                                 r.runtime) for r in b]

    def test_empty_platforms_rejected(self):
        with pytest.raises(ValueError):
            GraphalyticsHarness(default_workload(scale=50), platforms={})
