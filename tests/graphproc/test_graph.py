"""Unit tests for graph structures and generators."""

import random

import pytest

from repro.graphproc import (
    Graph,
    grid_graph,
    preferential_attachment_graph,
    random_graph,
)


class TestGraph:
    def test_edge_validation(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(1, 1)
        with pytest.raises(ValueError):
            graph.add_edge(1, 2, weight=0.0)

    def test_undirected_symmetry(self):
        graph = Graph(directed=False)
        graph.add_edge(1, 2, weight=3.0)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert graph.edge_count == 1
        assert graph.neighbors(2) == {1: 3.0}

    def test_directed_asymmetry(self):
        graph = Graph(directed=True)
        graph.add_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)
        assert graph.edge_count == 1

    def test_from_edges(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        assert graph.vertex_count == 3
        assert graph.edge_count == 2

    def test_isolated_vertices(self):
        graph = Graph()
        graph.add_vertex(7)
        assert graph.vertex_count == 1
        assert graph.degree(7) == 0
        with pytest.raises(KeyError):
            graph.neighbors(99)

    def test_edges_iterator_counts_once_undirected(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert len(list(graph.edges())) == 3

    def test_degree_statistics(self):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        stats = graph.degree_statistics()
        assert stats["vertices"] == 3
        assert stats["edges"] == 2
        assert stats["mean_degree"] == pytest.approx(4 / 3)
        assert stats["max_degree"] == 2
        with pytest.raises(ValueError):
            Graph().degree_statistics()


class TestGenerators:
    def test_random_graph_edge_density(self):
        n, p = 200, 0.05
        graph = random_graph(n, p, rng=random.Random(1))
        expected = p * n * (n - 1) / 2
        assert graph.edge_count == pytest.approx(expected, rel=0.2)
        assert graph.vertex_count == n

    def test_random_graph_p_zero_and_validation(self):
        assert random_graph(10, 0.0).edge_count == 0
        with pytest.raises(ValueError):
            random_graph(0, 0.5)
        with pytest.raises(ValueError):
            random_graph(10, 1.5)

    def test_random_graph_deterministic(self):
        a = random_graph(50, 0.1, rng=random.Random(7))
        b = random_graph(50, 0.1, rng=random.Random(7))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_preferential_attachment_properties(self):
        graph = preferential_attachment_graph(300, m=2,
                                              rng=random.Random(2))
        assert graph.vertex_count == 300
        stats = graph.degree_statistics()
        # Scale-free: hub degree far exceeds the mean.
        assert stats["max_degree"] > 4 * stats["mean_degree"]

    def test_preferential_attachment_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(2, m=2)
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, m=0)

    def test_grid_graph_structure(self):
        graph = grid_graph(3, 4)
        assert graph.vertex_count == 12
        # Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
        assert graph.edge_count == 17
        assert graph.degree_statistics()["max_degree"] == 4
        with pytest.raises(ValueError):
            grid_graph(0, 4)
