"""Unit tests for the Graphalytics algorithms, with networkx oracles."""

import random

import networkx
import pytest

from repro.graphproc import (
    Graph,
    bfs,
    cdlp,
    lcc,
    pagerank,
    random_graph,
    sssp,
    wcc,
)


def to_networkx(graph: Graph) -> "networkx.Graph":
    nx_graph = networkx.DiGraph() if graph.directed else networkx.Graph()
    nx_graph.add_nodes_from(graph.vertices())
    for u, v, w in graph.edges():
        nx_graph.add_edge(u, v, weight=w)
    return nx_graph


def sample_graph(seed=1, n=120, p=0.05):
    return random_graph(n, p, rng=random.Random(seed))


class TestBFS:
    def test_depths_match_networkx(self):
        graph = sample_graph()
        depths, _ = bfs(graph, source=0)
        oracle = networkx.single_source_shortest_path_length(
            to_networkx(graph), 0)
        assert depths == dict(oracle)

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            bfs(sample_graph(), source=10**9)

    def test_unreachable_vertices_absent(self):
        graph = Graph.from_edges([(0, 1)])
        graph.add_vertex(5)
        depths, _ = bfs(graph, 0)
        assert 5 not in depths

    def test_ops_counted(self):
        graph = sample_graph()
        _, ops = bfs(graph, 0)
        assert ops.vertices_touched > 0
        assert ops.edges_scanned > 0
        assert ops.iterations >= 1


class TestPageRank:
    def test_matches_networkx(self):
        graph = sample_graph(seed=2)
        ranks, _ = pagerank(graph, damping=0.85, iterations=50)
        oracle = networkx.pagerank(to_networkx(graph), alpha=0.85,
                                   max_iter=200, tol=1e-10)
        for vertex, value in ranks.items():
            assert value == pytest.approx(oracle[vertex], abs=1e-4)

    def test_ranks_sum_to_one(self):
        ranks, _ = pagerank(sample_graph(seed=3), iterations=30)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_dangling_vertices_handled(self):
        graph = Graph(directed=True)
        graph.add_edge(0, 1)  # vertex 1 dangles
        ranks, _ = pagerank(graph, iterations=50)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert ranks[1] > ranks[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            pagerank(sample_graph(), damping=1.0)
        with pytest.raises(ValueError):
            pagerank(sample_graph(), iterations=0)
        with pytest.raises(ValueError):
            pagerank(Graph())


class TestWCC:
    def test_matches_networkx_components(self):
        graph = sample_graph(seed=4, n=80, p=0.02)
        components, _ = wcc(graph)
        oracle = list(networkx.connected_components(to_networkx(graph)))
        mine: dict[int, set] = {}
        for vertex, label in components.items():
            mine.setdefault(label, set()).add(vertex)
        assert sorted(map(sorted, mine.values())) == sorted(
            map(sorted, oracle))

    def test_labels_are_component_minimum(self):
        graph = Graph.from_edges([(5, 3), (3, 7), (10, 11)])
        components, _ = wcc(graph)
        assert components[5] == components[3] == components[7] == 3
        assert components[10] == components[11] == 10

    def test_directed_edges_ignored_for_connectivity(self):
        graph = Graph(directed=True)
        graph.add_edge(0, 1)
        graph.add_edge(2, 1)
        components, _ = wcc(graph)
        assert len(set(components.values())) == 1


class TestCDLP:
    def test_two_cliques_get_two_labels(self):
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        edges += [(a, b) for a in range(10, 14) for b in range(a + 1, 14)]
        edges.append((3, 10))  # weak bridge
        graph = Graph.from_edges(edges)
        labels, _ = cdlp(graph, iterations=10)
        first = {labels[v] for v in range(4)}
        second = {labels[v] for v in range(10, 14)}
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_isolated_vertex_keeps_own_label(self):
        graph = Graph()
        graph.add_vertex(9)
        labels, _ = cdlp(graph)
        assert labels == {9: 9}

    def test_validation(self):
        with pytest.raises(ValueError):
            cdlp(Graph(), iterations=0)


class TestLCC:
    def test_matches_networkx_clustering(self):
        graph = sample_graph(seed=5, n=60, p=0.1)
        coefficients, _ = lcc(graph)
        oracle = networkx.clustering(to_networkx(graph))
        for vertex, value in coefficients.items():
            assert value == pytest.approx(oracle[vertex], abs=1e-9)

    def test_triangle_is_fully_clustered(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        coefficients, _ = lcc(graph)
        assert all(v == pytest.approx(1.0) for v in coefficients.values())

    def test_degree_below_two_is_zero(self):
        graph = Graph.from_edges([(0, 1)])
        coefficients, _ = lcc(graph)
        assert coefficients == {0: 0.0, 1: 0.0}


class TestSSSP:
    def test_matches_networkx_dijkstra(self):
        rng = random.Random(6)
        graph = Graph()
        for _ in range(200):
            u, v = rng.randrange(50), rng.randrange(50)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v, weight=rng.uniform(0.1, 10.0))
        distances, _ = sssp(graph, source=0)
        oracle = networkx.single_source_dijkstra_path_length(
            to_networkx(graph), 0)
        assert set(distances) == set(oracle)
        for vertex, dist in distances.items():
            assert dist == pytest.approx(oracle[vertex])

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            sssp(Graph.from_edges([(0, 1)]), source=42)

    def test_weights_respected_over_hop_count(self):
        graph = Graph()
        graph.add_edge(0, 1, weight=10.0)
        graph.add_edge(0, 2, weight=1.0)
        graph.add_edge(2, 1, weight=1.0)
        distances, _ = sssp(graph, 0)
        assert distances[1] == pytest.approx(2.0)
