"""Unit tests for platform-model calibration (C15)."""

import random

import pytest

from repro.graphproc import (
    Observation,
    OpCount,
    PLATFORMS,
    calibrate_platform,
    validation_report,
)


def synthesize_observations(model, n=20, seed=1, noise=0.0):
    rng = random.Random(seed)
    observations = []
    for _ in range(n):
        ops = OpCount(vertices_touched=rng.randint(100, 100_000),
                      edges_scanned=rng.randint(1000, 1_000_000),
                      iterations=rng.randint(1, 50))
        workers = rng.choice((1, 2, 4, 8))
        runtime = model.runtime(ops, workers)
        if noise:
            runtime *= 1.0 + rng.gauss(0.0, noise)
        observations.append(Observation(ops=ops, workers=workers,
                                        runtime=max(0.0, runtime)))
    return observations


class TestObservation:
    def test_validation(self):
        ops = OpCount()
        with pytest.raises(ValueError):
            Observation(ops=ops, workers=0, runtime=1.0)
        with pytest.raises(ValueError):
            Observation(ops=ops, workers=1, runtime=-1.0)


class TestCalibration:
    def test_needs_enough_observations(self):
        with pytest.raises(ValueError):
            calibrate_platform([])

    def test_recovers_known_model_exactly(self):
        truth = PLATFORMS["dataflow-engine"]
        observations = synthesize_observations(truth, n=30, seed=2)
        fitted = calibrate_platform(observations, name="fit",
                                    max_workers=truth.max_workers)
        assert fitted.per_edge == pytest.approx(truth.per_edge, rel=1e-6)
        assert fitted.per_vertex == pytest.approx(truth.per_vertex,
                                                  rel=1e-4)
        assert fitted.barrier == pytest.approx(truth.barrier, rel=1e-6)
        assert fitted.overhead == pytest.approx(truth.overhead, rel=1e-4)

    def test_noisy_calibration_still_predictive(self):
        truth = PLATFORMS["mapreduce-engine"]
        train = synthesize_observations(truth, n=40, seed=3, noise=0.05)
        test = synthesize_observations(truth, n=15, seed=4)
        fitted = calibrate_platform(train, max_workers=truth.max_workers)
        report = validation_report(fitted, test)
        assert report["mape"] < 0.1
        assert report["r_squared"] > 0.95

    def test_costs_clamped_non_negative(self):
        # Degenerate data (all zero-work, random runtimes) must not
        # produce negative cost parameters.
        observations = [Observation(OpCount(), workers=1, runtime=r)
                        for r in (1.0, 2.0, 3.0, 4.0)]
        fitted = calibrate_platform(observations)
        assert fitted.per_edge >= 0.0
        assert fitted.barrier >= 0.0


class TestValidationReport:
    def test_perfect_model_scores_perfectly(self):
        truth = PLATFORMS["native-engine"]
        observations = synthesize_observations(truth, n=10, seed=5)
        report = validation_report(truth, observations)
        assert report["mape"] == pytest.approx(0.0, abs=1e-12)
        assert report["r_squared"] == pytest.approx(1.0)

    def test_wrong_model_scores_badly(self):
        truth = PLATFORMS["native-engine"]
        wrong = PLATFORMS["mapreduce-engine"]
        observations = synthesize_observations(truth, n=10, seed=6)
        report = validation_report(wrong, observations)
        assert report["mape"] > 1.0

    def test_requires_observations(self):
        with pytest.raises(ValueError):
            validation_report(PLATFORMS["native-engine"], [])
