"""Unit tests for software-defined control and legacy adaptation (C2)."""

import pytest

from repro.datacenter import (
    ControlPlane,
    Datacenter,
    MachineSpec,
    MetaMiddleware,
    homogeneous_cluster,
)
from repro.sim import Simulator
from repro.workload import Task


def build(n_machines=4, legacy=()):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", n_machines, MachineSpec(cores=4, memory=1e9))])
    plane = ControlPlane(dc, legacy=legacy)
    return sim, dc, plane


class TestControlPlane:
    def test_unknown_legacy_rejected(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
        with pytest.raises(ValueError):
            ControlPlane(dc, legacy=["ghost"])

    def test_fully_software_defined_fleet(self):
        sim, dc, plane = build()
        assert plane.software_defined_fraction() == 1.0
        result = plane.release(["c-m0", "c-m1"])
        assert result.fully_applied
        assert sum(1 for m in dc.machines() if m.available) == 2

    def test_legacy_machines_reject_dynamic_control(self):
        sim, dc, plane = build(legacy=["c-m0", "c-m1"])
        assert plane.software_defined_fraction() == 0.5
        result = plane.release(["c-m0", "c-m2"])
        assert result.applied == ("c-m2",)
        assert result.rejected == ("c-m0",)
        assert not result.fully_applied
        machine = dc.machines()[0]
        assert machine.available  # legacy machine untouched

    def test_release_skips_busy_machines(self):
        sim, dc, plane = build()
        machine = dc.machines()[0]
        task = Task(runtime=100.0, cores=2)
        dc.execute(task, machine)
        result = plane.release(["c-m0"])
        assert result.applied == ("c-m0",)  # accepted but...
        assert machine.available            # ...busy machines stay up

    def test_lease_brings_machines_back(self):
        sim, dc, plane = build()
        plane.release(["c-m0"])
        assert not dc.machines()[0].available
        plane.lease(["c-m0"])
        assert dc.machines()[0].available

    def test_unknown_machine_in_action(self):
        sim, dc, plane = build()
        with pytest.raises(KeyError):
            plane.release(["ghost"])

    def test_audit_log_records_actions(self):
        sim, dc, plane = build(legacy=["c-m0"])
        plane.release(["c-m0"])
        plane.lease(["c-m1"])
        assert [r.action for r in plane.log] == ["release", "lease"]
        assert plane.log[0].rejected == ("c-m0",)


class TestMetaMiddleware:
    def test_adapters_make_legacy_controllable(self):
        sim, dc, plane = build(legacy=["c-m0", "c-m1"])
        middleware = MetaMiddleware(plane)
        adapted = middleware.wrap_legacy(["c-m0"])
        assert adapted == ["c-m0"]
        assert plane.software_defined_fraction() == 0.75
        result = plane.release(["c-m0"])
        assert result.fully_applied

    def test_wrap_all_covers_remaining_legacy(self):
        sim, dc, plane = build(legacy=["c-m0", "c-m1", "c-m2"])
        middleware = MetaMiddleware(plane)
        adapted = middleware.wrap_all()
        assert sorted(adapted) == ["c-m0", "c-m1", "c-m2"]
        assert plane.software_defined_fraction() == 1.0

    def test_wrapping_modern_machine_is_noop(self):
        sim, dc, plane = build(legacy=["c-m0"])
        middleware = MetaMiddleware(plane)
        assert middleware.wrap_legacy(["c-m3"]) == []
        assert middleware.adapters == []
