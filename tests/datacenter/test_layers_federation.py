"""Unit tests for the Figure 3 reference architecture and federation."""

import pytest

from repro.datacenter import (
    DATACENTER_LAYERS,
    Datacenter,
    DatacenterStack,
    Federation,
    LayeredComponent,
    MachineSpec,
    ReferenceArchitecture,
    homogeneous_cluster,
    least_loaded_offload,
    never_offload,
)
from repro.sim import Simulator
from repro.workload import Task, TaskState


# ---------------------------------------------------------------------------
# Figure 3 reference architecture
# ---------------------------------------------------------------------------
class TestReferenceArchitecture:
    def test_five_core_layers_plus_devops(self):
        arch = ReferenceArchitecture()
        assert len(arch) == 6
        assert len(arch.core_layers()) == 5
        assert arch.layer(6).orthogonal

    def test_core_layer_order_top_down(self):
        names = [l.name for l in ReferenceArchitecture().core_layers()]
        assert names == ["Front-end", "Back-end", "Resources",
                         "Operations Service", "Infrastructure"]

    def test_sublayers_match_figure1_names(self):
        frontend = ReferenceArchitecture().layer(5)
        assert "High Level Languages" in frontend.sublayers
        assert "Programming Models" in frontend.sublayers

    def test_unknown_layer_raises(self):
        with pytest.raises(KeyError):
            ReferenceArchitecture().layer(9)

    def test_duplicate_layer_numbers_rejected(self):
        with pytest.raises(ValueError):
            ReferenceArchitecture(DATACENTER_LAYERS + (DATACENTER_LAYERS[0],))

    def test_table_rows(self):
        rows = ReferenceArchitecture().table_rows()
        assert (5, "Front-end", "application-level functionality") in rows


class TestDatacenterStack:
    def build_full_stack(self):
        stack = DatacenterStack("aws-like")
        stack.place(LayeredComponent("SQL-console", 5,
                                     sublayer="High Level Languages"))
        stack.place(LayeredComponent("Spark", 4, sublayer="Execution Engine"))
        stack.place(LayeredComponent("YARN", 3))
        stack.place(LayeredComponent("Zookeeper", 2))
        stack.place(LayeredComponent("EC2", 1))
        return stack

    def test_complete_stack(self):
        stack = self.build_full_stack()
        assert stack.is_complete()
        assert stack.missing_layers() == []

    def test_missing_layers_reported_in_order(self):
        stack = DatacenterStack("partial")
        stack.place(LayeredComponent("Spark", 4, sublayer="Execution Engine"))
        missing = [l.name for l in stack.missing_layers()]
        assert missing == ["Front-end", "Resources", "Operations Service",
                           "Infrastructure"]

    def test_invalid_sublayer_rejected(self):
        stack = DatacenterStack("bad")
        with pytest.raises(ValueError):
            stack.place(LayeredComponent("X", 3, sublayer="Nope"))

    def test_devops_not_required_for_completeness(self):
        stack = self.build_full_stack()
        assert 6 not in stack.covered_layers()
        assert stack.is_complete()

    def test_at_layer_query(self):
        stack = self.build_full_stack()
        assert [c.name for c in stack.at_layer(4)] == ["Spark"]


# ---------------------------------------------------------------------------
# Federation (C10)
# ---------------------------------------------------------------------------
def build_federation(sim, policy):
    dc_eu = Datacenter(sim, [homogeneous_cluster("eu-c", 2,
                                                 MachineSpec(cores=4))],
                       name="eu")
    dc_us = Datacenter(sim, [homogeneous_cluster("us-c", 2,
                                                 MachineSpec(cores=4))],
                       name="us")
    return Federation(sim, [dc_eu, dc_us],
                      latency={("eu", "us"): 0.15}, policy=policy), dc_eu, dc_us


class TestFederation:
    def test_requires_members_and_unique_names(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Federation(sim, [])
        dc = Datacenter(sim, [homogeneous_cluster("c", 1)], name="x")
        dc2 = Datacenter(sim, [homogeneous_cluster("c2", 1)], name="x")
        with pytest.raises(ValueError):
            Federation(sim, [dc, dc2])

    def test_latency_symmetric_lookup(self):
        sim = Simulator()
        federation, _, _ = build_federation(sim, never_offload)
        assert federation.latency("eu", "us") == 0.15
        assert federation.latency("us", "eu") == 0.15
        assert federation.latency("eu", "eu") == 0.0
        with pytest.raises(KeyError):
            federation.latency("eu", "asia")

    def test_never_offload_runs_at_home(self):
        sim = Simulator()
        federation, dc_eu, dc_us = build_federation(sim, never_offload)
        tasks = [Task(runtime=10.0, cores=2) for _ in range(4)]
        for task in tasks:
            federation.submit(task, "eu")
        sim.run()
        assert federation.offloaded_tasks == 0
        assert all(t.state is TaskState.FINISHED for t in tasks)
        assert len(dc_eu.completed_tasks) == 4
        assert len(dc_us.completed_tasks) == 0

    def test_overload_triggers_offload(self):
        sim = Simulator()
        federation, dc_eu, dc_us = build_federation(
            sim, least_loaded_offload(threshold=0.5))
        # Saturate eu first (8 cores), then submit more: they must go to us.
        saturating = [Task(runtime=50.0, cores=4) for _ in range(2)]
        for task in saturating:
            federation.submit(task, "eu")
        sim.run(until=1.0)
        extra = [Task(runtime=10.0, cores=4) for _ in range(2)]
        for task in extra:
            federation.submit(task, "eu")
        sim.run()
        assert federation.offloaded_tasks == 2
        assert federation.wide_area_seconds == pytest.approx(0.3)
        assert len(dc_us.completed_tasks) == 2

    def test_offload_threshold_validated(self):
        with pytest.raises(ValueError):
            least_loaded_offload(threshold=1.5)

    def test_offloaded_task_pays_latency(self):
        sim = Simulator()
        federation, dc_eu, dc_us = build_federation(
            sim, least_loaded_offload(threshold=0.0))
        # Threshold 0: everything goes to the least loaded site; first
        # submit ties are broken toward home (min is stable), so fill eu.
        task = Task(runtime=10.0, cores=4)
        federation.submit(task, "eu")
        sim.run()
        assert task.state is TaskState.FINISHED

    def test_total_utilization(self):
        sim = Simulator()
        federation, dc_eu, _ = build_federation(sim, never_offload)
        task = Task(runtime=10.0, cores=4)
        federation.submit(task, "eu")
        sim.run(until=5.0)
        # 4 cores of 16 total are busy.
        assert federation.total_utilization() == pytest.approx(0.25)
