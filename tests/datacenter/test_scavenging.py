"""Unit tests for memory scavenging ([118], C7)."""

import pytest

from repro.datacenter import (
    Datacenter,
    Machine,
    MachineSpec,
    ScavengingCoordinator,
    homogeneous_cluster,
)
from repro.sim import Simulator
from repro.workload import Task, TaskState


def build(n_machines=2, cores=8, memory=8.0, **kwargs):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", n_machines, MachineSpec(cores=cores, memory=memory))])
    coordinator = ScavengingCoordinator(dc, **kwargs)
    return sim, dc, coordinator


class TestMachineReservations:
    def test_reserve_and_release(self):
        machine = Machine("m", MachineSpec(cores=4, memory=8.0))
        machine.reserve_memory("k", 3.0)
        assert machine.memory_used == pytest.approx(3.0)
        assert machine.memory_free == pytest.approx(5.0)
        machine.release_memory("k")
        assert machine.memory_used == 0.0
        machine.release_memory("k")  # idempotent

    def test_reservation_validation(self):
        machine = Machine("m", MachineSpec(cores=4, memory=8.0))
        with pytest.raises(ValueError):
            machine.reserve_memory("k", 0.0)
        machine.reserve_memory("k", 2.0)
        with pytest.raises(RuntimeError):
            machine.reserve_memory("k", 1.0)
        with pytest.raises(RuntimeError):
            machine.reserve_memory("big", 100.0)

    def test_reservation_blocks_local_allocation(self):
        machine = Machine("m", MachineSpec(cores=4, memory=8.0))
        machine.reserve_memory("remote", 6.0)
        assert not machine.can_fit(Task(1.0, cores=1, memory=4.0))
        assert machine.can_fit(Task(1.0, cores=1, memory=2.0))


class TestScavengingCoordinator:
    def test_validation(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
        with pytest.raises(ValueError):
            ScavengingCoordinator(dc, penalty_per_remote_fraction=-1.0)
        with pytest.raises(ValueError):
            ScavengingCoordinator(dc, max_remote_fraction=0.0)

    def test_direct_fit_preferred(self):
        sim, dc, coordinator = build()
        task = Task(runtime=10.0, cores=2, memory=4.0)
        process = coordinator.try_place(task)
        assert process is not None
        sim.run(until=process)
        assert coordinator.total_scavenged == 0
        assert task.state is TaskState.FINISHED

    def test_oversized_task_scavenges_from_neighbor(self):
        sim, dc, coordinator = build(n_machines=2, memory=8.0)
        # 12 GiB does not fit any single 8 GiB machine.
        task = Task(runtime=10.0, cores=2, memory=12.0)
        process = coordinator.try_place(task)
        assert process is not None
        assert coordinator.total_scavenged == 1
        assert coordinator.total_borrowed_gb == pytest.approx(4.0)
        # The lender holds a reservation while the task runs.
        lender = dc.machines()[1]
        assert lender.memory_used == pytest.approx(4.0)
        result = sim.run(until=process)
        assert result is task
        # Penalty applied: runtime inflated by 0.3 * (4/12) = 10%.
        assert task.finish_time == pytest.approx(11.0)
        # Reservation released, task footprint restored.
        assert lender.memory_used == 0.0
        assert task.memory == pytest.approx(12.0)
        assert task.runtime == pytest.approx(10.0)

    def test_scavenging_respects_remote_fraction_cap(self):
        sim, dc, coordinator = build(n_machines=3, memory=8.0,
                                     max_remote_fraction=0.3)
        # Would need 16/24 = 67% remote: above the 30% cap.
        task = Task(runtime=10.0, cores=2, memory=24.0)
        assert coordinator.try_place(task) is None
        assert coordinator.total_scavenged == 0

    def test_unplaceable_when_no_lenders(self):
        sim, dc, coordinator = build(n_machines=1, memory=8.0)
        task = Task(runtime=10.0, cores=2, memory=12.0)
        assert coordinator.try_place(task) is None

    def test_scavenging_increases_placeable_work(self):
        """The [118] result: scavenging places work plain fitting cannot."""
        def run(scavenge: bool) -> int:
            sim, dc, coordinator = build(n_machines=4, cores=8, memory=8.0)
            placed = 0
            tasks = [Task(runtime=5.0, cores=1, memory=10.0,
                          name=f"big-{i}") for i in range(3)]
            for task in tasks:
                if scavenge:
                    process = coordinator.try_place(task)
                else:
                    machine = next((m for m in dc.machines()
                                    if m.can_fit(task)), None)
                    process = (dc.execute(task, machine)
                               if machine else None)
                if process is not None:
                    placed += 1
            sim.run(until=1000.0)
            return placed

        assert run(scavenge=False) == 0
        assert run(scavenge=True) >= 2

    def test_multiple_lenders_combine(self):
        sim, dc, coordinator = build(n_machines=3, memory=8.0)
        # 20 GiB: 8 local + 8 + 4 from two lenders (<= 60% remote).
        task = Task(runtime=10.0, cores=2, memory=20.0)
        process = coordinator.try_place(task)
        assert process is not None
        lenders = coordinator.active[0].lenders
        assert len(lenders) == 2
        assert sum(lenders.values()) == pytest.approx(12.0)
        sim.run(until=process)
        assert all(m.memory_used == 0.0 for m in dc.machines())
