"""Unit tests for racks, clusters, and the datacenter execution engine."""

import pytest

from repro.datacenter import (
    Datacenter,
    Machine,
    MachineKind,
    MachineSpec,
    Rack,
    heterogeneous_cluster,
    homogeneous_cluster,
)
from repro.sim import Simulator
from repro.workload import Task, TaskState


def test_homogeneous_cluster_layout():
    cluster = homogeneous_cluster("c", n_machines=20, machines_per_rack=8)
    assert len(cluster) == 20
    assert len(cluster.racks) == 3
    assert cluster.total_cores == 20 * MachineSpec().cores


def test_homogeneous_cluster_validation():
    with pytest.raises(ValueError):
        homogeneous_cluster("c", n_machines=0)
    with pytest.raises(ValueError):
        homogeneous_cluster("c", n_machines=2, machines_per_rack=0)


def test_heterogeneous_cluster_has_mixed_kinds():
    cluster = heterogeneous_cluster("h", n_cpu=4, n_gpu=2, n_fpga=1)
    kinds = {m.spec.kind for m in cluster.machines()}
    assert kinds == {MachineKind.CPU, MachineKind.GPU, MachineKind.FPGA}
    assert len(cluster) == 7


def test_cluster_utilization():
    cluster = homogeneous_cluster("c", n_machines=2,
                                  spec=MachineSpec(cores=4))
    machine = cluster.machines()[0]
    machine.allocate(Task(1.0, cores=4))
    assert cluster.utilization() == pytest.approx(0.5)
    assert cluster.available_cores == 4


def test_rack_totals():
    rack = Rack("r", [Machine("a", MachineSpec(cores=2)),
                      Machine("b", MachineSpec(cores=6))])
    assert rack.total_cores == 8
    assert len(rack) == 2


def test_datacenter_requires_clusters():
    with pytest.raises(ValueError):
        Datacenter(Simulator(), [])


def test_datacenter_executes_task():
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("c", 1,
                                              MachineSpec(cores=4))])
    machine = dc.machines()[0]
    task = Task(runtime=10.0, cores=2)
    process = dc.execute(task, machine)
    result = sim.run(until=process)
    assert result is task
    assert task.state is TaskState.FINISHED
    assert task.finish_time == pytest.approx(10.0)
    assert machine.cores_used == 0
    assert dc.completed_tasks == [task]


def test_datacenter_speed_affects_completion():
    sim = Simulator()
    fast_spec = MachineSpec(cores=4, speed=2.0)
    dc = Datacenter(sim, [homogeneous_cluster("c", 1, fast_spec)])
    task = Task(runtime=10.0)
    sim.run(until=dc.execute(task, dc.machines()[0]))
    assert task.finish_time == pytest.approx(5.0)


def test_datacenter_utilization_tracks_time_average():
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("c", 1, MachineSpec(cores=4))])
    task = Task(runtime=10.0, cores=4)
    dc.execute(task, dc.machines()[0])
    sim.run(until=20.0)
    # Fully busy for 10 s, idle for 10 s -> mean 0.5.
    assert dc.mean_utilization() == pytest.approx(0.5)
    assert dc.utilization() == 0.0


def test_machine_failure_interrupts_running_task():
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("c", 1, MachineSpec(cores=4))])
    machine = dc.machines()[0]
    task = Task(runtime=100.0, cores=2)
    dc.execute(task, machine)

    def failer(sim):
        yield sim.timeout(5.0)
        victims = dc.fail_machine(machine)
        assert victims == [task]

    sim.process(failer(sim))
    sim.run()
    assert task.state is TaskState.FAILED
    assert dc.failed_executions == 1
    assert not machine.available
    dc.repair_machine(machine)
    assert machine.available


def test_interrupt_unknown_task_rejected():
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
    with pytest.raises(KeyError):
        dc.interrupt_task(Task(1.0))


def test_energy_accounting_through_execution():
    sim = Simulator()
    spec = MachineSpec(cores=4, idle_watts=100.0, max_watts=300.0)
    dc = Datacenter(sim, [homogeneous_cluster("c", 1, spec)])
    task = Task(runtime=10.0, cores=4)
    dc.execute(task, dc.machines()[0])
    sim.run(until=10.0)
    # 10 s at 300 W.
    assert dc.total_energy_joules() == pytest.approx(3000.0)


def test_datacenter_as_ecosystem_qualifies():
    sim = Simulator()
    dc = Datacenter(sim, [heterogeneous_cluster("h", n_cpu=2, n_gpu=1)])
    eco = dc.as_ecosystem()
    assert eco.is_ecosystem(), eco.disqualifications()
    assert eco.is_super_distributed()
    assert eco.distribution_depth() == 3
