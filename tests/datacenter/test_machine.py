"""Unit tests for machines: capacity, heterogeneity, power, failures."""

import pytest

from repro.datacenter import Machine, MachineKind, MachineSpec
from repro.workload import Task


def test_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(cores=0)
    with pytest.raises(ValueError):
        MachineSpec(memory=0.0)
    with pytest.raises(ValueError):
        MachineSpec(speed=0.0)
    with pytest.raises(ValueError):
        MachineSpec(idle_watts=300.0, max_watts=200.0)


def test_allocation_bookkeeping():
    machine = Machine("m", MachineSpec(cores=8, memory=16.0))
    task = Task(runtime=10.0, cores=4, memory=8.0)
    assert machine.can_fit(task)
    machine.allocate(task)
    assert machine.cores_used == 4
    assert machine.cores_free == 4
    assert machine.memory_free == pytest.approx(8.0)
    assert machine.utilization == 0.5
    machine.release(task)
    assert machine.cores_used == 0


def test_cannot_overallocate_cores():
    machine = Machine("m", MachineSpec(cores=4, memory=16.0))
    machine.allocate(Task(1.0, cores=3))
    big = Task(1.0, cores=2)
    assert not machine.can_fit(big)
    with pytest.raises(RuntimeError):
        machine.allocate(big)


def test_cannot_overallocate_memory():
    machine = Machine("m", MachineSpec(cores=8, memory=4.0))
    assert not machine.can_fit(Task(1.0, cores=1, memory=8.0))


def test_double_allocation_rejected():
    machine = Machine("m", MachineSpec(cores=8))
    task = Task(1.0)
    machine.allocate(task)
    with pytest.raises(RuntimeError):
        machine.allocate(task)


def test_release_requires_allocation():
    machine = Machine("m")
    with pytest.raises(RuntimeError):
        machine.release(Task(1.0))


def test_speed_scales_runtime():
    gpu = Machine("g", MachineSpec(cores=8, speed=4.0, kind=MachineKind.GPU))
    task = Task(runtime=40.0)
    assert gpu.effective_runtime(task) == pytest.approx(10.0)


def test_failure_evicts_and_blocks():
    machine = Machine("m", MachineSpec(cores=8))
    task = Task(1.0, cores=2)
    machine.allocate(task)
    victims = machine.fail()
    assert victims == [task]
    assert not machine.available
    assert machine.cores_free == 0
    assert not machine.can_fit(Task(1.0))
    machine.repair()
    assert machine.available
    assert machine.cores_free == 8


def test_power_model_linear():
    spec = MachineSpec(cores=4, idle_watts=100.0, max_watts=300.0)
    machine = Machine("m", spec)
    assert machine.power_watts() == pytest.approx(100.0)
    machine.allocate(Task(1.0, cores=2))
    assert machine.power_watts() == pytest.approx(200.0)


def test_power_zero_when_down():
    machine = Machine("m")
    machine.fail()
    assert machine.power_watts() == 0.0


def test_energy_accounting_integrates():
    spec = MachineSpec(cores=4, idle_watts=100.0, max_watts=300.0)
    machine = Machine("m", spec)
    machine.account_energy(10.0)  # 10 s idle at 100 W
    assert machine.energy_joules == pytest.approx(1000.0)
    machine.allocate(Task(1.0, cores=4))
    machine.account_energy(20.0)  # 10 s at full 300 W
    assert machine.energy_joules == pytest.approx(1000.0 + 3000.0)


def test_energy_accounting_rejects_time_travel():
    machine = Machine("m")
    machine.account_energy(10.0)
    with pytest.raises(ValueError):
        machine.account_energy(5.0)
