"""Unit tests for wide-area analytics and secure aggregation (C10)."""

import random

import pytest

from repro.datacenter import (
    QueryResult,
    SiteData,
    WideAreaAnalytics,
    secure_sum,
)


def make_sites(seed=1, n_sites=4, per_site=200):
    rng = random.Random(seed)
    return [SiteData(f"site-{i}",
                     tuple(rng.gauss(50.0 + i, 10.0)
                           for _ in range(per_site)))
            for i in range(n_sites)]


class TestWideAreaAnalytics:
    def test_validation(self):
        with pytest.raises(ValueError):
            WideAreaAnalytics([])
        with pytest.raises(ValueError):
            SiteData("empty", ())
        sites = make_sites(n_sites=2)
        with pytest.raises(ValueError):
            WideAreaAnalytics([sites[0], sites[0]])

    def test_full_transfer_is_exact_and_expensive(self):
        analytics = WideAreaAnalytics(make_sites())
        result = analytics.query_mean("full")
        assert result.relative_error == 0.0
        assert result.bytes_transferred == 4 * 200 * 8

    def test_aggregation_is_exact_and_cheap(self):
        analytics = WideAreaAnalytics(make_sites())
        result = analytics.query_mean("aggregate")
        assert result.relative_error == pytest.approx(0.0, abs=1e-12)
        assert result.bytes_transferred == 4 * 2 * 8
        full = analytics.query_mean("full")
        assert result.bytes_transferred < full.bytes_transferred / 10

    def test_sampling_trades_accuracy_for_traffic(self):
        analytics = WideAreaAnalytics(make_sites(seed=2),
                                      rng=random.Random(3))
        small = analytics.query_mean("sample", sample_fraction=0.05)
        large = analytics.query_mean("sample", sample_fraction=0.5)
        assert small.bytes_transferred < large.bytes_transferred
        # Sampling error is bounded for this well-behaved data.
        assert small.relative_error < 0.2
        assert large.relative_error < 0.1

    def test_sample_fraction_validated(self):
        analytics = WideAreaAnalytics(make_sites())
        with pytest.raises(ValueError):
            analytics.query_mean("sample", sample_fraction=0.0)
        with pytest.raises(ValueError):
            analytics.query_mean("teleport")

    def test_pareto_frontier_sorted_by_traffic(self):
        analytics = WideAreaAnalytics(make_sites(), rng=random.Random(4))
        frontier = analytics.pareto_frontier()
        transfers = [r.bytes_transferred for r in frontier]
        assert transfers == sorted(transfers)
        # Aggregation sits at the cheap end, full at the expensive end.
        assert frontier[0].strategy == "aggregate"
        assert frontier[-1].strategy == "full"

    def test_relative_error_zero_base(self):
        result = QueryResult("x", estimate=0.5, exact=0.0,
                             bytes_transferred=1)
        assert result.relative_error == 0.5


class TestSecureSum:
    def test_total_is_exact(self):
        values = {"a": 10.0, "b": -3.5, "c": 7.25}
        total, published = secure_sum(values, rng=random.Random(5))
        assert total == pytest.approx(sum(values.values()))
        assert set(published) == set(values)

    def test_published_shares_hide_inputs(self):
        values = {"a": 10.0, "b": 20.0, "c": 30.0}
        _, published = secure_sum(values, rng=random.Random(6),
                                  mask_range=1e6)
        # No site's published aggregate equals (or is near) its input.
        for name, value in values.items():
            assert abs(published[name] - value) > 1.0

    def test_needs_two_sites(self):
        with pytest.raises(ValueError):
            secure_sum({"solo": 1.0})

    def test_different_seeds_different_masks_same_total(self):
        values = {"a": 1.0, "b": 2.0}
        total1, pub1 = secure_sum(values, rng=random.Random(1))
        total2, pub2 = secure_sum(values, rng=random.Random(2))
        assert total1 == pytest.approx(total2)
        assert pub1 != pub2
