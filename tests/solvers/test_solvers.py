"""Unit tests for the §3.5 problem-solving toolbox."""

import random

import pytest

from repro.solvers import (
    MM1,
    GeneticAlgorithm,
    GridPathProblem,
    MMc,
    RooflineModel,
    astar,
    ida_star,
    littles_law_holds,
    simulated_annealing,
)


class TestAStar:
    def test_straight_line(self):
        problem = GridPathProblem(5, 5, (0, 0), (4, 0))
        result = astar(problem)
        assert result.found
        assert result.cost == pytest.approx(4.0)
        assert result.path[0] == (0, 0)
        assert result.path[-1] == (4, 0)

    def test_routes_around_obstacles(self):
        wall = [(2, y) for y in range(4)]
        problem = GridPathProblem(5, 5, (0, 0), (4, 0), obstacles=wall)
        result = astar(problem)
        assert result.found
        assert result.cost == pytest.approx(4 + 2 * 4)  # detour over the wall

    def test_unreachable_goal(self):
        wall = [(2, y) for y in range(5)]
        problem = GridPathProblem(5, 5, (0, 0), (4, 0), obstacles=wall)
        result = astar(problem)
        assert not result.found
        assert result.cost == float("inf")

    def test_heuristic_reduces_expansions(self):
        # Goal off the diagonal: Manhattan prunes off-path states (on
        # the corner-to-corner diagonal every state ties at f = 2n-2
        # and the heuristic cannot prune anything).
        problem = GridPathProblem(20, 20, (0, 0), (19, 0))

        class NoHeuristic(GridPathProblem):
            def heuristic(self, state):
                return 0.0

        blind = NoHeuristic(20, 20, (0, 0), (19, 0))
        assert astar(problem).expanded < astar(blind).expanded

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            GridPathProblem(0, 5, (0, 0), (1, 1))
        with pytest.raises(ValueError):
            GridPathProblem(5, 5, (0, 0), (9, 9))
        with pytest.raises(ValueError):
            GridPathProblem(5, 5, (0, 0), (1, 1), obstacles=[(0, 0)])


class TestIDAStar:
    def test_matches_astar_cost(self):
        wall = [(2, y) for y in range(4)]
        problem = GridPathProblem(5, 5, (0, 0), (4, 0), obstacles=wall)
        a = astar(problem)
        b = ida_star(problem)
        assert b.found
        assert b.cost == pytest.approx(a.cost)

    def test_unreachable(self):
        wall = [(1, y) for y in range(3)]
        problem = GridPathProblem(3, 3, (0, 0), (2, 0), obstacles=wall)
        assert not ida_star(problem).found


class TestGeneticAlgorithm:
    def one_max(self, length=24):
        def fitness(genome):
            return sum(genome)

        def crossover(a, b, rng):
            point = rng.randrange(1, len(a))
            return a[:point] + b[point:]

        def mutate(genome, rng):
            index = rng.randrange(len(genome))
            flipped = list(genome)
            flipped[index] = 1 - flipped[index]
            return tuple(flipped)

        rng = random.Random(1)
        population = [tuple(rng.randint(0, 1) for _ in range(length))
                      for _ in range(30)]
        return fitness, crossover, mutate, population

    def test_solves_one_max(self):
        fitness, crossover, mutate, population = self.one_max()
        ga = GeneticAlgorithm(fitness, crossover, mutate,
                              population_size=30, rng=random.Random(2))
        result = ga.run(population, generations=60)
        assert result.best_fitness >= 22  # near-perfect bitstring
        assert result.history[-1] >= result.history[0]

    def test_elitism_monotonic_history(self):
        fitness, crossover, mutate, population = self.one_max()
        ga = GeneticAlgorithm(fitness, crossover, mutate,
                              population_size=30, elite=2,
                              rng=random.Random(3))
        result = ga.run(population, generations=30)
        assert all(b >= a for a, b in zip(result.history,
                                          result.history[1:]))

    def test_validation(self):
        fitness, crossover, mutate, population = self.one_max()
        with pytest.raises(ValueError):
            GeneticAlgorithm(fitness, crossover, mutate, population_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithm(fitness, crossover, mutate, elite=50)
        ga = GeneticAlgorithm(fitness, crossover, mutate)
        with pytest.raises(ValueError):
            ga.run(population, generations=0)
        with pytest.raises(ValueError):
            ga.run(population[:1], generations=5)


class TestSimulatedAnnealing:
    def test_minimizes_quadratic(self):
        def energy(x):
            return (x - 3.0) ** 2

        def neighbor(x, rng):
            return x + rng.gauss(0.0, 0.3)

        best, best_energy = simulated_annealing(
            0.0, energy, neighbor, iterations=4000,
            rng=random.Random(4))
        assert best == pytest.approx(3.0, abs=0.3)
        assert best_energy < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            simulated_annealing(0.0, lambda x: x, lambda x, r: x,
                                initial_temperature=0.0)
        with pytest.raises(ValueError):
            simulated_annealing(0.0, lambda x: x, lambda x, r: x,
                                cooling=1.5)


class TestQueueing:
    def test_mm1_formulas(self):
        queue = MM1(arrival_rate=8.0, service_rate=10.0)
        assert queue.utilization == pytest.approx(0.8)
        assert queue.mean_jobs_in_system == pytest.approx(4.0)
        assert queue.mean_response_time == pytest.approx(0.5)
        assert queue.mean_waiting_time == pytest.approx(0.4)
        assert queue.mean_queue_length == pytest.approx(3.2)

    def test_mm1_littles_law_internal_consistency(self):
        queue = MM1(arrival_rate=3.0, service_rate=5.0)
        assert queue.mean_jobs_in_system == pytest.approx(
            queue.arrival_rate * queue.mean_response_time)

    def test_mm1_stability_required(self):
        with pytest.raises(ValueError):
            MM1(arrival_rate=10.0, service_rate=10.0)

    def test_mmc_reduces_to_mm1(self):
        mm1 = MM1(arrival_rate=4.0, service_rate=10.0)
        mmc = MMc(arrival_rate=4.0, service_rate=10.0, servers=1)
        assert mmc.mean_response_time == pytest.approx(
            mm1.mean_response_time)

    def test_mmc_more_servers_less_waiting(self):
        two = MMc(arrival_rate=8.0, service_rate=5.0, servers=2)
        four = MMc(arrival_rate=8.0, service_rate=5.0, servers=4)
        assert four.mean_waiting_time < two.mean_waiting_time
        assert 0.0 < four.erlang_c < two.erlang_c < 1.0

    def test_mmc_stability(self):
        with pytest.raises(ValueError):
            MMc(arrival_rate=10.0, service_rate=5.0, servers=2)

    def test_littles_law_checker(self):
        assert littles_law_holds(2.0, mean_in_system=1.0,
                                 mean_response=0.5)
        assert not littles_law_holds(2.0, mean_in_system=5.0,
                                     mean_response=0.5)
        with pytest.raises(ValueError):
            littles_law_holds(0.0, 1.0, 1.0)


class TestRoofline:
    def test_validation(self):
        with pytest.raises(ValueError):
            RooflineModel(peak_gflops=0.0, peak_bandwidth=10.0)
        model = RooflineModel(100.0, 50.0)
        with pytest.raises(ValueError):
            model.attainable_gflops(0.0)

    def test_ridge_point_and_regimes(self):
        model = RooflineModel(peak_gflops=100.0, peak_bandwidth=50.0)
        assert model.ridge_point == pytest.approx(2.0)
        assert model.is_memory_bound(0.5)
        assert not model.is_memory_bound(4.0)

    def test_attainable_performance(self):
        model = RooflineModel(peak_gflops=100.0, peak_bandwidth=50.0)
        assert model.attainable_gflops(1.0) == pytest.approx(50.0)
        assert model.attainable_gflops(10.0) == pytest.approx(100.0)

    def test_series_monotone_then_flat(self):
        model = RooflineModel(100.0, 50.0)
        series = model.roofline_series([0.5, 1.0, 2.0, 4.0, 8.0])
        values = [y for _, y in series]
        assert values == sorted(values)
        assert values[-1] == values[-2] == 100.0
