"""Unit tests for workload generators, vicissitude, and fragmentation."""

import random

import pytest

from repro.workload import (
    DEFAULT_PROFILES,
    PoissonArrivals,
    TaskProfile,
    VicissitudeMix,
    VicissitudePhase,
    WorkloadGenerator,
    science_workload,
)


def test_profile_sampling_respects_choices():
    profile = TaskProfile("x", runtime_mean=10.0, cores_choices=(2, 4))
    rng = random.Random(0)
    for _ in range(20):
        task = profile.sample(rng)
        assert task.cores in (2, 4)
        assert task.runtime > 0
        assert task.kind == "x"


def test_phase_validation():
    with pytest.raises(ValueError):
        VicissitudePhase(duration=0.0, weights=(1.0,))
    with pytest.raises(ValueError):
        VicissitudePhase(duration=1.0, weights=())
    with pytest.raises(ValueError):
        VicissitudePhase(duration=1.0, weights=(0.0, 0.0))
    with pytest.raises(ValueError):
        VicissitudePhase(duration=1.0, weights=(-1.0, 2.0))


def test_mix_weight_arity_checked():
    with pytest.raises(ValueError):
        VicissitudeMix(DEFAULT_PROFILES,
                       [VicissitudePhase(1.0, (1.0,))])  # 3 profiles, 1 weight


def test_mix_requires_phases():
    with pytest.raises(ValueError):
        VicissitudeMix(DEFAULT_PROFILES, [])


def test_phase_schedule_cycles():
    profiles = (TaskProfile("a", 1.0), TaskProfile("b", 1.0))
    mix = VicissitudeMix(profiles, [
        VicissitudePhase(10.0, (1.0, 0.0)),
        VicissitudePhase(5.0, (0.0, 1.0)),
    ])
    assert mix.phase_at(3.0).weights == (1.0, 0.0)
    assert mix.phase_at(12.0).weights == (0.0, 1.0)
    assert mix.phase_at(18.0).weights == (1.0, 0.0)  # wrapped around


def test_vicissitude_switches_application_kinds():
    profiles = (TaskProfile("compute", 1.0), TaskProfile("data", 1.0))
    mix = VicissitudeMix(profiles, [
        VicissitudePhase(100.0, (1.0, 0.0)),
        VicissitudePhase(100.0, (0.0, 1.0)),
    ])
    rng = random.Random(1)
    early = {mix.sample(10.0, rng).kind for _ in range(10)}
    late = {mix.sample(150.0, rng).kind for _ in range(10)}
    assert early == {"compute"}
    assert late == {"data"}


def test_generator_validation():
    arrivals = PoissonArrivals(1.0)
    with pytest.raises(ValueError):
        WorkloadGenerator(arrivals, tasks_per_job=0.5)
    with pytest.raises(ValueError):
        WorkloadGenerator(arrivals, fragmentation=-1.0)


def test_generator_produces_time_ordered_jobs():
    generator = WorkloadGenerator(
        PoissonArrivals(0.5, rng=random.Random(1)),
        rng=random.Random(2))
    jobs = generator.generate(horizon=200.0)
    assert jobs
    submits = [j.submit_time for j in jobs]
    assert submits == sorted(submits)
    assert all(len(j) >= 1 for j in jobs)


def test_fragmentation_shrinks_tasks_over_time():
    """Paper [39]: tasks fragment into smaller units over long periods."""
    generator = WorkloadGenerator(
        PoissonArrivals(0.5, rng=random.Random(3)),
        mix=VicissitudeMix.steady((TaskProfile("g", 100.0, 0.1),)),
        tasks_per_job=4.0,
        fragmentation=4.0,
        rng=random.Random(4))
    horizon = 2000.0
    jobs = generator.generate(horizon)
    early = [t.runtime for j in jobs if j.submit_time < horizon * 0.2
             for t in j]
    late = [t.runtime for j in jobs if j.submit_time > horizon * 0.8
            for t in j]
    assert sum(early) / len(early) > 1.8 * (sum(late) / len(late))
    early_sizes = [len(j) for j in jobs if j.submit_time < horizon * 0.2]
    late_sizes = [len(j) for j in jobs if j.submit_time > horizon * 0.8]
    assert (sum(late_sizes) / len(late_sizes)
            > sum(early_sizes) / len(early_sizes))


def test_science_workload_mixes_families():
    workflows = science_workload(n_workflows=6, seed=1)
    assert len(workflows) == 6
    families = {wf.name.split("-")[0] for wf in workflows}
    assert families == {"montage", "ligo", "epigenomics"}
    submits = [wf.submit_time for wf in workflows]
    assert submits == sorted(submits)


def test_science_workload_validation():
    with pytest.raises(ValueError):
        science_workload(n_workflows=0)


def test_generator_determinism():
    def build():
        return WorkloadGenerator(
            PoissonArrivals(0.5, rng=random.Random(9)),
            rng=random.Random(10)).generate(100.0)

    a, b = build(), build()
    assert [len(j) for j in a] == [len(j) for j in b]
    assert [j.submit_time for j in a] == [j.submit_time for j in b]
