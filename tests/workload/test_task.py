"""Unit tests for tasks, jobs and bags-of-tasks."""

import pytest

from repro.workload import BagOfTasks, Job, Task, TaskState


def test_task_validation():
    with pytest.raises(ValueError):
        Task(runtime=-1.0)
    with pytest.raises(ValueError):
        Task(runtime=1.0, cores=0)
    with pytest.raises(ValueError):
        Task(runtime=1.0, memory=-2.0)


def test_task_ids_unique_and_named():
    a, b = Task(1.0), Task(1.0)
    assert a.task_id != b.task_id
    assert a.name.startswith("task-")


def test_task_lifecycle_and_metrics():
    task = Task(runtime=10.0, submit_time=5.0)
    task.start(8.0, machine="m1")
    assert task.state is TaskState.RUNNING
    task.finish(18.0)
    assert task.state is TaskState.FINISHED
    assert task.wait_time == pytest.approx(3.0)
    assert task.response_time == pytest.approx(13.0)
    assert task.slowdown == pytest.approx(1.3)
    assert task.machine == "m1"


def test_task_double_start_rejected():
    task = Task(1.0)
    task.start(0.0)
    with pytest.raises(RuntimeError):
        task.start(1.0)


def test_task_finish_requires_running():
    task = Task(1.0)
    with pytest.raises(RuntimeError):
        task.finish(1.0)


def test_task_metrics_require_progress():
    task = Task(1.0)
    with pytest.raises(RuntimeError):
        _ = task.wait_time
    task.start(0.0)
    with pytest.raises(RuntimeError):
        _ = task.response_time


def test_task_failure_and_retry():
    task = Task(5.0)
    task.start(0.0)
    task.fail(2.0)
    assert task.state is TaskState.FAILED
    task.reset_for_retry()
    assert task.state is TaskState.PENDING
    assert task.start_time is None
    task.start(3.0)
    task.finish(8.0)
    assert task.state is TaskState.FINISHED


def test_retry_requires_failed_state():
    task = Task(1.0)
    with pytest.raises(RuntimeError):
        task.reset_for_retry()


def test_task_self_dependency_rejected():
    task = Task(1.0)
    with pytest.raises(ValueError):
        task.add_dependency(task)


def test_task_eligibility_follows_dependencies():
    dep, task = Task(1.0), Task(1.0)
    task.add_dependency(dep)
    assert not task.is_eligible
    dep.start(0.0)
    dep.finish(1.0)
    assert task.is_eligible


def test_task_deadline_checks():
    task = Task(runtime=5.0, deadline=10.0)
    assert not task.met_deadline  # not finished yet
    task.start(0.0)
    task.finish(9.0)
    assert task.met_deadline
    late = Task(runtime=5.0, deadline=4.0)
    late.start(0.0)
    late.finish(5.0)
    assert not late.met_deadline


def test_task_without_deadline_always_meets_it():
    assert Task(1.0).met_deadline


def test_job_aligns_submit_times():
    job = Job("j", [Task(1.0), Task(2.0)], submit_time=7.0)
    assert all(t.submit_time == 7.0 for t in job)
    late = job.add(Task(3.0))
    assert late.submit_time == 7.0


def test_job_makespan_and_demand():
    tasks = [Task(10.0), Task(4.0)]
    job = Job("j", tasks, submit_time=0.0)
    for i, task in enumerate(tasks):
        task.start(float(i))
        task.finish(float(i) + task.runtime)
    assert job.is_finished
    assert job.makespan == pytest.approx(10.0)
    assert job.total_core_seconds == pytest.approx(14.0)


def test_job_makespan_requires_completion():
    job = Job("j", [Task(1.0)])
    with pytest.raises(RuntimeError):
        _ = job.makespan


def test_bag_of_tasks_rejects_dependencies():
    a = Task(1.0)
    b = Task(1.0)
    b.add_dependency(a)
    with pytest.raises(ValueError):
        BagOfTasks("bot", [a, b])


def test_core_seconds():
    assert Task(10.0, cores=4).core_seconds == 40.0
