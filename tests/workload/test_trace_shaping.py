"""GWF trace shaping: seeded downsampling, time scaling, determinism."""

import random
from pathlib import Path

import pytest

from repro.scenario import (
    ClusterSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.workload import (
    GWFRecord,
    downsample_records,
    read_gwf,
    rescale_records,
)

TRACE = Path(__file__).resolve().parents[2] / "data" / "sample_grid_trace.gwf"


def records(n=20):
    return [GWFRecord(job_id=i, submit_time=10.0 + i, wait_time=float(i % 3),
                      run_time=100.0 + i, n_procs=1 + i % 4)
            for i in range(n)]


class TestDownsample:
    def test_same_seed_selects_the_same_jobs_in_order(self):
        trace = records()
        a = downsample_records(trace, 0.4, random.Random(7))
        b = downsample_records(trace, 0.4, random.Random(7))
        assert a == b
        assert len(a) == 8
        # Original order is preserved (still a valid submit-ordered trace).
        assert [r.job_id for r in a] == sorted(r.job_id for r in a)

    def test_different_seeds_differ_and_fraction_one_keeps_all(self):
        trace = records()
        a = downsample_records(trace, 0.4, random.Random(7))
        b = downsample_records(trace, 0.4, random.Random(8))
        assert a != b
        assert downsample_records(trace, 1.0, random.Random(0)) == trace

    def test_at_least_one_record_survives(self):
        assert len(downsample_records(records(), 0.001,
                                      random.Random(0))) == 1

    def test_fraction_bounds(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="fraction"):
                downsample_records(records(), bad, random.Random(0))


class TestRescale:
    def test_scales_submit_wait_and_runtime_independently(self):
        trace = records(3)
        scaled = rescale_records(trace, time_scale=0.5, runtime_scale=0.1)
        assert scaled[1].submit_time == pytest.approx(5.5)
        assert scaled[1].wait_time == pytest.approx(0.5)
        assert scaled[1].run_time == pytest.approx(10.1)
        # Non-time fields pass through untouched.
        assert scaled[1].job_id == 1 and scaled[1].n_procs == 2

    def test_align_shifts_the_earliest_submit_to_zero(self):
        aligned = rescale_records(records(3), align=True)
        assert aligned[0].submit_time == 0.0
        assert aligned[2].submit_time == pytest.approx(2.0)

    def test_missing_wait_markers_are_preserved(self):
        trace = [GWFRecord(job_id=1, submit_time=5.0, wait_time=-1,
                           run_time=10.0, n_procs=1)]
        assert rescale_records(trace, time_scale=0.5)[0].wait_time == -1

    def test_scale_bounds(self):
        with pytest.raises(ValueError, match="time_scale"):
            rescale_records(records(), time_scale=0.0)
        with pytest.raises(ValueError, match="runtime_scale"):
            rescale_records(records(), runtime_scale=-1.0)


class TestGwfTraceKind:
    """The declarative `gwf-trace` workload over the bundled trace."""

    def spec(self, seed=11):
        return ScenarioSpec(
            name="gwf-replay",
            seed=seed,
            topology=TopologySpec(clusters=(
                ClusterSpec("site", 8, cores=4),)),
            workload=WorkloadSpec("gwf-trace", {
                "path": str(TRACE), "fraction": 0.2,
                "time_scale": 0.01, "runtime_scale": 0.01,
                "align": True, "limit": 40}))

    def test_round_trip_digest_is_byte_identical(self):
        first = self.spec().run()
        again = ScenarioSpec.from_json(self.spec().to_json()).run()
        assert first.digest() == again.digest()
        assert first.tasks_finished > 0

    def test_downsampling_draws_from_the_named_substream(self):
        # A different root seed selects a different sample, so the
        # digests must diverge — the sample is seed-pinned, not fixed.
        assert self.spec(seed=11).run().digest() != \
            self.spec(seed=12).run().digest()
