"""Unit tests for tamper-evident provenance chains (§6.2)."""

import dataclasses

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.scheduling import ClusterScheduler, WorkflowEngine
from repro.sim import Simulator
from repro.workload import (
    ProvenanceChain,
    chain_workflow,
    montage_workflow,
    record_workflow_run,
)


class TestProvenanceChain:
    def test_empty_chain_intact(self):
        chain = ProvenanceChain("pipeline")
        assert chain.is_intact()
        assert len(chain) == 0

    def test_entries_link_hashes(self):
        chain = ProvenanceChain("pipeline")
        first = chain.record("event", {"x": 1})
        second = chain.record("event", {"x": 2})
        assert second.previous_hash == first.entry_hash
        assert chain.head_hash == second.entry_hash
        assert chain.is_intact()

    def test_payload_tampering_detected(self):
        chain = ProvenanceChain("pipeline")
        chain.record("event", {"result": "original"})
        chain.record("event", {"result": "later"})
        entry = chain.entries[0]
        tampered = dataclasses.replace(entry,
                                       payload={"result": "FORGED"})
        chain._entries[0] = tampered
        broken = chain.verify()
        assert 0 in broken
        assert not chain.is_intact()

    def test_removal_detected(self):
        chain = ProvenanceChain("pipeline")
        for i in range(3):
            chain.record("event", {"i": i})
        del chain._entries[1]
        assert not chain.is_intact()

    def test_reordering_detected(self):
        chain = ProvenanceChain("pipeline")
        for i in range(3):
            chain.record("event", {"i": i})
        chain._entries[0], chain._entries[1] = (chain._entries[1],
                                                chain._entries[0])
        assert not chain.is_intact()


class TestWorkflowRecording:
    def run_workflow(self, workflow):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 2, MachineSpec(cores=8, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        engine = WorkflowEngine(sim, scheduler)
        done = engine.submit(workflow)
        sim.run(until=done)
        return workflow

    def test_unfinished_workflow_rejected(self):
        chain = ProvenanceChain("sci")
        with pytest.raises(ValueError):
            record_workflow_run(chain, chain_workflow(length=2))

    def test_records_every_task_plus_summary(self):
        workflow = self.run_workflow(montage_workflow(width=4))
        chain = ProvenanceChain("sci")
        entries = record_workflow_run(chain, workflow)
        assert len(entries) == len(workflow) + 1
        assert entries[-1].kind == "workflow-complete"
        assert entries[-1].payload["tasks"] == len(workflow)
        assert chain.is_intact()

    def test_dependency_lineage_recorded(self):
        workflow = self.run_workflow(chain_workflow(length=3))
        chain = ProvenanceChain("sci")
        record_workflow_run(chain, workflow)
        task_entries = [e for e in chain.entries if e.kind == "task"]
        assert task_entries[0].payload["inputs"] == []
        assert task_entries[1].payload["inputs"] == ["stage-0"]
        assert task_entries[2].payload["inputs"] == ["stage-1"]

    def test_multi_lab_append_and_audit(self):
        """Two labs append runs; the audit still verifies end-to-end."""
        chain = ProvenanceChain("shared")
        for width in (3, 5):
            workflow = self.run_workflow(montage_workflow(width=width))
            record_workflow_run(chain, workflow)
        assert chain.is_intact()
        summaries = [e for e in chain.entries
                     if e.kind == "workflow-complete"]
        assert len(summaries) == 2
