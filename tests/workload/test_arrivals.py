"""Unit tests for arrival processes and burstiness metrics."""

import random

import pytest

from repro.workload import (
    MMPPArrivals,
    PoissonArrivals,
    WeibullArrivals,
    index_of_dispersion,
    peak_to_mean_ratio,
)


def test_poisson_rate_validation():
    with pytest.raises(ValueError):
        PoissonArrivals(rate=0.0)


def test_poisson_mean_rate():
    arrivals = PoissonArrivals(rate=2.0, rng=random.Random(1))
    times = arrivals.arrival_times(horizon=5000.0)
    assert len(times) / 5000.0 == pytest.approx(2.0, rel=0.05)


def test_poisson_times_sorted_within_horizon():
    times = PoissonArrivals(1.0, rng=random.Random(2)).arrival_times(100.0)
    assert times == sorted(times)
    assert all(0 <= t < 100.0 for t in times)


def test_poisson_dispersion_near_one():
    times = PoissonArrivals(5.0, rng=random.Random(3)).arrival_times(2000.0)
    iod = index_of_dispersion(times, horizon=2000.0, bin_width=10.0)
    assert iod == pytest.approx(1.0, abs=0.3)


def test_mmpp_validation():
    with pytest.raises(ValueError):
        MMPPArrivals(0.0, 1.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        MMPPArrivals(1.0, 1.0, 0.0, 1.0)


def test_mmpp_mean_rate_formula():
    mmpp = MMPPArrivals(quiet_rate=1.0, burst_rate=9.0,
                        quiet_duration=30.0, burst_duration=10.0)
    assert mmpp.mean_rate == pytest.approx(3.0)


def test_mmpp_is_burstier_than_poisson():
    horizon = 5000.0
    mmpp = MMPPArrivals(quiet_rate=0.5, burst_rate=20.0,
                        quiet_duration=50.0, burst_duration=5.0,
                        rng=random.Random(4))
    poisson = PoissonArrivals(mmpp.mean_rate, rng=random.Random(4))
    iod_mmpp = index_of_dispersion(mmpp.arrival_times(horizon), horizon, 10.0)
    iod_poisson = index_of_dispersion(poisson.arrival_times(horizon),
                                      horizon, 10.0)
    assert iod_mmpp > 2.0 * iod_poisson


def test_mmpp_peak_to_mean_exceeds_poisson():
    horizon = 5000.0
    mmpp = MMPPArrivals(quiet_rate=0.5, burst_rate=20.0,
                        quiet_duration=50.0, burst_duration=5.0,
                        rng=random.Random(5))
    ptm = peak_to_mean_ratio(mmpp.arrival_times(horizon), horizon, 10.0)
    assert ptm > 3.0


def test_weibull_validation():
    with pytest.raises(ValueError):
        WeibullArrivals(scale=0.0, shape=1.0)
    with pytest.raises(ValueError):
        WeibullArrivals(scale=1.0, shape=-1.0)


def test_weibull_shape_below_one_is_bursty():
    horizon = 3000.0
    bursty = WeibullArrivals(scale=1.0, shape=0.4, rng=random.Random(6))
    regular = WeibullArrivals(scale=1.0, shape=3.0, rng=random.Random(6))
    iod_bursty = index_of_dispersion(bursty.arrival_times(horizon),
                                     horizon, 10.0)
    iod_regular = index_of_dispersion(regular.arrival_times(horizon),
                                      horizon, 10.0)
    assert iod_bursty > iod_regular


def test_metrics_handle_empty_arrivals():
    assert index_of_dispersion([], horizon=10.0, bin_width=1.0) == 0.0
    assert peak_to_mean_ratio([], horizon=10.0, bin_width=1.0) == 0.0


def test_metrics_validate_bin_width():
    with pytest.raises(ValueError):
        index_of_dispersion([1.0], horizon=10.0, bin_width=0.0)


def test_determinism_same_seed():
    a = PoissonArrivals(1.0, rng=random.Random(42)).arrival_times(50.0)
    b = PoissonArrivals(1.0, rng=random.Random(42)).arrival_times(50.0)
    assert a == b
