"""Unit tests for GWF trace reading, writing, and characterization."""

import io

import pytest

from repro.workload import (
    BagOfTasks,
    GWFRecord,
    Task,
    jobs_to_records,
    read_gwf,
    records_to_jobs,
    trace_statistics,
    write_gwf,
)


def sample_records():
    return [
        GWFRecord(1, 0.0, 5.0, 100.0, 2, 2, 4.0, 1, "U1", "UNITARY"),
        GWFRecord(2, 10.0, 0.0, 50.0, 1, 1, 2.0, 1, "U2", "BOT"),
        GWFRecord(3, 20.0, 1.0, 200.0, 4, 4, 8.0, 1, "U1", "UNITARY"),
    ]


def test_round_trip_through_file(tmp_path):
    path = tmp_path / "trace.gwf"
    write_gwf(sample_records(), path, comments=["synthetic test trace"])
    loaded = read_gwf(path)
    assert loaded == sample_records()


def test_round_trip_through_stream():
    buffer = io.StringIO()
    write_gwf(sample_records(), buffer)
    buffer.seek(0)
    assert read_gwf(buffer) == sample_records()


def test_read_from_inline_string():
    text = "# comment\n\n1 0.0 5.0 100.0 2 2 4.0 1 U1 UNITARY\n"
    records = read_gwf(text)
    assert len(records) == 1
    assert records[0].job_id == 1
    assert records[0].run_time == 100.0


def test_malformed_line_rejected():
    with pytest.raises(ValueError):
        GWFRecord.from_line("1 2 3")


def test_comments_and_header_skipped(tmp_path):
    path = tmp_path / "trace.gwf"
    write_gwf(sample_records(), path, comments=["a", "b"])
    content = path.read_text()
    assert content.startswith("# a\n# b\n# JobID")


def test_records_to_jobs():
    jobs = records_to_jobs(sample_records())
    assert len(jobs) == 3
    assert jobs[0].tasks[0].runtime == 100.0
    assert jobs[0].tasks[0].cores == 2
    assert jobs[1].user == "U2"
    assert jobs[2].submit_time == 20.0


def test_jobs_to_records_marks_bots():
    bot = BagOfTasks("b", [Task(5.0), Task(6.0)], user="U9", submit_time=1.0)
    records = jobs_to_records([bot])
    assert len(records) == 2
    assert all(r.job_structure == "BOT" for r in records)
    assert all(r.user_id == "U9" for r in records)


def test_jobs_to_records_wait_time():
    task = Task(5.0)
    job = BagOfTasks("j", [task], submit_time=2.0)
    task.start(4.0)
    task.finish(9.0)
    record = jobs_to_records([job])[0]
    assert record.wait_time == pytest.approx(2.0)


def test_statistics_basics():
    stats = trace_statistics(sample_records())
    assert stats["jobs"] == 3
    assert stats["users"] == 2
    assert stats["total_core_seconds"] == pytest.approx(
        100 * 2 + 50 * 1 + 200 * 4)
    assert stats["mean_runtime"] == pytest.approx(350 / 3)
    assert stats["max_runtime"] == 200.0
    assert stats["bot_fraction"] == pytest.approx(1 / 3)


def test_statistics_dominant_user_share():
    # U1 contributes 200 + 800 = 1000 of 1050 core-seconds.
    stats = trace_statistics(sample_records())
    assert stats["dominant_user_share"] == pytest.approx(1000 / 1050)


def test_statistics_empty_trace_rejected():
    with pytest.raises(ValueError):
        trace_statistics([])


def test_generator_to_trace_round_trip():
    """Synthetic workload -> GWF -> jobs preserves counts and demand."""
    import random

    from repro.workload import PoissonArrivals, WorkloadGenerator

    generator = WorkloadGenerator(
        PoissonArrivals(0.2, rng=random.Random(5)), rng=random.Random(6))
    jobs = generator.generate(horizon=100.0)
    records = jobs_to_records(jobs)
    rebuilt = records_to_jobs(records)
    assert len(rebuilt) == sum(len(j) for j in jobs)
    original_demand = sum(j.total_core_seconds for j in jobs)
    rebuilt_demand = sum(j.total_core_seconds for j in rebuilt)
    assert rebuilt_demand == pytest.approx(original_demand)
