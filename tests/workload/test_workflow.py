"""Unit tests for workflow DAGs and the shape generators."""

import random

import pytest

from repro.workload import (
    Task,
    Workflow,
    chain_workflow,
    epigenomics_workflow,
    fork_join_workflow,
    ligo_workflow,
    montage_workflow,
    random_workflow,
)


def test_add_task_requires_known_dependency():
    wf = Workflow("w")
    outsider = Task(1.0)
    with pytest.raises(ValueError):
        wf.add_task(Task(1.0), dependencies=[outsider])


def test_validate_detects_cycle():
    wf = Workflow("cyclic")
    a = wf.add_task(Task(1.0, name="a"))
    b = wf.add_task(Task(1.0, name="b"), dependencies=[a])
    a.add_dependency(b)  # sneak a cycle in behind the API
    with pytest.raises(ValueError, match="cycle"):
        wf.validate()


def test_levels_of_chain():
    wf = chain_workflow(length=4, runtime=2.0)
    levels = wf.levels()
    assert [len(level) for level in levels] == [1, 1, 1, 1]
    assert wf.depth == 4


def test_critical_path_of_chain_is_total_work():
    wf = chain_workflow(length=5, runtime=3.0)
    assert wf.critical_path_length() == pytest.approx(15.0)


def test_fork_join_structure():
    wf = fork_join_workflow(width=6, runtime=1.0)
    assert len(wf) == 8
    assert wf.depth == 3
    assert len(wf.entry_tasks()) == 1
    assert len(wf.exit_tasks()) == 1
    assert wf.critical_path_length() == pytest.approx(3.0)


def test_montage_shape():
    width = 8
    wf = montage_workflow(width=width, rng=random.Random(1))
    # width projects + (width-1) diffs + concat + width backgrounds + add
    assert len(wf) == width + (width - 1) + 1 + width + 1
    assert len(wf.entry_tasks()) == width
    assert len(wf.exit_tasks()) == 1
    assert wf.depth == 5
    assert all(t.kind == "montage" for t in wf)


def test_montage_width_validated():
    with pytest.raises(ValueError):
        montage_workflow(width=1)


def test_ligo_shape():
    wf = ligo_workflow(branches=3, branch_length=2, rng=random.Random(1))
    # 3*2 pipeline + thinca + 3 trigbanks + thinca-2
    assert len(wf) == 6 + 1 + 3 + 1
    assert len(wf.entry_tasks()) == 3
    assert wf.exit_tasks()[0].name == "thinca-2"


def test_epigenomics_shape():
    wf = epigenomics_workflow(lanes=2, pipeline_length=3, rng=random.Random(1))
    # split + 2*3 pipeline + merge + pileup
    assert len(wf) == 1 + 6 + 1 + 1
    assert len(wf.entry_tasks()) == 1
    assert wf.exit_tasks()[0].name == "pileup"
    assert wf.depth == 1 + 3 + 1 + 1


def test_random_workflow_is_acyclic_and_sized():
    wf = random_workflow(n_tasks=30, edge_probability=0.3,
                         rng=random.Random(7))
    wf.validate()
    assert len(wf) == 30


def test_random_workflow_param_validation():
    with pytest.raises(ValueError):
        random_workflow(n_tasks=0)
    with pytest.raises(ValueError):
        random_workflow(edge_probability=1.5)


def test_topological_walk_respects_dependencies():
    wf = montage_workflow(width=4, rng=random.Random(2))
    seen = set()
    for task in wf.walk_topological():
        assert all(dep in seen for dep in task.dependencies)
        seen.add(task)
    assert len(seen) == len(wf)


def test_generators_respect_submit_time():
    wf = montage_workflow(width=3, submit_time=42.0)
    assert all(t.submit_time == 42.0 for t in wf)


def test_critical_path_bounds_level_sum():
    wf = ligo_workflow(branches=4, branch_length=3, rng=random.Random(3))
    # Critical path is at most the sum of per-level max runtimes.
    per_level_max = sum(max(t.runtime for t in level) for level in wf.levels())
    assert wf.critical_path_length() <= per_level_max + 1e-9
