"""WfFormat importer: mapping fidelity, determinism, and typed errors."""

import json

import pytest

from repro.workload import (
    WfFormatError,
    Workflow,
    load_wfformat,
    scenario_from_wfformat,
    wfformat_workflow,
)


def doc(tasks, files=(), name="test-wf", execution=()):
    """Assemble a minimal WfFormat v1.5 document."""
    return {
        "name": name,
        "schemaVersion": "1.5",
        "workflow": {
            "specification": {
                "tasks": list(tasks),
                "files": [{"id": fid, "sizeInBytes": size}
                          for fid, size in files],
            },
            "execution": {"tasks": list(execution)},
        },
    }


def diamond():
    """a -> (b, c) -> d with a shared file fanned out from a."""
    return doc(
        tasks=[
            {"id": "a", "name": "gen", "parents": [],
             "inputFiles": [], "outputFiles": ["shared"]},
            {"id": "b", "name": "left", "parents": ["a"],
             "inputFiles": ["shared"], "outputFiles": ["left.out"]},
            {"id": "c", "name": "right", "parents": ["a"],
             "inputFiles": ["shared"], "outputFiles": ["right.out"]},
            {"id": "d", "name": "join", "parents": ["b", "c"],
             "inputFiles": ["left.out", "right.out"], "outputFiles": []},
        ],
        files=[("shared", 1e9), ("left.out", 5e8), ("right.out", 0.0)],
        execution=[
            {"id": "a", "runtimeInSeconds": 10.0, "coreCount": 1,
             "memoryInBytes": 2 ** 31},
            {"id": "b", "runtimeInSeconds": 20.0, "coreCount": 2},
            {"id": "c", "runtimeInSeconds": 20.0, "coreCount": 2},
            {"id": "d", "runtimeInSeconds": 5.0, "coreCount": 1},
        ])


class TestCompilation:
    def test_diamond_maps_tasks_files_and_dependencies(self):
        workflow = wfformat_workflow(diamond())
        assert isinstance(workflow, Workflow)
        workflow.validate()
        by_name = {t.name: t for t in workflow.tasks}
        assert set(by_name) == {"a", "b", "c", "d"}
        assert by_name["a"].kind == "gen"
        assert by_name["a"].memory == pytest.approx(2.0)  # bytes -> GiB
        assert by_name["b"].cores == 2
        # Shared file fans out to both branches with its declared size.
        assert by_name["b"].input_files == {"shared": 1e9}
        assert by_name["c"].input_files == {"shared": 1e9}
        # Zero-size files are legal and preserved.
        assert by_name["d"].input_files == {"left.out": 5e8,
                                            "right.out": 0.0}
        assert {d.name for d in by_name["d"].dependencies} == {"b", "c"}

    def test_compilation_order_is_deterministic(self):
        names = [t.name for t in wfformat_workflow(diamond()).tasks]
        assert names == ["a", "b", "c", "d"]
        # Declaration order breaks ties even when parents come last.
        reordered = diamond()
        spec = reordered["workflow"]["specification"]
        spec["tasks"] = list(reversed(spec["tasks"]))
        assert [t.name for t in wfformat_workflow(reordered).tasks] == \
            ["a", "c", "b", "d"]

    def test_runtime_scale_and_defaults(self):
        workflow = wfformat_workflow(diamond(), runtime_scale=0.1)
        by_name = {t.name: t for t in workflow.tasks}
        assert by_name["b"].runtime == pytest.approx(2.0)
        # Tasks without execution data fall back to the defaults.
        bare = doc(tasks=[{"id": "solo"}])
        task = wfformat_workflow(bare, default_runtime=7.0,
                                 default_cores=3).tasks[0]
        assert task.runtime == 7.0 and task.cores == 3
        assert task.kind == "wfformat"

    def test_load_from_json_text_and_path(self, tmp_path):
        document = diamond()
        assert load_wfformat(document) is document
        text = json.dumps(document)
        assert load_wfformat(text)["name"] == "test-wf"
        path = tmp_path / "wf.json"
        path.write_text(text)
        assert len(wfformat_workflow(path)) == 4

    def test_scenario_wrapper_is_self_contained_and_runnable(self):
        spec = scenario_from_wfformat(diamond(), machines=2, cores=2)
        assert spec.scheduler.placement == "data-local"
        rehydrated = spec.from_json(spec.to_json())
        result = rehydrated.run()
        assert result.tasks_finished == 4
        assert result.digest() == spec.run().digest()


class TestErrors:
    def test_unknown_parent_names_the_task(self):
        bad = doc(tasks=[{"id": "x", "parents": ["ghost"]}])
        with pytest.raises(WfFormatError, match="'ghost'") as err:
            wfformat_workflow(bad)
        assert err.value.task_id == "x"

    def test_cycle_names_an_involved_task(self):
        bad = doc(tasks=[{"id": "x", "parents": ["y"]},
                         {"id": "y", "parents": ["x"]}])
        with pytest.raises(WfFormatError, match="cyclic") as err:
            wfformat_workflow(bad)
        assert err.value.task_id == "x"

    def test_negative_file_size_is_rejected(self):
        bad = doc(tasks=[{"id": "x", "inputFiles": ["f"]}],
                  files=[("f", -1.0)])
        with pytest.raises(WfFormatError, match="negative"):
            wfformat_workflow(bad)

    def test_undeclared_file_reference_names_the_task(self):
        bad = doc(tasks=[{"id": "x", "inputFiles": ["mystery"]}])
        with pytest.raises(WfFormatError, match="'mystery'") as err:
            wfformat_workflow(bad)
        assert err.value.task_id == "x"

    def test_duplicate_task_id_is_rejected(self):
        bad = doc(tasks=[{"id": "x"}, {"id": "x"}])
        with pytest.raises(WfFormatError, match="duplicate"):
            wfformat_workflow(bad)

    def test_missing_workflow_section_and_bad_json(self, tmp_path):
        with pytest.raises(WfFormatError, match="workflow"):
            load_wfformat({"name": "nope"})
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(WfFormatError, match="invalid WfFormat JSON"):
            load_wfformat(broken)
        with pytest.raises(WfFormatError, match="cannot read"):
            load_wfformat(tmp_path / "absent.json")

    def test_empty_task_list_is_rejected(self):
        with pytest.raises(WfFormatError, match="no tasks"):
            wfformat_workflow(doc(tasks=[]))
