"""Unit tests for RM-architecture comparison ([131])."""

import random

import pytest

from repro.datacenter import MachineSpec
from repro.scheduling import (
    LeastLoadedRouter,
    MultiClusterDeployment,
    RandomRouter,
    run_architecture,
)
from repro.sim import Simulator
from repro.workload import BagOfTasks, PoissonArrivals, Task, WorkloadGenerator


def make_trace(seed=1, horizon=150.0, rate=0.25):
    generator = WorkloadGenerator(
        PoissonArrivals(rate, rng=random.Random(seed)),
        rng=random.Random(seed + 1))
    return generator.generate(horizon)


class TestDeployment:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MultiClusterDeployment(sim, n_sites=0, machines_per_site=1)

    def test_sites_are_independent_domains(self):
        sim = Simulator()
        deployment = MultiClusterDeployment(
            sim, n_sites=3, machines_per_site=1,
            spec=MachineSpec(cores=4, memory=1e9))
        assert len(deployment.sites) == 3
        job = BagOfTasks("j", [Task(runtime=10.0, cores=2)])
        site = deployment.submit(job, LeastLoadedRouter())
        sim.run(until=100.0)
        assert deployment.completed() == 1
        assert len(site.scheduler.completed) == 1
        others = [s for s in deployment.sites if s is not site]
        assert all(not s.scheduler.completed for s in others)

    def test_load_and_imbalance(self):
        sim = Simulator()
        deployment = MultiClusterDeployment(
            sim, n_sites=2, machines_per_site=1,
            spec=MachineSpec(cores=4, memory=1e9))
        job = BagOfTasks("j", [Task(runtime=100.0, cores=4)])
        deployment.submit(job, LeastLoadedRouter())
        sim.run(until=1.0)
        assert deployment.sites[0].load() == pytest.approx(1.0)
        assert deployment.load_imbalance() == pytest.approx(1.0)


class TestRouters:
    def test_least_loaded_prefers_idle_site(self):
        sim = Simulator()
        deployment = MultiClusterDeployment(
            sim, n_sites=2, machines_per_site=1,
            spec=MachineSpec(cores=4, memory=1e9))
        busy_job = BagOfTasks("busy", [Task(runtime=100.0, cores=4)])
        router = LeastLoadedRouter()
        first = deployment.submit(busy_job, router)
        sim.run(until=1.0)
        second = deployment.submit(
            BagOfTasks("next", [Task(runtime=1.0, cores=1)]), router)
        assert second is not first

    def test_random_router_spreads_eventually(self):
        sim = Simulator()
        deployment = MultiClusterDeployment(
            sim, n_sites=4, machines_per_site=1,
            spec=MachineSpec(cores=16, memory=1e9))
        router = RandomRouter(rng=random.Random(3))
        chosen = {deployment.submit(
            BagOfTasks(f"j{i}", [Task(runtime=1.0)]), router).name
            for i in range(40)}
        assert len(chosen) >= 3


class TestRunArchitecture:
    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            run_architecture("anarchic", make_trace())

    def test_all_architectures_complete_the_trace(self):
        jobs_a, jobs_b, jobs_c = (make_trace(seed=2) for _ in range(3))
        for architecture, jobs in (("centralized", jobs_a),
                                   ("hierarchical", jobs_b),
                                   ("decentralized", jobs_c)):
            stats = run_architecture(architecture, jobs, n_sites=3,
                                     machines_per_site=2,
                                     spec=MachineSpec(cores=16,
                                                      memory=1e9))
            assert stats["completed"] == sum(len(j) for j in jobs)
            assert stats["slowdown_mean"] >= 1.0

    def test_information_hierarchy_orders_performance(self):
        """[131]'s shape: more scheduling knowledge, better slowdown."""
        def run(architecture):
            jobs = make_trace(seed=5, horizon=250.0, rate=0.5)
            return run_architecture(
                architecture, jobs, n_sites=4, machines_per_site=1,
                spec=MachineSpec(cores=16, memory=1e9),
                seed=9)["slowdown_mean"]

        centralized = run("centralized")
        hierarchical = run("hierarchical")
        decentralized = run("decentralized")
        assert centralized <= hierarchical * 1.05
        assert hierarchical < decentralized
