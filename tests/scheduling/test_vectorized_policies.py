"""Property-style equivalence tests for the scheduling fast paths.

The epoch-batched scheduler has two fast-path seams, and both promise
*bit-identical* results to the reference implementations:

- queue ordering: policies with a time-invariant key are kept
  incrementally sorted by :class:`TaskQueue` instead of re-sorted each
  round (``_INCREMENTAL_SORT_KEYS``);
- placement: policies with a vectorized kernel scan the whole fleet's
  :class:`CapacityVectors` in one numpy pass instead of probing
  machines one by one (``vectorized_placement``).

These tests drive both paths against the naive references over
randomized queues and heterogeneous, partially loaded, partially failed
fleets, asserting exact agreement — including name tie-breaks, the
``can_fit`` memory epsilon, and RoundRobin's rotation cursor.  They
also pin the registries themselves: a new policy must either join a
fast path or be listed as a documented fallback, never silently miss
both.
"""

import random

import pytest

from repro.datacenter import Cluster, Machine, MachineKind, MachineSpec, Rack
from repro.datacenter.capacity import CapacityIndex
from repro.scheduling import (
    ORDER_FALLBACKS,
    PLACEMENT_POLICIES,
    QUEUE_POLICIES,
    FairShare,
    RandomOrder,
    RoundRobin,
    incremental_sort_key,
)
from repro.scheduling.policies import (
    _INCREMENTAL_SORT_KEYS,
    _VECTOR_PLACEMENTS,
    vectorized_placement,
)
from repro.scheduling.taskqueue import TaskQueue
from repro.workload import Task

numpy = pytest.importorskip("numpy")


# ---------------------------------------------------------------------------
# Registry exhaustiveness: no policy silently misses its fast path
# ---------------------------------------------------------------------------
class TestRegistries:
    def test_every_queue_policy_is_incremental_or_documented_fallback(self):
        for name, cls in QUEUE_POLICIES.items():
            assert cls in _INCREMENTAL_SORT_KEYS or cls in ORDER_FALLBACKS, (
                f"queue policy {name!r} has neither an incremental sort key "
                "nor an ORDER_FALLBACKS entry — add one or document the "
                "fallback")

    def test_every_placement_policy_has_a_vectorized_kernel(self):
        for name, cls in PLACEMENT_POLICIES.items():
            assert cls in _VECTOR_PLACEMENTS, (
                f"placement policy {name!r} has no vectorized kernel")

    def test_fallbacks_have_no_incremental_key(self):
        for cls in ORDER_FALLBACKS:
            assert incremental_sort_key(cls()) is None

    def test_subclasses_do_not_inherit_fast_paths(self):
        # Subclasses may override order()/select(), so exact-type
        # matching must send them down the reference path.
        class TweakedFCFS(QUEUE_POLICIES["fcfs"]):
            pass

        class TweakedFirstFit(PLACEMENT_POLICIES["first-fit"]):
            pass

        assert incremental_sort_key(TweakedFCFS()) is None
        assert vectorized_placement(TweakedFirstFit()) is None


# ---------------------------------------------------------------------------
# Queue ordering: incremental view == policy.order == sorted(key)
# ---------------------------------------------------------------------------
def make_random_tasks(rng: random.Random, n: int) -> list[Task]:
    """Tasks with deliberate key collisions and missing deadlines."""
    tasks = []
    for i in range(n):
        tasks.append(Task(
            runtime=rng.choice([5.0, 10.0, 10.0, 20.0,
                                round(rng.uniform(1.0, 50.0), 1)]),
            cores=rng.choice([1, 1, 2, 4, 8]),
            memory=rng.choice([1.0, 2.0, 4.0]),
            submit_time=rng.choice([0.0, 1.0, 1.0, 2.0,
                                    round(rng.uniform(0.0, 10.0), 1)]),
            deadline=(None if rng.random() < 0.4
                      else round(rng.uniform(5.0, 100.0), 1)),
            name=f"t{i:03d}"))
    return tasks


class TestQueueOrderEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("policy_name", sorted(
        name for name, cls in QUEUE_POLICIES.items()
        if cls in _INCREMENTAL_SORT_KEYS))
    def test_order_matches_shared_key_and_incremental_queue(
            self, policy_name, seed):
        rng = random.Random(seed)
        tasks = make_random_tasks(rng, 40)
        policy = QUEUE_POLICIES[policy_name]()
        key = incremental_sort_key(policy)
        assert key is not None

        reference = policy.order(list(tasks), now=3.0)
        assert reference == sorted(tasks, key=key)

        # Incremental queue under churn: shuffled arrivals, random
        # removals, late arrivals.
        queue = TaskQueue(key)
        arrivals = list(tasks)
        rng.shuffle(arrivals)
        queue.extend(arrivals[:30])
        for task in rng.sample(arrivals[:30], 10):
            queue.remove(task)
        queue.extend(arrivals[30:])
        assert queue.ordered() == policy.order(list(queue), now=3.0)

    @pytest.mark.parametrize("policy_name", sorted(
        name for name, cls in QUEUE_POLICIES.items()
        if cls in _INCREMENTAL_SORT_KEYS))
    def test_large_rebuild_takes_lexsort_path(self, policy_name):
        # set_key on a deep backlog crosses the numpy-lexsort floor;
        # the rebuilt view must equal a plain re-sort.
        rng = random.Random(99)
        tasks = make_random_tasks(rng, 400)
        policy = QUEUE_POLICIES[policy_name]()
        key = incremental_sort_key(policy)
        queue = TaskQueue()
        queue.extend(tasks)
        queue.set_key(key)
        assert queue.ordered() == policy.order(tasks, now=0.0)

    def test_fair_share_order_uses_its_sort_key(self):
        rng = random.Random(7)
        tasks = make_random_tasks(rng, 20)
        policy = FairShare()
        for i, task in enumerate(tasks):
            policy.register(task, user=f"user{i % 3}")
        assert policy.order(tasks, now=0.0) == sorted(
            tasks, key=policy.sort_key)
        # Charging mutates the key — the documented reason FairShare is
        # a fallback — and order() must follow the mutated key.
        for task in tasks[:7]:
            policy.charge(task)
        assert policy.order(tasks, now=0.0) == sorted(
            tasks, key=policy.sort_key)

    def test_random_order_is_a_seeded_permutation(self):
        tasks = make_random_tasks(random.Random(3), 15)
        a = RandomOrder(random.Random(42)).order(tasks, now=0.0)
        b = RandomOrder(random.Random(42)).order(tasks, now=0.0)
        assert a == b
        assert sorted(a, key=id) == sorted(tasks, key=id)


# ---------------------------------------------------------------------------
# Placement: vectorized kernel == reference select(), step by step
# ---------------------------------------------------------------------------
_SPECS = [
    MachineSpec(cores=16, memory=64.0, speed=1.0, kind=MachineKind.CPU),
    MachineSpec(cores=8, memory=32.0, speed=4.0, kind=MachineKind.GPU,
                idle_watts=150.0, max_watts=500.0, cost_per_hour=4.0),
    MachineSpec(cores=4, memory=16.0, speed=2.0, kind=MachineKind.FPGA,
                idle_watts=40.0, max_watts=120.0, cost_per_hour=2.0),
    MachineSpec(cores=2, memory=8.0, speed=0.5, cost_per_hour=0.25),
    MachineSpec(cores=32, memory=128.0, speed=1.5, cost_per_hour=3.0),
]


def make_fleet(rng: random.Random, n_machines: int,
               tag: str) -> tuple[CapacityIndex, list[Machine]]:
    """A heterogeneous fleet with name order != topology order.

    Reversed name suffixes force key ties to be broken by name rank
    against topology order, which is exactly where a sloppy tie-break
    would diverge from the scalar ``min(..., key=(key, name))``.
    """
    cluster = Cluster(f"fleet-{tag}")
    rack = None
    for i in range(n_machines):
        if i % 4 == 0:
            rack = cluster.add_rack(Rack(f"fleet-{tag}-rack{i // 4}"))
        spec = rng.choice(_SPECS)
        rack.add(Machine(f"fleet-{tag}-m{n_machines - i:03d}", spec))
    index = CapacityIndex([cluster])
    machines = list(index.machines())
    return index, machines


def perturb_fleet(rng: random.Random, machines: list[Machine],
                  fillers: list[tuple[Machine, Task]]) -> None:
    """Randomly load, unload, fail, repair, and reserve memory."""
    action = rng.random()
    if action < 0.45:
        machine = rng.choice(machines)
        filler = Task(runtime=100.0,
                      cores=rng.randint(1, max(1, machine.spec.cores // 2)),
                      memory=round(rng.uniform(0.5, machine.spec.memory / 2),
                                   1),
                      name=f"filler{len(fillers)}")
        if machine.can_fit(filler):
            machine.allocate(filler)
            fillers.append((machine, filler))
    elif action < 0.6 and fillers:
        machine, filler = fillers.pop(rng.randrange(len(fillers)))
        if filler in machine._allocations:
            machine.release(filler)
    elif action < 0.75:
        machine = rng.choice(machines)
        if machine.available:
            machine.fail()
        else:
            machine.repair()
    elif action < 0.85:
        machine = rng.choice(machines)
        key = f"borrow-{rng.randrange(10 ** 6)}"
        amount = round(rng.uniform(0.5, 4.0), 1)
        if amount <= machine.memory_free:
            machine.reserve_memory(key, amount)


def make_probe(rng: random.Random, i: int) -> Task:
    return Task(
        runtime=rng.choice([1.0, 10.0, 10.0, 60.0]),
        cores=rng.choice([1, 1, 2, 4, 8, 16, 64]),  # 64 fits nowhere
        memory=rng.choice([0.5, 1.0, 4.0, 16.0, 60.0, 10_000.0]),
        checkpoint_interval=(None if rng.random() < 0.7
                             else rng.choice([3.0, 7.0])),
        checkpoint_overhead=0.5,
        name=f"probe{i}")


class TestPlacementEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("policy_name", sorted(PLACEMENT_POLICIES))
    def test_kernel_matches_reference_over_perturbed_fleet(
            self, policy_name, seed):
        rng = random.Random(seed)
        index, machines = make_fleet(rng, 24, f"{policy_name}-{seed}")
        reference = PLACEMENT_POLICIES[policy_name]()
        vectorized = PLACEMENT_POLICIES[policy_name]()
        kernel = vectorized_placement(vectorized)
        assert kernel is not None

        fillers: list[tuple[Machine, Task]] = []
        placements = 0
        for i in range(120):
            perturb_fleet(rng, machines, fillers)
            probe = make_probe(rng, i)
            assert index.sync() is not None
            expected = reference.select(probe, index.available_machines())
            got = kernel(vectorized, probe, index)
            assert got is expected, (
                f"{policy_name} step {i}: kernel chose "
                f"{got and got.name}, reference chose "
                f"{expected and expected.name}")
            if isinstance(reference, RoundRobin):
                assert vectorized._next == reference._next
            if expected is not None:
                expected.allocate(probe)
                fillers.append((expected, probe))
                placements += 1
        # The walk must actually exercise both outcomes.
        assert placements > 10
        assert placements < 120

    def test_fit_mask_matches_can_fit_exactly(self):
        rng = random.Random(11)
        index, machines = make_fleet(rng, 16, "mask")
        fillers: list[tuple[Machine, Task]] = []
        for _ in range(30):
            perturb_fleet(rng, machines, fillers)
        vectors = index.sync()
        assert vectors is not None
        for cores, memory in [(1, 0.5), (2, 4.0), (8, 16.0), (4, 10_000.0)]:
            probe = Task(runtime=1.0, cores=cores, memory=memory, name="p")
            mask = vectors.fit_mask(cores, memory)
            assert mask.tolist() == [m.can_fit(probe)
                                     for m in vectors.machines]

    def test_fit_mask_honors_memory_epsilon_boundary(self):
        # can_fit admits memory demands up to free + 1e-12; the
        # vectorized mask must sit on the same boundary.
        machine = Machine("eps-m0", MachineSpec(cores=4, memory=32.0))
        cluster = Cluster("eps", [Rack("eps-r0", [machine])])
        index = CapacityIndex([cluster])
        machine.allocate(Task(runtime=10.0, cores=1, memory=30.5, name="f"))
        vectors = index.sync()
        assert vectors is not None
        exact = Task(runtime=1.0, cores=1, memory=1.5, name="exact")
        over = Task(runtime=1.0, cores=1, memory=1.5 + 1e-9, name="over")
        assert machine.can_fit(exact)
        assert not machine.can_fit(over)
        assert vectors.fit_mask(exact.cores, exact.memory).tolist() == [True]
        assert vectors.fit_mask(over.cores, over.memory).tolist() == [False]
