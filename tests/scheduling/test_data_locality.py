"""Data-aware placement: the DataStore model and the data-local policy.

Covers the transfer-accounting substrate (file residency, stage-in
delays, publish-on-success), the ``data-local`` placement policy's
scalar/vectorized bit-identity when bound to a populated store, and
the headline claim: on a workflow whose stages re-read files produced
elsewhere, data-aware placement strictly beats data-blind first-fit on
total transfer time — deterministically, with pinned digests.
"""

import json
import random
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.datacenter import DataStore, Machine, MachineSpec
from repro.scenario import ScenarioSpec
from repro.scheduling import PLACEMENT_POLICIES
from repro.scheduling.policies import DataLocalFit, vectorized_placement
from repro.workload import Task

from .test_vectorized_policies import make_fleet, make_probe, perturb_fleet

SPEC_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"
LIGO_SPEC = SPEC_DIR / "ligo_small_scenario.json"


# ---------------------------------------------------------------------------
# DataStore semantics
# ---------------------------------------------------------------------------
class TestDataStore:
    def machine(self, name="m0", bandwidth=100.0):
        return Machine(name, MachineSpec(cores=4, memory=16.0,
                                         link_bandwidth=bandwidth))

    def test_stage_in_charges_remote_bytes_over_the_link(self):
        store = DataStore()
        machine = self.machine(bandwidth=100.0)
        task = Task(runtime=1.0, input_files={"a": 300.0, "b": 200.0})
        delay = store.stage_in(task, machine)
        assert delay == pytest.approx(5.0)  # 500 bytes at 100 B/s
        assert store.transfer_bytes == 500.0
        assert store.transfer_seconds == pytest.approx(5.0)
        assert store.holds("m0", "a") and store.holds("m0", "b")

    def test_resident_inputs_are_free_on_restage(self):
        store = DataStore()
        machine = self.machine()
        task = Task(runtime=1.0, input_files={"a": 300.0})
        store.stage_in(task, machine)
        # A retry on the same machine pays nothing (shared-disk model).
        retry = Task(runtime=1.0, input_files={"a": 300.0})
        assert store.stage_in(retry, machine) == 0.0
        assert store.local_bytes == 300.0
        assert store.transfers == 1 and store.stagings == 2

    def test_publish_makes_outputs_local_for_children(self):
        store = DataStore()
        machine = self.machine()
        parent = Task(runtime=1.0, output_files={"out": 400.0})
        store.publish(parent, "m0")
        child = Task(runtime=1.0, input_files={"out": 400.0})
        assert store.remote_bytes(child, "m0") == 0.0
        assert store.remote_bytes(child, "elsewhere") == 400.0
        assert store.stage_in(child, machine) == 0.0

    def test_fileless_tasks_leave_the_store_inert(self):
        store = DataStore()
        task = Task(runtime=1.0)
        assert store.stage_in(task, self.machine()) == 0.0
        store.publish(task, "m0")
        assert store.statistics() == {
            "transfer_seconds": 0.0, "transfer_bytes": 0.0,
            "local_bytes": 0.0, "transfers": 0.0, "stagings": 0.0}


# ---------------------------------------------------------------------------
# Policy: scalar semantics and kernel bit-identity with a bound store
# ---------------------------------------------------------------------------
class TestDataLocalFit:
    def test_registered_alongside_the_other_policies(self):
        assert PLACEMENT_POLICIES["data-local"] is DataLocalFit

    def test_prefers_the_machine_holding_the_inputs(self):
        store = DataStore()
        store.publish(Task(runtime=1.0, output_files={"big": 1e9}), "b")
        policy = DataLocalFit()
        policy.bind_datacenter(SimpleNamespace(data=store))
        machines = [Machine(n, MachineSpec(cores=4, memory=16.0))
                    for n in ("a", "b", "c")]
        task = Task(runtime=1.0, cores=1, input_files={"big": 1e9})
        assert policy.select(task, machines).name == "b"
        # Without declared inputs the tie-break is machine name.
        assert policy.select(Task(runtime=1.0), machines).name == "a"

    @pytest.mark.parametrize("seed", range(3))
    def test_bound_kernel_matches_scalar_over_perturbed_fleet(self, seed):
        pytest.importorskip("numpy")
        rng = random.Random(seed)
        index, machines = make_fleet(rng, 24, f"data-local-{seed}")
        store = DataStore()
        reference = DataLocalFit()
        vectorized = DataLocalFit()
        for policy in (reference, vectorized):
            policy.bind_datacenter(SimpleNamespace(data=store))
        kernel = vectorized_placement(vectorized)
        assert kernel is not None

        files = [f"f{i}" for i in range(12)]
        fillers = []
        for i in range(120):
            perturb_fleet(rng, machines, fillers)
            if rng.random() < 0.5:
                store.publish(
                    Task(runtime=1.0, output_files={
                        rng.choice(files): rng.uniform(1.0, 1e9)}),
                    rng.choice(machines).name)
            probe = make_probe(rng, i)
            if rng.random() < 0.7:
                probe.input_files = {
                    name: rng.uniform(1.0, 1e9)
                    for name in rng.sample(files, rng.randint(1, 4))}
            assert index.sync() is not None
            expected = reference.select(probe, index.available_machines())
            got = kernel(vectorized, probe, index)
            assert got is expected, (
                f"step {i}: kernel chose {got and got.name}, "
                f"scalar chose {expected and expected.name}")
            if expected is not None:
                expected.allocate(probe)
                fillers.append((expected, probe))


# ---------------------------------------------------------------------------
# End to end: data-local beats data-blind FCFS on transfer time
# ---------------------------------------------------------------------------
class TestDataAwareReplay:
    @pytest.fixture(scope="class", name="results")
    def results_fixture(self):
        spec = ScenarioSpec.from_json(LIGO_SPEC.read_text())
        assert spec.scheduler.placement == "data-local"
        blind = spec.override({"scheduler.placement": "first-fit"})
        return {name: s.run()
                for name, s in (("data-local", spec), ("first-fit", blind))}

    def test_data_local_moves_strictly_fewer_bytes(self, results):
        aware = results["data-local"].datacenter
        blind = results["first-fit"].datacenter
        assert (aware["data_transfer_seconds"]
                < blind["data_transfer_seconds"])
        assert aware["data_transfer_bytes"] < blind["data_transfer_bytes"]
        assert aware["data_local_bytes"] > blind["data_local_bytes"]

    def test_transfer_savings_are_pinned(self, results):
        # 100 MB/s links: first-fit ships 2.13 GB, data-local 1.13 GB.
        aware = results["data-local"].datacenter
        blind = results["first-fit"].datacenter
        assert blind["data_transfer_seconds"] == pytest.approx(21.3)
        assert aware["data_transfer_seconds"] == pytest.approx(11.3)
        assert results["data-local"].makespan <= results["first-fit"].makespan

    def test_both_configurations_reproduce_their_digests(self, results):
        spec = ScenarioSpec.from_json(LIGO_SPEC.read_text())
        assert spec.run().digest() == results["data-local"].digest()
        blind = spec.override({"scheduler.placement": "first-fit"})
        assert blind.run().digest() == results["first-fit"].digest()

    def test_all_tasks_finish_under_both_policies(self, results):
        doc = json.loads(
            (SPEC_DIR / "ligo_small.wfformat.json").read_text())
        n = len(doc["workflow"]["specification"]["tasks"])
        for result in results.values():
            assert result.tasks_finished == n
