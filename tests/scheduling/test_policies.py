"""Unit tests for queue-ordering and placement policies."""

import random


from repro.datacenter import Machine, MachineKind, MachineSpec
from repro.scheduling import (
    EDF,
    FCFS,
    LJF,
    PLACEMENT_POLICIES,
    QUEUE_POLICIES,
    SJF,
    BestFit,
    CheapestFit,
    FairShare,
    FastestFit,
    FirstFit,
    GreenestFit,
    RandomOrder,
    RoundRobin,
    SmallestTaskFirst,
    WorstFit,
)
from repro.workload import Task


def make_queue():
    return [
        Task(runtime=30.0, cores=2, submit_time=0.0, name="long-early"),
        Task(runtime=5.0, cores=4, submit_time=1.0, name="short-mid",
             deadline=10.0),
        Task(runtime=15.0, cores=1, submit_time=2.0, name="mid-late",
             deadline=5.0),
    ]


class TestQueuePolicies:
    def test_fcfs_orders_by_submit(self):
        names = [t.name for t in FCFS().order(make_queue(), now=0.0)]
        assert names == ["long-early", "short-mid", "mid-late"]

    def test_sjf_orders_by_runtime(self):
        names = [t.name for t in SJF().order(make_queue(), now=0.0)]
        assert names == ["short-mid", "mid-late", "long-early"]

    def test_ljf_reverses_sjf(self):
        names = [t.name for t in LJF().order(make_queue(), now=0.0)]
        assert names == ["long-early", "mid-late", "short-mid"]

    def test_edf_orders_by_deadline_with_deadlineless_last(self):
        names = [t.name for t in EDF().order(make_queue(), now=0.0)]
        assert names == ["mid-late", "short-mid", "long-early"]

    def test_smallest_first_orders_by_cores(self):
        names = [t.name for t in
                 SmallestTaskFirst().order(make_queue(), now=0.0)]
        assert names == ["mid-late", "long-early", "short-mid"]

    def test_random_order_is_permutation_and_deterministic(self):
        queue = make_queue()
        policy = RandomOrder(rng=random.Random(1))
        a = policy.order(queue, now=0.0)
        assert sorted(t.name for t in a) == sorted(t.name for t in queue)
        policy2 = RandomOrder(rng=random.Random(1))
        assert [t.name for t in policy2.order(queue, 0.0)] == [
            t.name for t in a]

    def test_order_does_not_mutate_queue(self):
        queue = make_queue()
        original = list(queue)
        SJF().order(queue, now=0.0)
        assert queue == original

    def test_fair_share_prefers_underserved_user(self):
        policy = FairShare()
        queue = make_queue()
        policy.register(queue[0], "heavy")
        policy.register(queue[1], "light")
        policy.register(queue[2], "heavy")
        served = Task(runtime=1000.0, cores=4, name="served")
        policy.register(served, "heavy")
        served.start(0.0)
        served.finish(1000.0)
        policy.charge(served)
        names = [t.name for t in policy.order(queue, now=0.0)]
        assert names[0] == "short-mid"  # light user's task jumps the queue

    def test_registry_instantiates_all(self):
        for name, factory in QUEUE_POLICIES.items():
            policy = factory()
            assert policy.name == name
            assert policy.order(make_queue(), 0.0)


def make_machines():
    return [
        Machine("big-busy", MachineSpec(cores=16, memory=64.0)),
        Machine("small", MachineSpec(cores=4, memory=8.0)),
        Machine("gpu", MachineSpec(cores=8, memory=32.0, speed=4.0,
                                   kind=MachineKind.GPU, cost_per_hour=4.0,
                                   idle_watts=150.0, max_watts=500.0)),
    ]


class TestPlacementPolicies:
    def test_first_fit_takes_topology_order(self):
        machines = make_machines()
        chosen = FirstFit().select(Task(1.0, cores=2), machines)
        assert chosen.name == "big-busy"

    def test_first_fit_none_when_nothing_fits(self):
        machines = make_machines()
        assert FirstFit().select(Task(1.0, cores=32), machines) is None

    def test_best_fit_minimizes_leftover(self):
        machines = make_machines()
        chosen = BestFit().select(Task(1.0, cores=3), machines)
        assert chosen.name == "small"  # 1 core left over beats 13 and 5

    def test_worst_fit_maximizes_leftover(self):
        machines = make_machines()
        chosen = WorstFit().select(Task(1.0, cores=3), machines)
        assert chosen.name == "big-busy"

    def test_round_robin_cycles(self):
        machines = make_machines()
        policy = RoundRobin()
        names = [policy.select(Task(1.0, cores=1), machines).name
                 for _ in range(4)]
        assert names == ["big-busy", "small", "gpu", "big-busy"]

    def test_round_robin_skips_unfitting(self):
        machines = make_machines()
        policy = RoundRobin()
        # 10 cores only fits the 16-core machine.
        names = [policy.select(Task(1.0, cores=10), machines).name
                 for _ in range(2)]
        assert names == ["big-busy", "big-busy"]

    def test_fastest_fit_prefers_gpu(self):
        chosen = FastestFit().select(Task(1.0, cores=2), make_machines())
        assert chosen.name == "gpu"

    def test_cheapest_fit_accounts_speed(self):
        # GPU is 4x the price but 4x the speed: equal cost; CPU wins ties
        # by name ordering only if cost ties — make GPU strictly cheaper.
        machines = make_machines()
        task = Task(runtime=8.0, cores=2)
        chosen = CheapestFit().select(task, machines)
        # cpu: 1.0 * 8 = 8; gpu: 4.0 * 2 = 8; tie -> lexicographic name.
        assert chosen.name in ("big-busy", "gpu")
        machines[2].spec = MachineSpec(cores=8, memory=32.0, speed=16.0,
                                       kind=MachineKind.GPU,
                                       cost_per_hour=4.0)
        chosen = CheapestFit().select(task, machines)
        assert chosen.name == "gpu"  # 4.0 * 0.5 = 2 beats 8

    def test_greenest_fit_minimizes_marginal_energy(self):
        machines = make_machines()
        task = Task(runtime=8.0, cores=2)
        chosen = GreenestFit().select(task, machines)
        # cpu big: (250-100)*(2/16)*8 = 150; small: (250-100)*(2/4)*8=600;
        # gpu: (500-150)*(2/8)*2 = 175 -> big-busy wins.
        assert chosen.name == "big-busy"

    def test_busy_machines_excluded(self):
        machines = make_machines()
        machines[0].allocate(Task(1.0, cores=16))
        chosen = FirstFit().select(Task(1.0, cores=8), machines)
        assert chosen.name == "gpu"

    def test_registry_instantiates_all(self):
        for name, factory in PLACEMENT_POLICIES.items():
            policy = factory()
            assert policy.name == name
            assert policy.select(Task(1.0, cores=1), make_machines())
