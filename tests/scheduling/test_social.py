"""Unit tests for socially-aware group scheduling (C5)."""

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.scheduling import ClusterScheduler, FCFS, GroupAwarePolicy, group_response_times
from repro.sim import Simulator
from repro.workload import Task


def test_unregistered_tasks_form_singletons():
    policy = GroupAwarePolicy()
    a, b = Task(1.0), Task(1.0)
    assert policy.group_of(a) != policy.group_of(b)
    policy.register(a, "team")
    assert policy.group_of(a) == "team"


def test_order_prefers_smallest_group():
    policy = GroupAwarePolicy()
    big = [Task(runtime=100.0, cores=2, submit_time=0.0,
                name=f"big-{i}") for i in range(3)]
    small = [Task(runtime=10.0, cores=1, submit_time=1.0,
                  name=f"small-{i}") for i in range(2)]
    policy.register_job_group(big, "big-team")
    policy.register_job_group(small, "small-team")
    ordered = policy.order(big + small, now=0.0)
    # The small group (20 core-seconds) precedes the big one (600).
    assert [t.name for t in ordered[:2]] == ["small-0", "small-1"]


def test_group_members_stay_contiguous():
    policy = GroupAwarePolicy()
    groups = {}
    queue = []
    for g, size in (("a", 3), ("b", 3)):
        tasks = [Task(runtime=10.0, submit_time=float(i), name=f"{g}{i}")
                 for i in range(size)]
        policy.register_job_group(tasks, g)
        groups[g] = tasks
        queue.extend(tasks)
    # Interleave the submission order; ordering must de-interleave.
    queue = [queue[0], queue[3], queue[1], queue[4], queue[2], queue[5]]
    ordered = policy.order(queue, now=0.0)
    labels = [policy.group_of(t) for t in ordered]
    assert labels == sorted(labels, key=lambda g: (g,)) or (
        labels[:3] == [labels[0]] * 3 and labels[3:] == [labels[3]] * 3)


def test_group_response_times_requires_finished():
    task = Task(1.0)
    with pytest.raises(RuntimeError):
        group_response_times({"g": [task]})
    with pytest.raises(ValueError):
        group_response_times({"g": []})


def test_group_aware_beats_fcfs_on_group_response():
    """[108]/[105]: scheduling groups as units improves what the
    group's users perceive — the mean group response time."""

    def run(use_group_policy: bool):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 1, MachineSpec(cores=2, memory=1e9))])
        policy = GroupAwarePolicy() if use_group_policy else FCFS()
        scheduler = ClusterScheduler(sim, dc, queue_policy=policy)
        groups = {}
        # Two small groups interleaved with one large group: FCFS
        # interleaves them, stretching every group's completion.
        for g, size, runtime in (("big", 6, 30.0), ("s1", 2, 10.0),
                                 ("s2", 2, 10.0)):
            tasks = [Task(runtime=runtime, cores=2, submit_time=0.0,
                          name=f"{g}-{i}") for i in range(size)]
            groups[g] = tasks
        interleaved = [groups["big"][0], groups["s1"][0], groups["big"][1],
                       groups["s2"][0], groups["big"][2], groups["s1"][1],
                       groups["big"][3], groups["s2"][1], groups["big"][4],
                       groups["big"][5]]
        if use_group_policy:
            for g, tasks in groups.items():
                policy.register_job_group(tasks, g)
        for task in interleaved:
            scheduler.submit(task)
        sim.run(until=10_000.0)
        responses = group_response_times(groups)
        return sum(responses.values()) / len(responses)

    assert run(use_group_policy=True) < run(use_group_policy=False)
