"""Unit tests for the cluster scheduler, backfilling, and workflow engine."""

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.scheduling import (
    FCFS,
    SJF,
    ClusterScheduler,
    WorkflowEngine,
)
from repro.sim import Simulator
from repro.workload import (
    BagOfTasks,
    Task,
    TaskState,
    chain_workflow,
    fork_join_workflow,
    montage_workflow,
)


def build(cores=4, machines=2, **scheduler_kwargs):
    sim = Simulator()
    dc = Datacenter(sim, [homogeneous_cluster(
        "c", machines, MachineSpec(cores=cores, memory=1e9))])
    scheduler = ClusterScheduler(sim, dc, **scheduler_kwargs)
    return sim, dc, scheduler


def test_single_task_runs_to_completion():
    sim, dc, scheduler = build()
    task = Task(runtime=10.0, cores=2)
    scheduler.submit(task)
    sim.run()
    assert task.state is TaskState.FINISHED
    assert task.finish_time == pytest.approx(10.0)
    assert scheduler.completed == [task]


def test_submit_rejects_running_task():
    sim, dc, scheduler = build()
    task = Task(1.0)
    task.start(0.0)
    with pytest.raises(ValueError):
        scheduler.submit(task)


def test_tasks_queue_when_capacity_exhausted():
    sim, dc, scheduler = build(cores=4, machines=1)
    tasks = [Task(runtime=10.0, cores=4, name=f"t{i}") for i in range(3)]
    for task in tasks:
        scheduler.submit(task)
    sim.run()
    finish_times = sorted(t.finish_time for t in tasks)
    assert finish_times == [pytest.approx(10.0), pytest.approx(20.0),
                            pytest.approx(30.0)]


def test_fcfs_respects_submission_order():
    sim, dc, scheduler = build(cores=4, machines=1,
                               queue_policy=FCFS(), strict_head=True)
    first = Task(runtime=10.0, cores=4, submit_time=0.0, name="first")
    second = Task(runtime=1.0, cores=4, submit_time=0.0, name="second")
    scheduler.submit(first)
    scheduler.submit(second)
    sim.run()
    assert first.finish_time < second.finish_time


def test_sjf_reorders_queue():
    sim, dc, scheduler = build(cores=4, machines=1, queue_policy=SJF())
    blocker = Task(runtime=5.0, cores=4, name="blocker")
    long_task = Task(runtime=20.0, cores=4, name="long")
    short_task = Task(runtime=1.0, cores=4, name="short")
    scheduler.submit(blocker)
    scheduler.submit(long_task)
    scheduler.submit(short_task)
    sim.run()
    assert short_task.start_time < long_task.start_time


def test_strict_head_blocks_later_tasks():
    sim, dc, scheduler = build(cores=4, machines=1, strict_head=True)
    big = Task(runtime=10.0, cores=4, name="big")
    small = Task(runtime=1.0, cores=1, name="small")
    blocker = Task(runtime=5.0, cores=2, name="pre")
    scheduler.submit(blocker)   # occupies 2 cores
    scheduler.submit(big)       # head: needs 4, blocked
    scheduler.submit(small)     # would fit, but strict head blocks it
    sim.run()
    assert small.start_time >= big.start_time


def test_greedy_mode_skips_blocked_head():
    sim, dc, scheduler = build(cores=4, machines=1, strict_head=False)
    blocker = Task(runtime=5.0, cores=2, name="pre")
    big = Task(runtime=10.0, cores=4, name="big")
    small = Task(runtime=1.0, cores=1, name="small")
    scheduler.submit(blocker)
    scheduler.submit(big)
    scheduler.submit(small)
    sim.run()
    assert small.start_time < big.start_time


def test_easy_backfilling_fills_holes_without_delaying_head():
    sim, dc, scheduler = build(cores=4, machines=1, backfilling=True)
    blocker = Task(runtime=10.0, cores=2, submit_time=0.0, name="blocker")
    head = Task(runtime=10.0, cores=4, submit_time=0.0, name="head")
    filler = Task(runtime=5.0, cores=2, submit_time=0.0, name="filler")
    too_long = Task(runtime=50.0, cores=2, submit_time=0.0, name="too-long")
    scheduler.submit(blocker)
    scheduler.submit(head)
    scheduler.submit(filler)
    scheduler.submit(too_long)
    sim.run()
    # Filler (5s <= shadow 10s) backfills immediately.
    assert filler.start_time == pytest.approx(0.0)
    # Head starts exactly at the shadow time: not delayed by backfilling.
    assert head.start_time == pytest.approx(10.0)
    # The 50 s task would have delayed the head; it must wait for it.
    assert too_long.start_time >= head.start_time


def test_backfilling_improves_utilization_over_strict_fcfs():
    def run(backfilling):
        sim, dc, scheduler = build(cores=4, machines=1,
                                   backfilling=backfilling,
                                   strict_head=not backfilling)
        tasks = [Task(runtime=10.0, cores=2, submit_time=0.0),
                 Task(runtime=10.0, cores=4, submit_time=0.0),
                 Task(runtime=9.0, cores=2, submit_time=0.0)]
        for task in tasks:
            scheduler.submit(task)
        sim.run()
        return max(t.finish_time for t in tasks)

    assert run(backfilling=True) < run(backfilling=False)


def test_statistics_shape():
    sim, dc, scheduler = build()
    for _ in range(4):
        scheduler.submit(Task(runtime=5.0, cores=2))
    sim.run()
    stats = scheduler.statistics()
    assert stats["completed"] == 4
    assert stats["wait_mean"] >= 0.0
    assert stats["slowdown_mean"] >= 1.0
    assert scheduler.makespan() > 0


def test_makespan_requires_completions():
    sim, dc, scheduler = build()
    with pytest.raises(RuntimeError):
        scheduler.makespan()


def test_submit_job_only_eligible_tasks():
    sim, dc, scheduler = build()
    bag = BagOfTasks("bag", [Task(5.0), Task(5.0)], submit_time=0.0)
    scheduler.submit_job(bag)
    sim.run()
    assert bag.is_finished


def test_stop_halts_loop():
    sim, dc, scheduler = build()
    scheduler.submit(Task(runtime=5.0))
    sim.run()
    scheduler.stop()
    sim.run()  # drains the stop event without error


class TestWorkflowEngine:
    def test_chain_runs_sequentially(self):
        sim, dc, scheduler = build(cores=4, machines=2)
        engine = WorkflowEngine(sim, scheduler)
        wf = chain_workflow(length=3, runtime=10.0)
        done = engine.submit(wf)
        result = sim.run(until=done)
        assert result is wf
        assert wf.is_finished
        assert wf.makespan == pytest.approx(30.0)

    def test_fork_join_parallelizes(self):
        sim, dc, scheduler = build(cores=8, machines=2)
        engine = WorkflowEngine(sim, scheduler)
        wf = fork_join_workflow(width=8, runtime=10.0)
        done = engine.submit(wf)
        sim.run(until=done)
        # 1 fork + parallel middle (two waves at most) + join.
        assert wf.makespan < 8 * 10.0  # far better than serial
        assert wf.makespan >= 30.0     # fork + >=1 wave + join

    def test_dependencies_never_violated(self):
        sim, dc, scheduler = build(cores=16, machines=2)
        engine = WorkflowEngine(sim, scheduler)
        wf = montage_workflow(width=6)
        done = engine.submit(wf)
        sim.run(until=done)
        for task in wf:
            for dep in task.dependencies:
                assert dep.finish_time <= task.start_time + 1e-9

    def test_double_submission_rejected(self):
        sim, dc, scheduler = build()
        engine = WorkflowEngine(sim, scheduler)
        wf = chain_workflow(length=2)
        engine.submit(wf)
        with pytest.raises(ValueError):
            engine.submit(wf)

    def test_active_workflow_count(self):
        sim, dc, scheduler = build()
        engine = WorkflowEngine(sim, scheduler)
        wf = chain_workflow(length=2, runtime=5.0)
        done = engine.submit(wf)
        assert engine.active_workflows == 1
        sim.run(until=done)
        assert engine.active_workflows == 0
