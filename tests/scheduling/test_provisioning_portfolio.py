"""Unit tests for provisioning policies, the provisioner, portfolio
scheduling, and the Schopf-style reference pipeline."""

import pytest

from repro.datacenter import Datacenter, Machine, MachineSpec, homogeneous_cluster
from repro.scheduling import (
    FCFS,
    SJF,
    ClusterScheduler,
    OnDemandProvisioning,
    PortfolioScheduler,
    Provisioner,
    ProvisioningState,
    ReservedPlusOnDemand,
    SchedulingPipeline,
    SchedulingStage,
    StaticProvisioning,
    estimate_mean_slowdown,
)
from repro.sim import Simulator
from repro.workload import Task


def make_state(queued_cores=0, running_cores=0, total=10, cores_each=4):
    return ProvisioningState(
        time=0.0, queued_tasks=queued_cores, queued_cores=queued_cores,
        running_cores=running_cores, leased_machines=total,
        total_machines=total, cores_per_machine=cores_each)


class TestProvisioningPolicies:
    def test_static_clamps_to_total(self):
        assert StaticProvisioning(20).target_machines(make_state()) == 10
        assert StaticProvisioning(3).target_machines(make_state()) == 3

    def test_static_validation(self):
        with pytest.raises(ValueError):
            StaticProvisioning(-1)

    def test_on_demand_scales_with_demand(self):
        policy = OnDemandProvisioning(min_machines=1, headroom=0.0)
        assert policy.target_machines(make_state(queued_cores=0)) == 1
        assert policy.target_machines(make_state(queued_cores=8)) == 2
        assert policy.target_machines(
            make_state(queued_cores=8, running_cores=8)) == 4

    def test_on_demand_headroom(self):
        policy = OnDemandProvisioning(min_machines=0, headroom=0.5)
        # 8 cores * 1.5 = 12 -> 3 machines of 4 cores.
        assert policy.target_machines(make_state(queued_cores=8)) == 3

    def test_on_demand_validation(self):
        with pytest.raises(ValueError):
            OnDemandProvisioning(min_machines=-1)
        with pytest.raises(ValueError):
            OnDemandProvisioning(headroom=-0.1)

    def test_reserved_plus_on_demand_floor(self):
        policy = ReservedPlusOnDemand(reserved=4)
        assert policy.target_machines(make_state(queued_cores=0)) == 4
        assert policy.target_machines(make_state(queued_cores=40)) == 10

    def test_reserved_validation(self):
        with pytest.raises(ValueError):
            ReservedPlusOnDemand(reserved=-1)


class TestProvisioner:
    def build(self, policy, n_machines=4, **kwargs):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", n_machines, MachineSpec(cores=4, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        provisioner = Provisioner(sim, dc, scheduler, policy,
                                  interval=5.0, **kwargs)
        return sim, dc, scheduler, provisioner

    def test_interval_validation(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
        scheduler = ClusterScheduler(sim, dc)
        with pytest.raises(ValueError):
            Provisioner(sim, dc, scheduler, StaticProvisioning(1),
                        interval=0.0)
        with pytest.raises(ValueError):
            Provisioner(sim, dc, scheduler, StaticProvisioning(1),
                        on_demand_premium=0.5)

    def test_on_demand_releases_idle_machines(self):
        sim, dc, scheduler, provisioner = self.build(
            OnDemandProvisioning(min_machines=1))
        sim.run(until=20.0)
        provisioner.stop()
        leased = sum(1 for m in dc.machines() if m.available)
        assert leased == 1  # idle datacenter shrinks to the minimum

    def test_demand_grows_lease(self):
        sim, dc, scheduler, provisioner = self.build(
            OnDemandProvisioning(min_machines=1))
        sim.run(until=6.0)  # shrink to 1 machine first
        for _ in range(4):
            scheduler.submit(Task(runtime=30.0, cores=4))
        sim.run(until=12.0)  # provisioning tick at t=10 sees the queue
        leased = sum(1 for m in dc.machines() if m.available)
        assert leased == 4
        sim.run(until=200.0)
        assert len(scheduler.completed) == 4

    def test_static_keeps_count(self):
        sim, dc, scheduler, provisioner = self.build(StaticProvisioning(2))
        sim.run(until=20.0)
        provisioner.stop()
        assert sum(1 for m in dc.machines() if m.available) == 2

    def test_cost_accumulates_over_time(self):
        sim, dc, scheduler, provisioner = self.build(
            StaticProvisioning(4), reserved_machines=4)
        sim.run(until=3600.0)  # one hour, 4 reserved machines at $1/h
        provisioner.stop()
        assert provisioner.total_cost() == pytest.approx(4.0, rel=0.05)

    def test_on_demand_premium_raises_cost(self):
        sim, dc, scheduler, provisioner = self.build(
            StaticProvisioning(4), reserved_machines=0,
            on_demand_premium=2.5)
        sim.run(until=3600.0)
        provisioner.stop()
        assert provisioner.total_cost() == pytest.approx(10.0, rel=0.05)

    def test_mean_leased(self):
        sim, dc, scheduler, provisioner = self.build(StaticProvisioning(2))
        sim.run(until=50.0)
        provisioner.stop()
        assert 2.0 <= provisioner.mean_leased() <= 4.0


class TestEstimator:
    def test_empty_queue_scores_one(self):
        assert estimate_mean_slowdown([], 0.0, 8, []) == 1.0

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            estimate_mean_slowdown([], 0.0, 0, [])

    def test_immediate_fit_scores_one(self):
        tasks = [Task(runtime=10.0, cores=2, submit_time=0.0)]
        assert estimate_mean_slowdown(tasks, 0.0, 8, []) == pytest.approx(1.0)

    def test_contention_raises_score(self):
        tasks = [Task(runtime=10.0, cores=8, submit_time=0.0)
                 for _ in range(3)]
        score = estimate_mean_slowdown(tasks, 0.0, 8, [])
        assert score > 1.5

    def test_oversized_task_penalized(self):
        tasks = [Task(runtime=10.0, cores=64, submit_time=0.0)]
        assert estimate_mean_slowdown(tasks, 0.0, 8, []) >= 1e6

    def test_sjf_scores_better_than_ljf_under_contention(self):
        mixed = [Task(runtime=100.0, cores=8, submit_time=0.0),
                 Task(runtime=1.0, cores=8, submit_time=0.0),
                 Task(runtime=1.0, cores=8, submit_time=0.0)]
        sjf_order = sorted(mixed, key=lambda t: t.runtime)
        ljf_order = sorted(mixed, key=lambda t: -t.runtime)
        assert (estimate_mean_slowdown(sjf_order, 0.0, 8, [])
                < estimate_mean_slowdown(ljf_order, 0.0, 8, []))


class TestPortfolioScheduler:
    def test_validation(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 1)])
        scheduler = ClusterScheduler(sim, dc)
        with pytest.raises(ValueError):
            PortfolioScheduler(sim, scheduler, [])
        with pytest.raises(ValueError):
            PortfolioScheduler(sim, scheduler, [FCFS()], interval=0.0)

    def test_selects_sjf_for_skewed_queue(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 1, MachineSpec(cores=8, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        portfolio = PortfolioScheduler(sim, scheduler, [FCFS(), SJF()],
                                       interval=1000.0)
        # A long head followed by many short tasks: SJF clearly wins.
        scheduler.queue.extend(
            [Task(runtime=100.0, cores=8, submit_time=0.0)]
            + [Task(runtime=1.0, cores=8, submit_time=0.0)
               for _ in range(5)])
        winner = portfolio.select()
        assert winner.name == "sjf"
        assert scheduler.queue_policy is winner
        assert portfolio.history[-1][1] == "sjf"

    def test_runs_inside_simulation(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", 1, MachineSpec(cores=8, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        portfolio = PortfolioScheduler(sim, scheduler, [FCFS(), SJF()],
                                       interval=5.0)
        for runtime in (50.0, 1.0, 1.0, 1.0):
            scheduler.submit(Task(runtime=runtime, cores=8))
        sim.run(until=200.0)
        portfolio.stop()
        sim.run()
        assert len(scheduler.completed) == 4
        assert portfolio.history  # at least one selection happened


class TestSchedulingPipeline:
    def make_machines(self):
        return [Machine("a", MachineSpec(cores=4, memory=8.0)),
                Machine("b", MachineSpec(cores=16, memory=64.0))]

    def test_default_pipeline_places_task(self):
        pipeline = SchedulingPipeline()
        decision = pipeline.decide(Task(1.0, cores=2), self.make_machines())
        assert decision.placed
        assert decision.machine.name in ("a", "b")
        assert decision.stages_run[-1] is SchedulingStage.SYSTEM_SELECTION
        assert len(decision.stages_run) == 5

    def test_min_requirement_filtering(self):
        pipeline = SchedulingPipeline()
        decision = pipeline.decide(Task(1.0, cores=8), self.make_machines())
        assert decision.machine.name == "b"

    def test_unplaceable_task(self):
        pipeline = SchedulingPipeline()
        decision = pipeline.decide(Task(1.0, cores=64), self.make_machines())
        assert not decision.placed

    def test_full_lifecycle_runs_all_eleven_stages(self):
        pipeline = SchedulingPipeline()
        decision = pipeline.decide(Task(1.0, cores=2), self.make_machines(),
                                   until=SchedulingStage.CLEANUP)
        assert len(decision.stages_run) == 11

    def test_grafting_a_custom_stage(self):
        pipeline = SchedulingPipeline()

        def pick_biggest(ctx):
            ctx.selected = max(ctx.candidates, key=lambda m: m.spec.cores,
                               default=None)

        pipeline.replace(SchedulingStage.SYSTEM_SELECTION, pick_biggest)
        decision = pipeline.decide(Task(1.0, cores=1), self.make_machines())
        assert decision.machine.name == "b"

    def test_replace_unknown_stage_rejected(self):
        pipeline = SchedulingPipeline()
        with pytest.raises(KeyError):
            pipeline.replace("not-a-stage", lambda ctx: None)
