"""Unit tests for failure models, injection, and availability analysis."""

import random

import pytest

from repro.datacenter import Datacenter, MachineSpec, homogeneous_cluster
from repro.failures import (
    FailureEvent,
    FailureInjector,
    SpaceCorrelatedModel,
    TimeCorrelatedModel,
    failure_correlation_index,
    fleet_availability,
    machine_availability,
    mtbf_mttr,
    peak_concurrent_failures,
)
from repro.scheduling import ClusterScheduler
from repro.sim import RandomStreams, Simulator
from repro.workload import Task, TaskState


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(0.0, ("m",), duration=0.0)
        with pytest.raises(ValueError):
            FailureEvent(0.0, (), duration=1.0)


class TestSpaceCorrelatedModel:
    RACKS = [[f"r{r}-m{i}" for i in range(8)] for r in range(4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceCorrelatedModel(burst_rate=0.0)
        with pytest.raises(ValueError):
            SpaceCorrelatedModel(1.0, group_alpha=0.0)
        with pytest.raises(ValueError):
            SpaceCorrelatedModel(1.0, locality=1.5)
        with pytest.raises(ValueError):
            SpaceCorrelatedModel(1.0).generate(10.0, [])

    def test_events_within_horizon_and_valid(self):
        model = SpaceCorrelatedModel(burst_rate=0.1, rng=random.Random(1))
        events = model.generate(1000.0, self.RACKS)
        assert events
        names = {n for rack in self.RACKS for n in rack}
        for event in events:
            assert 0 <= event.time < 1000.0
            assert set(event.machine_names) <= names
            assert len(set(event.machine_names)) == len(event.machine_names)

    def test_produces_correlated_bursts(self):
        model = SpaceCorrelatedModel(burst_rate=0.1, group_alpha=1.0,
                                     rng=random.Random(2))
        events = model.generate(2000.0, self.RACKS)
        assert failure_correlation_index(events) > 0.2

    def test_locality_concentrates_bursts_in_racks(self):
        model = SpaceCorrelatedModel(burst_rate=0.1, group_alpha=1.0,
                                     locality=1.0, rng=random.Random(3))
        events = model.generate(3000.0, self.RACKS)
        multi = [e for e in events if 1 < len(e.machine_names) <= 8]
        assert multi
        rack_of = {n: r for r, rack in enumerate(self.RACKS) for n in rack}
        same_rack = sum(
            1 for e in multi
            if len({rack_of[n] for n in e.machine_names}) == 1)
        assert same_rack / len(multi) > 0.9

    def test_group_sizes_capped(self):
        model = SpaceCorrelatedModel(burst_rate=0.1, group_alpha=0.5,
                                     max_group=4, rng=random.Random(4))
        events = model.generate(2000.0, self.RACKS)
        assert max(len(e.machine_names) for e in events) <= 4


class TestTimeCorrelatedModel:
    MACHINES = [f"m{i}" for i in range(16)]

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeCorrelatedModel(base_rate=0.0)
        with pytest.raises(ValueError):
            TimeCorrelatedModel(1.0, amplitude=1.5)
        with pytest.raises(ValueError):
            TimeCorrelatedModel(1.0, period=0.0)
        with pytest.raises(ValueError):
            TimeCorrelatedModel(1.0).generate(10.0, [])

    def test_intensity_oscillates(self):
        model = TimeCorrelatedModel(base_rate=1.0, amplitude=0.5,
                                    period=100.0)
        assert model.intensity(25.0) == pytest.approx(1.5)
        assert model.intensity(75.0) == pytest.approx(0.5)

    def test_failures_cluster_at_peak_intensity(self):
        model = TimeCorrelatedModel(base_rate=0.5, amplitude=1.0,
                                    period=100.0, rng=random.Random(5))
        events = model.generate(10000.0, self.MACHINES)
        # First half of each period has intensity >= base; expect most
        # failures there.
        in_peak = sum(1 for e in events if (e.time % 100.0) < 50.0)
        assert in_peak / len(events) > 0.7

    def test_single_machine_events(self):
        model = TimeCorrelatedModel(base_rate=0.1, rng=random.Random(6))
        events = model.generate(1000.0, self.MACHINES)
        assert all(len(e.machine_names) == 1 for e in events)
        assert failure_correlation_index(events) == 0.0


class TestFailureInjector:
    def build(self, events, n_machines=4):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster(
            "c", n_machines, MachineSpec(cores=4, memory=1e9))])
        scheduler = ClusterScheduler(sim, dc)
        injector = FailureInjector(sim, dc, events)
        return sim, dc, scheduler, injector

    def machine_names(self, n=4):
        return [f"c-m{i}" for i in range(n)]

    def test_unknown_machines_rejected(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 2)])
        with pytest.raises(ValueError):
            FailureInjector(sim, dc, [FailureEvent(1.0, ("ghost",), 5.0)])

    def test_failure_kills_running_task_and_repairs(self):
        events = [FailureEvent(5.0, ("c-m0",), 10.0)]
        sim, dc, scheduler, injector = self.build(events, n_machines=1)
        task = Task(runtime=100.0, cores=4)
        scheduler.submit(task)
        sim.run(until=30.0)
        assert task.state is TaskState.FAILED
        assert injector.victim_tasks == 1
        machine = dc.machines()[0]
        assert machine.available  # repaired at t=15
        log = injector.transitions
        assert (5.0, "c-m0", "down") in log
        assert (15.0, "c-m0", "up") in log

    def test_overlapping_failures_repair_last(self):
        events = [FailureEvent(5.0, ("c-m0",), 20.0),
                  FailureEvent(10.0, ("c-m0",), 5.0)]
        sim, dc, scheduler, injector = self.build(events, n_machines=2)
        sim.run(until=100.0)
        downs = [t for t in injector.transitions if t[2] == "down"
                 and t[1] == "c-m0"]
        ups = [t for t in injector.transitions if t[2] == "up"
               and t[1] == "c-m0"]
        assert len(downs) == 1
        assert len(ups) == 1
        assert ups[0][0] == pytest.approx(25.0)  # latest repair wins

    def test_overlapping_failures_stay_down_until_last_repair(self):
        # Hit at 5 for 20s (repair at 25) and again at 10 for 30s
        # (repair at 40): the machine must stay down until 40.
        events = [FailureEvent(5.0, ("c-m0",), 20.0),
                  FailureEvent(10.0, ("c-m0",), 30.0)]
        sim, dc, scheduler, injector = self.build(events, n_machines=2)
        sim.run(until=100.0)
        intervals = injector.downtime_intervals()
        assert intervals["c-m0"] == [(5.0, 40.0)]
        machine = dc.machines()[0]
        assert machine.available

    def test_overlapping_failures_count_victims_exactly_once(self):
        # A task killed by the first hit must not be re-counted when
        # the second, overlapping event arrives on the same machine.
        events = [FailureEvent(5.0, ("c-m0",), 20.0),
                  FailureEvent(10.0, ("c-m0",), 30.0)]
        sim, dc, scheduler, injector = self.build(events, n_machines=1)
        task = Task(runtime=100.0, cores=4)
        scheduler.submit(task)
        sim.run(until=100.0)
        assert task.state is TaskState.FAILED
        assert injector.victim_tasks == 1
        # Per-event log: the first burst took the victim, the second
        # found the machine already down.
        victims_per_event = [len(victims)
                             for _, _, victims in injector.event_log]
        assert victims_per_event == [1, 0]

    def test_event_log_records_victim_tasks(self):
        events = [FailureEvent(5.0, ("c-m0",), 10.0)]
        sim, dc, scheduler, injector = self.build(events, n_machines=1)
        task = Task(runtime=100.0, cores=4)
        scheduler.submit(task)
        sim.run(until=30.0)
        (when, event, victims), = injector.event_log
        assert when == 5.0
        assert event is events[0]
        assert victims == [task]

    def test_jitter_requires_streams(self):
        sim = Simulator()
        dc = Datacenter(sim, [homogeneous_cluster("c", 2)])
        with pytest.raises(ValueError):
            FailureInjector(sim, dc, [], jitter=1.0)
        with pytest.raises(ValueError):
            FailureInjector(sim, dc, [], streams=RandomStreams(0),
                            jitter=-1.0)

    def test_jittered_injection_is_reproducible(self):
        def run_once():
            sim = Simulator()
            dc = Datacenter(sim, [homogeneous_cluster(
                "c", 2, MachineSpec(cores=4))])
            injector = FailureInjector(
                sim, dc, [FailureEvent(5.0, ("c-m0",), 10.0),
                          FailureEvent(7.0, ("c-m1",), 10.0)],
                streams=RandomStreams(11), jitter=4.0)
            sim.run(until=50.0)
            return injector.transitions

        first = run_once()
        assert first == run_once()
        down_times = {name: t for t, name, kind in first if kind == "down"}
        assert 5.0 <= down_times["c-m0"] <= 9.0
        assert 7.0 <= down_times["c-m1"] <= 11.0

    def test_downtime_intervals(self):
        events = [FailureEvent(5.0, ("c-m0",), 10.0),
                  FailureEvent(40.0, ("c-m1",), 5.0)]
        sim, dc, scheduler, injector = self.build(events)
        sim.run(until=100.0)
        intervals = injector.downtime_intervals()
        assert intervals["c-m0"] == [(5.0, 15.0)]
        assert intervals["c-m1"] == [(40.0, 45.0)]
        assert intervals["c-m2"] == []


class TestAvailabilityAnalysis:
    def test_machine_availability(self):
        assert machine_availability([], 100.0) == 1.0
        assert machine_availability([(0.0, 25.0)], 100.0) == 0.75
        with pytest.raises(ValueError):
            machine_availability([], 0.0)

    def test_fleet_availability(self):
        downtime = {"a": [(0.0, 50.0)], "b": []}
        assert fleet_availability(downtime, 100.0) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            fleet_availability({}, 100.0)

    def test_mtbf_mttr(self):
        events = [FailureEvent(10.0, ("a",), 4.0),
                  FailureEvent(50.0, ("b",), 6.0)]
        mtbf, mttr = mtbf_mttr(events, 100.0)
        assert mtbf == 50.0
        assert mttr == 5.0
        assert mtbf_mttr([], 100.0) == (float("inf"), 0.0)

    def test_correlation_index(self):
        events = [FailureEvent(1.0, ("a", "b", "c"), 1.0),
                  FailureEvent(2.0, ("d",), 1.0)]
        assert failure_correlation_index(events) == pytest.approx(0.75)
        assert failure_correlation_index([]) == 0.0

    def test_peak_concurrent(self):
        events = [FailureEvent(0.0, ("a", "b"), 10.0),
                  FailureEvent(5.0, ("c",), 10.0),
                  FailureEvent(20.0, ("d",), 1.0)]
        assert peak_concurrent_failures(events) == 3
        assert peak_concurrent_failures([]) == 0
