"""Sharded execution: config errors, determinism, goldens, CLI.

The sharding determinism contract (docs/ARCHITECTURE.md, "Sharding")
says a spec with a ``shards`` section produces the byte-identical
merged result and fleet telemetry no matter how its per-region event
loops are spread over OS processes, and no matter how tight the
conservative epoch is within its legal range.  These tests pin that
contract three ways: typed :class:`ShardConfigError` for every
structural mistake, worker-count/epoch invariance (including a
hypothesis sweep over random partitions), and a committed golden for
the planet-scale gallery spec.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.federation import fleet_digest
from repro.scenario import (ClusterSpec, ScenarioSpec, ShardLinkSpec,
                            ShardOffloadSpec, ShardPlanSpec, ShardSpec,
                            TopologySpec, WorkloadSpec)
from repro.sim.sharding import (ShardConfigError, ShardedScenarioRuntime,
                                run_sharded)

GOLDEN_PATH = Path(__file__).parent / "goldens" / "sharding.json"
SPEC_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"


def _clusters():
    return (ClusterSpec("west", 3, cores=2, machines_per_rack=3),
            ClusterSpec("east", 3, cores=2, machines_per_rack=3))


def _workload(prefix: str, n_tasks: int = 10) -> WorkloadSpec:
    return WorkloadSpec("uniform-tasks", {
        "n_tasks": n_tasks, "runtime": [4.0, 15.0], "cores": 1,
        "submit": [0.0, 12.0], "prefix": prefix,
        "stream": f"{prefix}load"})


def _sharded_spec(*, offload: bool = True, epoch: float | None = None,
                  slos=None) -> ScenarioSpec:
    """Two busy shards with one wide-area link (and optional offload)."""
    plan = ShardPlanSpec(
        shards=(
            ShardSpec("w", ("west",), workload=_workload("w", 14),
                      offload=(ShardOffloadSpec("e", threshold=0.5)
                               if offload else None)),
            ShardSpec("e", ("east",), workload=_workload("e", 6)),
        ),
        links=(ShardLinkSpec("w", "e", latency=0.5),),
        epoch=epoch)
    return ScenarioSpec(
        name="two-region", seed=42,
        topology=TopologySpec(clusters=_clusters(), datacenter="pair"),
        workload=_workload("base"),
        horizon=400.0, shards=plan, slos=slos)


# ---------------------------------------------------------------------------
# Typed configuration errors
# ---------------------------------------------------------------------------


def test_unknown_datacenter_cluster_rejected():
    plan = ShardPlanSpec(shards=(ShardSpec("w", ("nowhere",)),))
    with pytest.raises(ShardConfigError, match="unknown datacenter"):
        ScenarioSpec(name="bad", seed=1,
                     topology=TopologySpec(clusters=_clusters()),
                     workload=_workload("x"), shards=plan)


def test_unassigned_cluster_rejected():
    plan = ShardPlanSpec(shards=(ShardSpec("w", ("west",)),))
    with pytest.raises(ShardConfigError, match="partition the topology"):
        ScenarioSpec(name="bad", seed=1,
                     topology=TopologySpec(clusters=_clusters()),
                     workload=_workload("x"), shards=plan)


def test_overlapping_shards_rejected():
    with pytest.raises(ShardConfigError, match="overlapping shards"):
        ShardPlanSpec(shards=(ShardSpec("w", ("west",)),
                              ShardSpec("e", ("west", "east"))))


def test_duplicate_shard_names_rejected():
    with pytest.raises(ShardConfigError, match="duplicate shard names"):
        ShardPlanSpec(shards=(ShardSpec("w", ("west",)),
                              ShardSpec("w", ("east",))))


def test_zero_latency_link_rejected():
    with pytest.raises(ShardConfigError, match="zero-latency"):
        ShardLinkSpec("w", "e", latency=0.0)


def test_epoch_beyond_min_latency_rejected():
    with pytest.raises(ShardConfigError, match="exceeds the minimum"):
        ShardPlanSpec(
            shards=(ShardSpec("w", ("west",)), ShardSpec("e", ("east",))),
            links=(ShardLinkSpec("w", "e", latency=0.5),),
            epoch=0.75)


def test_offload_without_link_rejected():
    with pytest.raises(ShardConfigError, match="no link"):
        ShardPlanSpec(
            shards=(ShardSpec("w", ("west",),
                              offload=ShardOffloadSpec("e")),
                    ShardSpec("e", ("east",))))


def test_offload_to_self_rejected():
    with pytest.raises(ShardConfigError, match="offload to itself"):
        ShardPlanSpec(
            shards=(ShardSpec("w", ("west",),
                              offload=ShardOffloadSpec("w")),
                    ShardSpec("e", ("east",))),
            links=(ShardLinkSpec("w", "e", latency=0.5),))


def test_run_sharded_requires_shards_section():
    spec = ScenarioSpec(name="plain", seed=1,
                        topology=TopologySpec(clusters=_clusters()),
                        workload=_workload("x"))
    with pytest.raises(ShardConfigError, match="declares no shards"):
        run_sharded(spec)


def test_sharded_build_rejects_overrides():
    with pytest.raises(ShardConfigError, match="override"):
        _sharded_spec().build(seed=7)


# ---------------------------------------------------------------------------
# Determinism: worker-count and epoch invariance
# ---------------------------------------------------------------------------


def test_spec_roundtrip_preserves_shards_and_fingerprint():
    spec = _sharded_spec(epoch=0.25)
    again = ScenarioSpec.from_json(spec.to_json())
    assert again.shards is not None
    assert again.shards.epoch == 0.25
    assert again.fingerprint() == spec.fingerprint()
    assert again.shards.lookahead() == 0.25


def test_sharded_run_crosses_the_boundary():
    outcome = run_sharded(_sharded_spec())
    coupling = outcome.result.shards["coupling"]
    assert coupling["offloaded"] > 0
    assert coupling["acked"] == coupling["offloaded"]
    assert outcome.result.tasks_finished == outcome.result.tasks_total


def test_worker_count_invariance():
    spec = _sharded_spec()
    baseline = run_sharded(spec, workers=1)
    for workers in (2, 8):
        outcome = run_sharded(spec, workers=workers)
        assert outcome.result.digest() == baseline.result.digest(), (
            f"digest diverged at {workers} workers")


def test_observation_does_not_change_result_bytes():
    spec = _sharded_spec()
    plain = run_sharded(spec, workers=1)
    observed = run_sharded(spec, workers=1, observe=True)
    assert observed.result.to_json() == plain.result.to_json()
    assert observed.telemetry is not None
    assert plain.telemetry is None


def test_fleet_telemetry_identical_across_workers():
    spec = _sharded_spec()
    serial = run_sharded(spec, workers=1, observe=True)
    spread = run_sharded(spec, workers=2, observe=True)
    assert serial.telemetry["runs"] == ["shard-e", "shard-w"]
    assert fleet_digest(serial.telemetry) == fleet_digest(spread.telemetry)


def test_sharded_runtime_supports_validation_tooling():
    """tools/validate_specs.py drives build()/finalize()/tasks as-is."""
    runtime = _sharded_spec().build()
    assert isinstance(runtime, ShardedScenarioRuntime)
    runtime.finalize()
    assert len(runtime.tasks) == 20


@settings(max_examples=5, deadline=None)
@given(partition=st.lists(st.booleans(), min_size=2, max_size=2),
       epoch_fraction=st.floats(min_value=0.1, max_value=1.0))
def test_epoch_and_partition_invariance(partition, epoch_fraction):
    """The simulated physics never depend on the legal epoch choice.

    Conservative coupling guarantees the epoch width (any value in
    ``(0, min link latency]``) only batches message injection — it
    never reorders events — so every per-shard result and every merged
    counter must be a function of the partition alone.  Only the
    coupling record itself (lookahead, epoch count) may differ.
    """
    # Partition the two clusters between the shards; each shard keeps
    # at least its own home cluster when the draw would empty it.
    west_home, east_home = ("w" if partition[0] else "e",
                            "e" if partition[1] else "w")
    if west_home == east_home:
        west_home, east_home = "w", "e"
    owners = {"west": west_home, "east": east_home}
    shards = tuple(
        ShardSpec(name, tuple(c for c, o in owners.items() if o == name),
                  workload=_workload(name, 8))
        for name in ("w", "e"))
    links = (ShardLinkSpec("w", "e", latency=0.5),)
    def build(epoch):
        return ScenarioSpec(
            name="prop", seed=9,
            topology=TopologySpec(clusters=_clusters(),
                                  datacenter="prop"),
            workload=_workload("base"), horizon=400.0,
            shards=ShardPlanSpec(shards=shards, links=links,
                                 epoch=epoch))

    base = run_sharded(build(None)).result
    tight = run_sharded(build(round(0.5 * epoch_fraction, 6))).result
    for name, entry in base.shards["by_shard"].items():
        assert tight.shards["by_shard"][name] == entry
    assert tight.makespan == base.makespan
    assert tight.tasks_finished == base.tasks_finished
    assert tight.datacenter == base.datacenter
    assert (tight.shards["coupling"]["offloaded"]
            == base.shards["coupling"]["offloaded"])


# ---------------------------------------------------------------------------
# Golden: the planet-scale gallery spec is pinned
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", name="golden")
def golden_fixture() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module", name="planet_spec")
def planet_spec_fixture() -> ScenarioSpec:
    return ScenarioSpec.from_json(
        (SPEC_DIR / "planet_scale.json").read_text())


def test_golden_schema(golden):
    assert golden["schema"] == "sharding-goldens/v1"
    assert set(golden) >= {"planet_scale"}


def test_planet_scale_digests_pinned(golden, planet_spec):
    pinned = golden["planet_scale"]
    assert planet_spec.fingerprint() == pinned["fingerprint"]
    outcome = run_sharded(planet_spec, workers=1, observe=True)
    assert outcome.result.digest() == pinned["result"]
    assert fleet_digest(outcome.telemetry) == pinned["fleet"]
    coupling = outcome.result.shards["coupling"]
    assert coupling["epochs"] == pinned["epochs"]
    assert coupling["offloaded"] == pinned["offloaded"]


@pytest.mark.parametrize("workers", [2, 8])
def test_planet_scale_worker_invariance(golden, planet_spec, workers):
    outcome = run_sharded(planet_spec, workers=workers)
    assert outcome.result.digest() == golden["planet_scale"]["result"]


# ---------------------------------------------------------------------------
# CLI: shard config errors exit 2 with one friendly line
# ---------------------------------------------------------------------------


def test_cli_rejects_broken_shard_plan(tmp_path, capsys):
    from repro.__main__ import main
    data = json.loads((SPEC_DIR / "planet_scale.json").read_text())
    data["shards"]["shards"][0]["clusters"] = ["missing"]
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(data))
    assert main(["run", str(bad)]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "ShardConfigError" in err


def test_cli_requires_shards_for_shard_workers(tmp_path, capsys):
    from repro.__main__ import main
    assert main(["run", str(SPEC_DIR / "chaos_baseline.json"),
                 "--shard-workers", "2"]) == 2
    assert "declares no shards" in capsys.readouterr().err
