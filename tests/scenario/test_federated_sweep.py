"""Federated sweep observation: worker capture, merge determinism.

The acceptance contract of the federation plane, pinned three ways:

- the same ≥4-point grid run serially, on 2 workers, and on 8 workers
  must produce a **byte-identical merged telemetry snapshot** (same
  SHA-256 fleet digest, pinned in ``goldens/federation.json``);
- turning observation on must not change a single result byte — the
  observed report minus its ``telemetry`` section equals the
  unobserved report exactly;
- a spec that *declares* its own observer/SLOs keeps its profile in
  the result under federated capture, byte-identical to a plain run.
"""

import json
from pathlib import Path

import pytest

from repro.observability.federation import (
    TelemetrySnapshot,
    fleet_digest,
)
from repro.scenario import SweepReport, SweepRunner
from repro.scenario.sweep import run_spec_observed

from .conftest import full_spec, small_spec

GOLDEN_PATH = Path(__file__).parent / "goldens" / "federation.json"
SEEDS = [1, 2, 3, 4]


@pytest.fixture(scope="module", name="golden")
def golden_fixture() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def observed_report(workers: int) -> "SweepReport":
    return SweepRunner(small_spec(), workers=workers,
                       observe=True).sweep(seeds=SEEDS)


class TestMergedSnapshotDeterminism:
    def test_serial_two_and_eight_workers_digest_identically(self, golden):
        digests = set()
        for workers in (1, 2, 8):
            report = observed_report(workers)
            assert report.telemetry is not None
            assert report.telemetry["runs"] == [
                f"point-{i:05d}" for i in range(len(SEEDS))]
            digests.add(fleet_digest(report.telemetry))
        assert digests == {golden["fleet_digest"]}

    def test_observed_report_digest_pinned(self, golden):
        assert observed_report(1).digest() == golden["report_digest"]

    def test_report_roundtrip_preserves_telemetry(self):
        report = observed_report(1)
        clone = SweepReport.from_json(report.to_json())
        assert clone.telemetry == report.telemetry
        assert clone.digest() == report.digest()


class TestResultsUnchangedByObservation:
    def test_observed_minus_telemetry_equals_unobserved(self):
        observed = observed_report(1).to_dict()
        observed.pop("telemetry")
        unobserved = SweepRunner(small_spec(), workers=1,
                                 observe=False).sweep(seeds=SEEDS)
        assert observed == unobserved.to_dict()

    def test_unobserved_report_carries_no_telemetry_key(self):
        report = SweepRunner(small_spec(), workers=1).sweep(seeds=SEEDS)
        assert report.telemetry is None
        assert "telemetry" not in report.to_dict()

    def test_declared_observer_spec_keeps_profile_in_result(self):
        """full_spec declares SLOs: its result must match a plain run."""
        spec = full_spec()
        result_json, telemetry_json = run_spec_observed(
            spec.to_json(), "point-00000")
        assert result_json == spec.run().to_json()
        snapshot = TelemetrySnapshot.from_json(telemetry_json)
        assert snapshot.fingerprint == spec.fingerprint()
        assert snapshot.spans["total"] > 0


class TestWorkerCapture:
    def test_run_ids_are_causal_grid_indexes(self):
        report = observed_report(2)
        by_run = report.telemetry["spans"]["by_run"]
        assert list(by_run) == sorted(by_run)
        assert set(report.telemetry["runs"]) == set(by_run)

    def test_fleet_counters_sum_over_runs(self):
        report = observed_report(1)
        per_run_total = 0.0
        for index, point in enumerate(report.points):
            _, telemetry_json = run_spec_observed(
                SweepRunner(small_spec()).grid(
                    seeds=SEEDS)[index].spec.to_json(),
                f"point-{index:05d}")
            snapshot = TelemetrySnapshot.from_json(telemetry_json)
            per_run_total += snapshot.metrics["counters"][
                "scheduler.tasks_completed"]
        merged = report.telemetry["metrics"]["counters"]
        assert merged["scheduler.tasks_completed"] == per_run_total
