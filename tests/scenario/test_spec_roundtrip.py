"""Spec serialization: JSON round-trips preserve identity and outcome."""

import dataclasses
import json

import pytest

from repro.scenario import (FAILURE_KINDS, WORKLOAD_KINDS, ClusterSpec,
                            FailureSpec, ScenarioSpec, TopologySpec,
                            WorkloadSpec)


def test_roundtrip_equality(full_spec):
    rehydrated = ScenarioSpec.from_json(full_spec.to_json())
    assert rehydrated == full_spec
    assert rehydrated.fingerprint() == full_spec.fingerprint()


def test_roundtrip_run_digest_identical(full_spec):
    # Satellite: a spec run directly and a spec run after a JSON
    # round-trip produce byte-identical results — including the chaos
    # summary and the SLO/alert records.
    direct = full_spec.run()
    rehydrated = ScenarioSpec.from_json(full_spec.to_json()).run()
    assert direct.chaos is not None
    assert direct.slo_report is not None
    assert direct.alerts is not None
    assert rehydrated.to_json() == direct.to_json()
    assert rehydrated.digest() == direct.digest()


def test_optional_sections_roundtrip_as_none(small_spec):
    data = small_spec.to_dict()
    for key in ("autoscaler", "failures", "retries", "checkpoints",
                "hedging", "shedding", "slos"):
        assert data[key] is None
    assert ScenarioSpec.from_dict(data) == small_spec


def test_to_json_is_deterministic(full_spec):
    assert full_spec.to_json() == full_spec.to_json()
    # Canonical ordering: keys sorted at every level.
    data = json.loads(full_spec.to_json())
    assert list(data) == sorted(data)


def test_fingerprint_tracks_content(small_spec):
    assert small_spec.fingerprint() != \
        small_spec.with_seed(small_spec.seed + 1).fingerprint()
    assert small_spec.fingerprint() == \
        ScenarioSpec.from_json(small_spec.to_json()).fingerprint()
    assert len(small_spec.fingerprint()) == 16


def test_fingerprint_uses_recipe_scheme(small_spec):
    recipe = small_spec.recipe()
    assert recipe.name == small_spec.name
    assert recipe.seed == small_spec.seed
    assert recipe.parameters == small_spec.to_dict()
    assert small_spec.fingerprint() == recipe.fingerprint()


def test_unknown_schema_rejected(small_spec):
    data = small_spec.to_dict()
    data["schema"] = "scenario-spec/v999"
    with pytest.raises(ValueError, match="unsupported scenario schema"):
        ScenarioSpec.from_dict(data)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown workload kind"):
        WorkloadSpec("no-such-kind", {})
    with pytest.raises(ValueError, match="unknown failure kind"):
        FailureSpec("no-such-kind", {})
    assert "uniform-tasks" in WORKLOAD_KINDS
    assert "sampled-bursts" in FAILURE_KINDS


def test_specs_are_frozen(small_spec):
    with pytest.raises(dataclasses.FrozenInstanceError):
        small_spec.seed = 99


def test_override_dotted_paths(small_spec):
    derived = small_spec.override({"scheduler.queue": "sjf",
                                   "workload.params.n_tasks": 6,
                                   "horizon": 99.0})
    assert derived.scheduler.queue == "sjf"
    assert derived.workload.params["n_tasks"] == 6
    assert derived.horizon == 99.0
    # The base is untouched.
    assert small_spec.scheduler.queue == "fcfs"


def test_override_scale_axis(small_spec):
    doubled = small_spec.override({"scale": 2.0})
    assert doubled.topology.clusters[0].machines == 8
    floored = small_spec.override({"scale": 0.01})
    assert floored.topology.clusters[0].machines == 1


def test_override_bad_path_raises(small_spec):
    with pytest.raises(KeyError, match="does not resolve"):
        small_spec.override({"workload.nope.deeper": 1})


def test_validation_errors():
    topology = TopologySpec(clusters=(ClusterSpec("c", 2),))
    workload = WorkloadSpec("uniform-tasks", {"n_tasks": 1,
                                              "runtime": 5.0})
    with pytest.raises(ValueError, match="non-empty name"):
        ScenarioSpec(name="", topology=topology, workload=workload)
    with pytest.raises(ValueError, match="horizon"):
        ScenarioSpec(name="x", topology=topology, workload=workload,
                     horizon=0.0)
    with pytest.raises(ValueError, match="duration"):
        ScenarioSpec(name="x", topology=topology, workload=workload,
                     duration=-1.0)
