"""Golden-pinned scenario digests: the kernel's determinism contract.

The committed golden (``goldens/scenario.json``) pins spec
fingerprints, single-run result digests, and a 2x2 sweep-report digest.
A mismatch here means the kernel's composition order, a builder's RNG
draw order, or the canonical serialization changed — all of which are
breaking changes to the reproducibility contract and must be called
out explicitly (and the golden regenerated) rather than slipped in.
"""

import json
from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec, sweep

from .conftest import full_spec, small_spec

GOLDEN_PATH = Path(__file__).parent / "goldens" / "scenario.json"
SPEC_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"


@pytest.fixture(scope="module", name="golden")
def golden_fixture() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_schema(golden):
    assert golden["schema"] == "scenario-goldens/v1"
    assert set(golden) >= {"full", "small", "sweep",
                           "chaos_baseline_spec"}


def test_full_spec_digest_pinned(golden):
    spec = full_spec()
    assert spec.fingerprint() == golden["full"]["fingerprint"]
    assert spec.run().digest() == golden["full"]["result"]


def test_small_spec_digest_pinned(golden):
    spec = small_spec()
    assert spec.fingerprint() == golden["small"]["fingerprint"]
    assert spec.run().digest() == golden["small"]["result"]


def test_sweep_digest_pinned_serial_and_parallel(golden):
    grid = golden["sweep"]["grid"]
    serial = sweep(small_spec(), workers=1, **grid)
    assert serial.digest() == golden["sweep"]["digest"]
    parallel = sweep(small_spec(), workers=2, **grid)
    assert parallel.digest() == golden["sweep"]["digest"]


def test_committed_spec_file_digest_pinned(golden):
    spec = ScenarioSpec.from_json(
        (SPEC_DIR / "chaos_baseline.json").read_text())
    pinned = golden["chaos_baseline_spec"]
    assert spec.fingerprint() == pinned["fingerprint"]
    assert spec.run().digest() == pinned["result"]
