"""Golden-pinned WfFormat gallery replays, end to end through the CLI.

Every committed WfFormat instance must run via its compiled scenario
spec — ``python -m repro run <spec.json>`` — and reproduce the digest
pinned in ``goldens/wfformat.json``.  A mismatch means the importer's
compilation order, the data-transfer model, the ``data-local`` policy,
or the kernel's composition changed behaviorally; regenerate the
golden only for an intentional, called-out contract change.
"""

import io
import json
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.scenario import ScenarioSpec

GOLDEN_PATH = Path(__file__).parent / "goldens" / "wfformat.json"
SPEC_DIR = Path(__file__).resolve().parents[2] / "examples" / "specs"


@pytest.fixture(scope="module", name="golden")
def golden_fixture() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_every_compiled_gallery_spec(golden):
    on_disk = {p.name for p in SPEC_DIR.glob("*_scenario.json")}
    assert on_disk == set(golden["specs"])


@pytest.mark.parametrize("name", sorted(
    json.loads(GOLDEN_PATH.read_text())["specs"]))
def test_gallery_spec_digest_pinned(golden, name):
    pinned = golden["specs"][name]
    spec = ScenarioSpec.from_json((SPEC_DIR / name).read_text())
    assert spec.fingerprint() == pinned["fingerprint"]
    result = spec.run()
    assert result.digest() == pinned["result"]
    assert result.tasks_finished == result.tasks_total == pinned["tasks"]


def test_montage_runs_end_to_end_via_the_cli(golden):
    pinned = golden["specs"]["montage_small_scenario.json"]
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(["run", str(SPEC_DIR / "montage_small_scenario.json")])
    assert code == 0, err.getvalue()
    text = out.getvalue()
    assert f"digest: {pinned['result']}" in text
    assert f"fingerprint: {pinned['fingerprint']}" in text
    assert "datacenter_data_transfer_seconds" in text
