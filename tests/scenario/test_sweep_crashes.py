"""Sweep worker-failure hardening: retries, gaps, and determinism.

The contract under test: a sweep point whose worker crashes (raising,
or dying outright) is retried deterministically on a fresh worker, and
a retried sweep's report digest is byte-identical to a clean run's —
because fault injection lives in the runner, never in the specs.
Points that fail beyond the retry allowance land in
``SweepReport.failed`` with explicit gap accounting instead of
aborting the merge.
"""

import pytest

from repro.scenario import ScenarioSpec, SweepReport, SweepRunner

from .conftest import small_spec

SEEDS = (1, 2)


def clean_report() -> SweepReport:
    return SweepRunner(small_spec()).sweep(seeds=SEEDS)


class TestCrashRetryDeterminism:
    def test_injected_crash_retries_to_identical_digest(self):
        crashy = SweepRunner(small_spec(), crash_plan={0: 1})
        report = crashy.sweep(seeds=SEEDS)
        assert report.complete
        assert report.digest() == clean_report().digest()

    def test_every_point_crashing_once_still_matches(self):
        crashy = SweepRunner(small_spec(),
                             crash_plan={0: 1, 1: 1})
        report = crashy.sweep(seeds=SEEDS)
        assert report.complete
        assert report.digest() == clean_report().digest()

    def test_real_worker_death_in_parallel_pool(self):
        """crash_plan -1 kills the worker process with os._exit."""
        crashy = SweepRunner(small_spec(), workers=2,
                             crash_plan={1: -1})
        report = crashy.sweep(seeds=SEEDS)
        assert report.complete
        assert report.digest() == clean_report().digest()


class TestGapAccounting:
    def test_exhausted_retries_become_gap_records(self):
        runner = SweepRunner(small_spec(), retries=1,
                             crash_plan={0: 5})
        report = runner.sweep(seeds=SEEDS)
        assert not report.complete
        assert report.failed_indexes() == {0}
        record = report.failed[0]
        assert record["index"] == 0
        assert record["attempts"] == 2
        assert "crash" in record["error"].lower()
        assert record["fingerprint"]
        # rows() only tabulates completed points.
        assert [label for label, _ in report.rows()] == ["seed=2"]

    def test_no_retries_fails_fast(self):
        runner = SweepRunner(small_spec(), retries=0,
                             crash_plan={0: 1})
        report = runner.sweep(seeds=SEEDS)
        assert not report.complete
        assert report.failed[0]["attempts"] == 1

    def test_failed_report_round_trips(self):
        runner = SweepRunner(small_spec(), retries=0,
                             crash_plan={0: 1})
        report = runner.sweep(seeds=SEEDS)
        clone = SweepReport.from_json(report.to_json())
        assert clone.digest() == report.digest()
        assert clone.failed == report.failed

    def test_clean_report_serializes_without_failed_key(self):
        """Golden preservation: clean sweeps keep their exact bytes."""
        assert "failed" not in clean_report().to_dict()

    def test_assemble_requires_outcome_or_gap(self):
        runner = SweepRunner(small_spec())
        points = runner.grid(seeds=SEEDS)
        (_, result_json), = [
            (0, ScenarioSpec.from_json(points[0].spec.to_json())
                .run().to_json())]
        with pytest.raises(ValueError, match="neither an outcome"):
            SweepReport.assemble(runner.base, points,
                                 [(0, result_json)])


class TestRunnerValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(small_spec(), retries=-1)
