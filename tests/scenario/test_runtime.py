"""The composition root: specs become live runtimes, once, correctly."""

import pytest

from repro.observability import Observer
from repro.scenario import compose
from repro.scheduling import SJF
from repro.workload import TaskState


def test_build_wires_every_declared_section(full_spec):
    runtime = full_spec.build()
    assert runtime.spec is full_spec
    assert runtime.injector is not None          # failures declared
    assert runtime.planner is not None           # retries declared
    assert runtime.admission is not None         # shedding declared
    assert runtime.engine is not None            # slos declared
    assert runtime.observer is not None          # auto-armed for slos
    assert runtime.datacenter.name == "sink-dc"
    assert len(runtime.datacenter.clusters) == 2
    assert runtime.tasks, "workload resolved to tasks"


def test_small_spec_leaves_optional_systems_off(small_spec):
    runtime = small_spec.build()
    assert runtime.injector is None
    assert runtime.planner is None
    assert runtime.admission is None
    assert runtime.engine is None
    assert runtime.observer is None
    assert runtime.controller is None


def test_execute_returns_deterministic_result(small_spec):
    first = small_spec.run()
    second = small_spec.run()
    assert first.to_json() == second.to_json()
    assert first.digest() == second.digest()
    assert first.tasks_finished == first.tasks_total == 12
    assert first.fingerprint == small_spec.fingerprint()


def test_runtime_cannot_be_driven_twice(small_spec):
    runtime = small_spec.build()
    runtime.drive()
    with pytest.raises(RuntimeError, match="already driven"):
        runtime.drive()


def test_build_overrides_replace_ingredients(small_spec):
    runtime = small_spec.build(queue_policy=SJF())
    result = runtime.execute()
    assert result.tasks_finished == result.tasks_total
    # The declarative path produces the same digest as the explicit
    # registry instance: "sjf" in the spec is the same class.
    declared = small_spec.override({"scheduler.queue": "sjf"}).run()
    assert declared.statistics == result.statistics


def test_duration_extends_the_clock(small_spec):
    result = small_spec.override({"duration": 500.0}).run()
    assert result.sim_time == 500.0


def test_chaos_section_present_only_when_armed(small_spec, full_spec):
    assert small_spec.run().chaos is None
    chaos = full_spec.run().chaos
    assert chaos is not None
    # Resilience invariants hold; any violations are declared-SLO
    # verdicts (the kitchen-sink spec deliberately overloads itself).
    assert all(line.startswith("SLO ") for line in chaos["violations"])
    assert chaos["summary"]["tasks_total"] == 48
    assert chaos["summary"]["tasks_shed"] == 4


def test_observer_flag_arms_profile(small_spec):
    profiled = small_spec.override({"observer": True}).run()
    assert profiled.profile is not None
    assert "metrics" in profiled.profile and "profile" in profiled.profile
    assert small_spec.run().profile is None


def test_compose_requires_observer_for_slos(full_spec):
    ingredients = {"seed": 1,
                   "clusters": full_spec.cluster_factory(),
                   "workload": full_spec.workload_fn(),
                   "slos": full_spec.slos.build_objectives()}
    with pytest.raises(ValueError, match="pass an observer"):
        compose(**ingredients)
    ingredients["observer"] = Observer()
    runtime = compose(**ingredients)
    assert runtime.engine is not None


def test_empty_workload_rejected(small_spec):
    empty = small_spec.override({"workload.params.n_tasks": 0})
    with pytest.raises(ValueError, match="produced no tasks"):
        empty.build()


def test_autoscaler_section_builds_controller(small_spec):
    elastic = small_spec.override(
        {"autoscaler": {"policy": "react", "interval": 5.0}})
    runtime = elastic.build()
    assert runtime.controller is not None
    result = runtime.execute()
    assert result.tasks_finished == result.tasks_total


def test_tasks_reach_terminal_states(full_spec):
    runtime = full_spec.build()
    runtime.execute()
    terminal = {TaskState.FINISHED, TaskState.FAILED, TaskState.SHED}
    assert all(task.state in terminal for task in runtime.tasks)
