"""The reproducibility recipes (C16) run through the scenario kernel."""

from repro.scenario import scenario_experiment
from repro.sim import check_reproduction, run_experiment


def test_recipe_executes_spec_through_kernel(small_spec):
    record = run_experiment(scenario_experiment, small_spec.recipe())
    assert record.recipe.name == "small"
    assert record.metrics == small_spec.run().summary()


def test_check_reproduction_passes_for_deterministic_spec(full_spec):
    record = run_experiment(scenario_experiment, full_spec.recipe())
    report = check_reproduction(scenario_experiment, record)
    assert report.reproducible
    assert not report.mismatches()


def test_recipe_seed_overrides_spec_seed(small_spec):
    recipe = small_spec.recipe()
    reseeded = run_experiment(
        scenario_experiment,
        type(recipe)(name=recipe.name, seed=small_spec.seed + 1,
                     parameters=recipe.parameters))
    assert reseeded.metrics == \
        small_spec.with_seed(small_spec.seed + 1).run().summary()
