"""Shared scenario fixtures: one fully-loaded spec, one small one."""

import pytest

from repro.scenario import (BurnRuleSpec, CheckpointSpec, ClusterSpec,
                            FailureSpec, HedgeSpec, ObjectiveSpec,
                            RetrySpec, ScenarioSpec, SheddingSpec,
                            SLOSpec, TopologySpec, WorkloadSpec)


def full_spec() -> ScenarioSpec:
    """A spec exercising every declarative section at once."""
    return ScenarioSpec(
        name="kitchen-sink",
        seed=13,
        topology=TopologySpec(
            clusters=(ClusterSpec("a", 8, cores=4, machines_per_rack=4),
                      ClusterSpec("b", 4, cores=8, memory=64.0,
                                  speed=1.5)),
            datacenter="sink-dc"),
        workload=WorkloadSpec("uniform-tasks", {
            "n_tasks": 48, "runtime": [10.0, 80.0], "cores": [1, 3],
            "submit": [0.0, 40.0], "priority_levels": 3, "prefix": "t"}),
        failures=FailureSpec("sampled-bursts", {
            "times": [35.0, 90.0], "victims": 3, "duration": 20.0}),
        retries=RetrySpec(max_attempts=6, base=1.0, cap=30.0,
                          jitter="decorrelated"),
        checkpoints=CheckpointSpec(interval=12.0, overhead=0.4),
        hedging=HedgeSpec(delay_factor=2.5, min_runtime=25.0),
        shedding=SheddingSpec(threshold=0.9, shed_below=1),
        slos=SLOSpec(
            objectives=(
                ObjectiveSpec("availability", {
                    "name": "exec-success",
                    "good": "datacenter.executions_finished",
                    "bad": "datacenter.executions_interrupted",
                    "target": 0.9}),
                ObjectiveSpec("queue-wait", {
                    "name": "fast-start", "threshold": 30.0,
                    "target": 0.9}),
            ),
            rules=(BurnRuleSpec("fast", long_window=60.0,
                                short_window=15.0, threshold=3.0),),
            telemetry_interval=5.0),
        horizon=300.0,
        availability_slo=0.8,
        injection_jitter=2.0)


def small_spec() -> ScenarioSpec:
    """A fast, failure-free spec for structural tests."""
    return ScenarioSpec(
        name="small",
        seed=5,
        topology=TopologySpec(
            clusters=(ClusterSpec("s", 4, cores=2, machines_per_rack=2),)),
        workload=WorkloadSpec("uniform-tasks", {
            "n_tasks": 12, "runtime": [5.0, 20.0], "cores": 1,
            "submit": [0.0, 10.0], "prefix": "w"}),
        horizon=200.0)


@pytest.fixture(name="full_spec")
def full_spec_fixture() -> ScenarioSpec:
    return full_spec()


@pytest.fixture(name="small_spec")
def small_spec_fixture() -> ScenarioSpec:
    return small_spec()
