"""Resilience statistics under the scenario kernel, seed-pinned.

Satellite of the service PR: the declarative kernel wires a
``LoadSheddingAdmission`` controller whenever a spec carries a
``shedding`` section, and with a pinned seed its statistics are exact
constants — shedding behavior is part of the reproducibility contract,
not a best-effort side channel.
"""

from repro.resilience import LoadSheddingAdmission

from .conftest import full_spec


class TestSpecDrivenSheddingStatistics:
    def test_kernel_wires_the_controller(self):
        runtime = full_spec().build()
        assert isinstance(runtime.admission, LoadSheddingAdmission)

    def test_statistics_are_seed_pinned(self):
        runtime = full_spec().build()
        runtime.execute()
        stats = runtime.admission.statistics()
        assert stats == {
            "offered": 57.0,
            "admitted": 53.0,
            "shed": 4.0,
            "degraded": 0.0,
            "shed_fraction": 4.0 / 57.0,
        }

    def test_statistics_accounting_invariants(self):
        runtime = full_spec().build()
        runtime.execute()
        stats = runtime.admission.statistics()
        assert stats["offered"] == stats["admitted"] + stats["shed"]
        assert 0.0 <= stats["shed_fraction"] < 1.0
        assert stats["degraded"] <= stats["admitted"]
