"""Sweeps: grid construction, parallel merge, digest stability."""

import pytest

from repro.scenario import (ScenarioResult, SweepReport, SweepRunner,
                            sweep)
from repro.scenario.sweep import _run_spec_payload


def test_grid_order_and_labels(small_spec):
    runner = SweepRunner(small_spec)
    points = runner.grid(seeds=(1, 2), policies=("fcfs", "sjf"))
    assert [point.index for point in points] == [0, 1, 2, 3]
    assert [point.label() for point in points] == [
        "queue=fcfs seed=1", "queue=sjf seed=1",
        "queue=fcfs seed=2", "queue=sjf seed=2"]
    assert points[3].spec.seed == 2
    assert points[3].spec.scheduler.queue == "sjf"


def test_empty_axes_yield_base_point(small_spec):
    points = SweepRunner(small_spec).grid()
    assert len(points) == 1
    assert points[0].label() == "base"
    assert points[0].spec == small_spec


def test_scale_axis_resizes_clusters(small_spec):
    points = SweepRunner(small_spec).grid(scale=(1.0, 2.0))
    assert points[0].spec.topology.clusters[0].machines == 4
    assert points[1].spec.topology.clusters[0].machines == 8


def test_serial_and_parallel_digests_identical(small_spec):
    grid = {"seeds": (1, 2), "policies": ("fcfs", "sjf")}
    serial = sweep(small_spec, workers=1, **grid)
    parallel = sweep(small_spec, workers=2, **grid)
    assert serial.to_json() == parallel.to_json()
    assert serial.digest() == parallel.digest()
    assert serial.workers == 1 and parallel.workers == 2


def test_merge_is_order_independent(small_spec):
    runner = SweepRunner(small_spec)
    points = runner.grid(seeds=(1, 2))
    outcomes = [_run_spec_payload((p.index, p.spec.to_json()))
                for p in points]
    forward = SweepReport.assemble(small_spec, points, outcomes)
    backward = SweepReport.assemble(small_spec, points,
                                    list(reversed(outcomes)))
    assert forward.to_json() == backward.to_json()


def test_report_roundtrip(small_spec):
    report = sweep(small_spec, seeds=(1, 2))
    rehydrated = SweepReport.from_json(report.to_json())
    assert rehydrated.digest() == report.digest()
    assert all(isinstance(run, ScenarioResult)
               for run in rehydrated.runs)
    assert rehydrated.base_fingerprint == small_spec.fingerprint()


def test_rows_pair_labels_with_summaries(small_spec):
    report = sweep(small_spec, seeds=(1, 2))
    rows = report.rows()
    assert [label for label, _ in rows] == ["seed=1", "seed=2"]
    for _, summary in rows:
        assert summary["tasks_finished"] == summary["tasks_total"] == 12.0


def test_each_point_runs_through_json_rehydration(small_spec):
    # The worker payload protocol is itself the round-trip contract.
    index, result_json = _run_spec_payload((7, small_spec.to_json()))
    assert index == 7
    assert ScenarioResult.from_json(result_json).digest() == \
        small_spec.run().digest()


def test_empty_grid_rejected(small_spec):
    with pytest.raises(ValueError, match="grid is empty"):
        SweepRunner(small_spec).run([])


def test_workers_validated(small_spec):
    with pytest.raises(ValueError, match="workers"):
        SweepRunner(small_spec, workers=0)


def test_override_axis(small_spec):
    report = sweep(small_spec, overrides=(
        {"workload.params.n_tasks": 6},
        {"workload.params.n_tasks": 12},
    ))
    totals = [run.tasks_total for run in report.runs]
    assert totals == [6, 12]
