"""Unit tests for Ecosystem Navigation (C9)."""

import pytest

from repro.navigation import (
    ComponentCatalog,
    CompositionError,
    NFRProfile,
    Requirements,
    ServiceComponent,
    compare,
    compose,
    find_replacements,
    select_optimizing,
    select_satisficing,
)


def make_catalog():
    catalog = ComponentCatalog()
    catalog.add(ServiceComponent(
        "redis", provides=frozenset({"cache"}),
        profile=NFRProfile(latency_ms=1.0, availability=0.995, cost=50.0,
                           throughput=50000.0)))
    catalog.add(ServiceComponent(
        "memcached", provides=frozenset({"cache"}),
        profile=NFRProfile(latency_ms=0.8, availability=0.99, cost=30.0,
                           throughput=60000.0)))
    catalog.add(ServiceComponent(
        "slowcache", provides=frozenset({"cache"}),
        profile=NFRProfile(latency_ms=50.0, availability=0.9, cost=5.0,
                           throughput=500.0)))
    catalog.add(ServiceComponent(
        "webapp", provides=frozenset({"web"}),
        requires=frozenset({"cache", "database"}),
        profile=NFRProfile(latency_ms=20.0, availability=0.99, cost=80.0,
                           throughput=2000.0)))
    catalog.add(ServiceComponent(
        "postgres", provides=frozenset({"database"}),
        profile=NFRProfile(latency_ms=5.0, availability=0.999, cost=100.0,
                           throughput=10000.0)))
    return catalog


class TestCatalog:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            NFRProfile(latency_ms=-1.0)
        with pytest.raises(ValueError):
            NFRProfile(availability=1.5)

    def test_component_validation(self):
        with pytest.raises(ValueError):
            ServiceComponent("x", provides=frozenset())
        with pytest.raises(ValueError):
            ServiceComponent("x", provides=frozenset({"a"}),
                             requires=frozenset({"a"}))

    def test_duplicate_rejected(self):
        catalog = make_catalog()
        with pytest.raises(ValueError):
            catalog.add(ServiceComponent("redis",
                                         provides=frozenset({"cache"})))

    def test_providers_index(self):
        catalog = make_catalog()
        providers = {c.name for c in catalog.providers_of("cache")}
        assert providers == {"redis", "memcached", "slowcache"}
        assert catalog.providers_of("queue") == []
        assert "database" in catalog.apis()

    def test_pareto_dominance(self):
        better = NFRProfile(latency_ms=1.0, availability=0.999, cost=10.0,
                            throughput=10000.0)
        worse = NFRProfile(latency_ms=2.0, availability=0.99, cost=20.0,
                           throughput=5000.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)
        assert not better.dominates(better)  # no strict improvement


class TestSelection:
    def test_satisficing_returns_first_feasible(self):
        catalog = make_catalog()
        requirements = Requirements(max_latency_ms=10.0)
        chosen = select_satisficing(catalog, "cache", requirements)
        assert chosen.name == "redis"  # insertion order, first feasible

    def test_satisficing_none_when_infeasible(self):
        catalog = make_catalog()
        requirements = Requirements(max_latency_ms=0.1)
        assert select_satisficing(catalog, "cache", requirements) is None

    def test_optimizing_finds_best_utility(self):
        catalog = make_catalog()
        requirements = Requirements(
            max_latency_ms=10.0,
            weights={"cost": 5.0, "latency": 1.0, "availability": 1.0,
                     "throughput": 1.0})
        chosen = select_optimizing(catalog, "cache", requirements)
        assert chosen.name == "memcached"  # cheaper than redis

    def test_optimizing_infeasible_modes(self):
        catalog = make_catalog()
        strict = Requirements(max_latency_ms=0.1)
        assert select_optimizing(catalog, "cache", strict) is None
        relaxed = select_optimizing(catalog, "cache", strict,
                                    require_feasible=False)
        assert relaxed is not None

    def test_compare_ranks_by_utility(self):
        catalog = make_catalog()
        requirements = Requirements(max_latency_ms=10.0)
        rows = compare(catalog.providers_of("cache"), requirements)
        names = [component.name for component, _, _ in rows]
        assert names[-1] == "slowcache"  # worst utility last
        feasible = {component.name for component, _, ok in rows if ok}
        assert feasible == {"redis", "memcached"}

    def test_requirements_utility_validation(self):
        requirements = Requirements(weights={"latency": 0.0})
        with pytest.raises(ValueError):
            requirements.utility(NFRProfile())


class TestComposition:
    def test_transitive_composition(self):
        catalog = make_catalog()
        assembly = compose(catalog, "web", Requirements())
        names = {c.name for c in assembly}
        assert "webapp" in names
        assert "postgres" in names
        assert names & {"redis", "memcached", "slowcache"}

    def test_composition_respects_requirements(self):
        catalog = make_catalog()
        assembly = compose(catalog, "cache",
                           Requirements(max_latency_ms=0.9))
        assert [c.name for c in assembly] == ["memcached"]

    def test_composition_fails_without_provider(self):
        catalog = make_catalog()
        with pytest.raises(CompositionError):
            compose(catalog, "queue", Requirements())

    def test_composition_detects_cycles(self):
        catalog = ComponentCatalog()
        catalog.add(ServiceComponent("a", provides=frozenset({"api-a"}),
                                     requires=frozenset({"api-b"})))
        catalog.add(ServiceComponent("b", provides=frozenset({"api-b"}),
                                     requires=frozenset({"api-a"})))
        # a requires b requires a: dedup terminates it, assembly = both.
        assembly = compose(catalog, "api-a", Requirements())
        assert {c.name for c in assembly} == {"a", "b"}

    def test_composition_depth_limit(self):
        catalog = ComponentCatalog()
        for i in range(15):
            catalog.add(ServiceComponent(
                f"c{i}", provides=frozenset({f"api-{i}"}),
                requires=frozenset({f"api-{i + 1}"})))
        catalog.add(ServiceComponent(
            "c15", provides=frozenset({"api-15"})))
        with pytest.raises(CompositionError):
            compose(catalog, "api-0", Requirements(), max_depth=5)


class TestReplacement:
    def test_finds_non_dominated_substitute(self):
        catalog = make_catalog()
        incumbent = catalog.get("redis")
        replacements = {c.name for c in find_replacements(catalog, incumbent)}
        assert "memcached" in replacements
        assert "redis" not in replacements

    def test_dominated_candidates_excluded(self):
        catalog = make_catalog()
        incumbent = catalog.get("memcached")
        replacements = {c.name
                        for c in find_replacements(catalog, incumbent)}
        # slowcache is worse on latency/availability/throughput but
        # cheaper, so not dominated -> still a candidate; redis is not
        # dominated either (better availability). Check no API mismatch.
        assert "webapp" not in replacements
        assert "postgres" not in replacements

    def test_replacement_requires_api_superset(self):
        catalog = ComponentCatalog()
        incumbent = catalog.add(ServiceComponent(
            "multi", provides=frozenset({"cache", "queue"})))
        catalog.add(ServiceComponent("cache-only",
                                     provides=frozenset({"cache"})))
        assert find_replacements(catalog, incumbent) == []
