"""Unit tests for the Figure 2 timeline and the evolution model."""

import random

import pytest

from repro.evolution import (
    EvolutionModel,
    Technology,
    TechnologyEra,
    TechnologyTimeline,
    TIMELINE,
)


class TestTimeline:
    def test_all_fields_present(self):
        timeline = TechnologyTimeline()
        assert timeline.fields() == {"Distributed Systems",
                                     "Software Engineering",
                                     "Performance Engineering", "MCS"}

    def test_mcs_converges_all_three_fields(self):
        # Figure 2's punchline: MCS synthesizes DS + SE + PE.
        inputs = TechnologyTimeline().mcs_inputs()
        assert inputs == {"Distributed Systems", "Software Engineering",
                          "Performance Engineering"}

    def test_cloud_descends_from_grid_and_cluster(self):
        timeline = TechnologyTimeline()
        ancestors = timeline.ancestors("Cloud Computing")
        assert "Grid Computing" in ancestors
        assert "Cluster Computing" in ancestors
        assert "Computer Systems" in ancestors

    def test_mcs_is_late_2010s(self):
        mcs = TechnologyTimeline().get("Massivizing Computer Systems")
        assert mcs.decade == "late-2010s"

    def test_dangling_predecessor_rejected(self):
        with pytest.raises(ValueError):
            TechnologyTimeline((TechnologyEra("x", "2020s", "f",
                                              ("ghost",)),))

    def test_duplicate_names_rejected(self):
        entry = TIMELINE[0]
        with pytest.raises(ValueError):
            TechnologyTimeline(TIMELINE + (entry,))

    def test_field_lineages_nonempty(self):
        timeline = TechnologyTimeline()
        for field in ("Distributed Systems", "Software Engineering",
                      "Performance Engineering"):
            assert len(timeline.by_field(field)) >= 3

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            TechnologyTimeline().get("Quantum Blockchain")


class TestEvolutionModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvolutionModel(n_initial=1)
        with pytest.raises(ValueError):
            EvolutionModel(radical_probability=1.5)
        with pytest.raises(ValueError):
            EvolutionModel(lock_in_strength=-1.0)
        with pytest.raises(ValueError):
            Technology("t", quality=-1.0, share=0.5)
        with pytest.raises(ValueError):
            Technology("t", quality=1.0, share=2.0)

    def test_shares_always_normalized(self):
        model = EvolutionModel(rng=random.Random(1))
        model.run(generations=20)
        assert sum(t.share for t in model.population) == pytest.approx(1.0)

    def test_darwinian_run_improves_quality(self):
        model = EvolutionModel(n_initial=8, radical_probability=0.0,
                               lock_in_strength=0.0,
                               rng=random.Random(2))
        trace = model.run(generations=60)
        assert trace.mean_quality[-1] > trace.mean_quality[0]

    def test_darwinian_selection_concentrates_market(self):
        model = EvolutionModel(n_initial=8, rng=random.Random(3))
        trace = model.run(generations=60)
        # HHI rises as better tech wins (starts at 1/8 = 0.125).
        assert trace.concentration[-1] > trace.concentration[0]

    def test_pure_darwinian_has_no_radical_events(self):
        model = EvolutionModel(radical_probability=0.0,
                               rng=random.Random(4))
        trace = model.run(generations=40)
        combines = [e for e in trace.events if e.kind == "combine"]
        assert combines == []

    def test_non_darwinian_produces_radical_recombinations(self):
        model = EvolutionModel(radical_probability=0.5,
                               rng=random.Random(5))
        trace = model.run(generations=40)
        combines = [e for e in trace.events if e.kind == "combine"]
        assert combines
        assert any(t.radical for t in model.population) or combines

    def test_lock_in_lets_inferior_tech_lead(self):
        # Strong lock-in: installed base dominates quality.
        locked = EvolutionModel(n_initial=6, radical_probability=0.3,
                                lock_in_strength=2.0,
                                rng=random.Random(6))
        trace_locked = locked.run(generations=80)
        free = EvolutionModel(n_initial=6, radical_probability=0.3,
                              lock_in_strength=0.0,
                              rng=random.Random(6))
        trace_free = free.run(generations=80)
        assert (len(trace_locked.lock_in_events)
                > len(trace_free.lock_in_events))

    def test_mechanism_operations(self):
        model = EvolutionModel(n_initial=4, rng=random.Random(7))
        a, b = model.population[0], model.population[1]
        child = model.combine(a, b)
        assert child in model.population
        assert sum(t.share for t in model.population) == pytest.approx(1.0)
        added = model.add("blockchain", quality=0.4)
        assert added in model.population
        model.bridge(a, b)
        replacement = Technology("next-gen", quality=2.0, share=0.0)
        model.replace(a, replacement)
        assert replacement in model.population
        assert a not in model.population
        model.remove(added)
        assert added not in model.population

    def test_remove_last_technology_rejected(self):
        model = EvolutionModel(n_initial=2, rng=random.Random(8))
        model.remove(model.population[0])
        with pytest.raises(ValueError):
            model.remove(model.population[0])

    def test_replace_unknown_rejected(self):
        model = EvolutionModel(rng=random.Random(9))
        ghost = Technology("ghost", quality=1.0, share=0.0)
        with pytest.raises(ValueError):
            model.replace(ghost, ghost)

    def test_run_validation(self):
        with pytest.raises(ValueError):
            EvolutionModel().run(generations=0)
