"""Unit tests for the C13 transparency reports."""

import pytest

from repro.reporting import (
    STAKEHOLDERS,
    OperationalSnapshot,
    TransparencyReporter,
)


def snapshot(period="2026-Q1", outages=1, lost=2, sla=0.97, **kwargs):
    defaults = dict(period=period, completed_work=1000, mean_latency=0.25,
                    sla_fraction_met=sla, outages=outages,
                    tasks_lost_to_failures=lost, cost_dollars=123.45,
                    energy_kilojoules=456.7, mean_utilization=0.6)
    defaults.update(kwargs)
    return OperationalSnapshot(**defaults)


class TestSnapshot:
    def test_validation(self):
        with pytest.raises(ValueError):
            snapshot(sla=1.5)
        with pytest.raises(ValueError):
            snapshot(outages=-1)
        with pytest.raises(ValueError):
            snapshot(mean_utilization=2.0)


class TestReporter:
    def test_requires_published_snapshot(self):
        reporter = TransparencyReporter("svc")
        with pytest.raises(RuntimeError):
            reporter.view("client")
        with pytest.raises(RuntimeError):
            reporter.outage_frequency()

    def test_all_stakeholder_views_render(self):
        reporter = TransparencyReporter("svc")
        reporter.publish(snapshot())
        for stakeholder in STAKEHOLDERS:
            text = reporter.render(stakeholder)
            assert "svc" in text
            assert stakeholder in text

    def test_unknown_stakeholder_rejected(self):
        reporter = TransparencyReporter("svc")
        reporter.publish(snapshot())
        with pytest.raises(KeyError):
            reporter.view("shareholder-activist")

    def test_client_view_excludes_operator_internals(self):
        reporter = TransparencyReporter("svc")
        reporter.publish(snapshot())
        client = reporter.view("client")
        assert "SLA objectives met" in client
        assert "mean utilization" not in client  # operator-only
        operator = reporter.view("operator")
        assert "mean utilization" in operator

    def test_regulator_sees_history(self):
        reporter = TransparencyReporter("svc")
        reporter.publish(snapshot(period="Q1", sla=0.99))
        reporter.publish(snapshot(period="Q2", sla=0.91))
        regulator = reporter.view("regulator")
        assert regulator["periods reported"] == 2
        assert regulator["worst SLA period"] == "91%"
        assert regulator["total outages"] == 2

    def test_outage_frequency_and_trend(self):
        reporter = TransparencyReporter("svc")
        reporter.publish(snapshot(outages=4, lost=8))
        reporter.publish(snapshot(outages=2, lost=3))
        reporter.publish(snapshot(outages=0, lost=0))
        assert reporter.outage_frequency() == pytest.approx(2.0)
        assert reporter.risk_trend() == "improving"

    def test_degrading_trend(self):
        reporter = TransparencyReporter("svc")
        reporter.publish(snapshot(outages=0, lost=0))
        reporter.publish(snapshot(outages=5, lost=1))
        assert reporter.risk_trend() == "degrading"

    def test_single_snapshot_is_stable(self):
        reporter = TransparencyReporter("svc")
        reporter.publish(snapshot())
        assert reporter.risk_trend() == "stable"
