"""Unit tests for the plain-text renderers."""

import pytest

from repro.reporting import render_kv, render_series, render_table


class TestRenderTable:
    def test_basic_table(self):
        text = render_table(["name", "value"],
                            [["alpha", 1.5], ["b", 20]],
                            title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "20" in lines[4]

    def test_column_alignment(self):
        text = render_table(["a"], [["xxxxxx"], ["y"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])  # separator matches width

    def test_validation(self):
        with pytest.raises(ValueError):
            render_table([], [])
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.000123], [123456.0], [1.5]])
        assert "0.000123" in text
        assert "1.23e+05" in text or "123456" in text.replace(",", "")
        assert "1.5" in text


class TestRenderSeries:
    def test_bars_scale_to_maximum(self):
        text = render_series([(1.0, 10.0), (2.0, 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_validation(self):
        text = render_series([(0.0, 1.0)], title="Curve")
        assert text.startswith("Curve")
        with pytest.raises(ValueError):
            render_series([])
        with pytest.raises(ValueError):
            render_series([(0.0, 1.0)], width=0)

    def test_all_zero_series(self):
        text = render_series([(0.0, 0.0), (1.0, 0.0)])
        assert "#" not in text


class TestRenderKV:
    def test_alignment(self):
        text = render_kv([("short", 1), ("much-longer-key", 2)])
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_validation(self):
        with pytest.raises(ValueError):
            render_kv([])
